//! Hierarchical chip-scale checking.
//!
//! Flattening a 10k-instance floorplan and re-deriving every fact per
//! copy is how a checker stops scaling. This module analyzes each
//! [`Subcircuit`] *once per boundary condition* and composes the
//! results at instance sites:
//!
//! 1. **Contract fixpoint** — the top circuit's hulls are inferred,
//!    each instance's port hulls are quantized into a *signature*, and
//!    every distinct `(cell, signature)` pair is analyzed once to
//!    produce a boundary contract: the voltage hulls, pull-up rails and
//!    static channel joins its ports export. Contract exports seed the
//!    next top inference; rounds repeat until every signature is
//!    stable. Identical instances — the overwhelmingly common case on a
//!    real floorplan — share one contract.
//! 2. **Cell verdicts** — each unique `(cell, signature)` gets one full
//!    rule run ([`crate::run_check_bounded`]) against its boundary,
//!    fanned out over [`vls_runner`] workers.
//! 3. **Instance rewrite** — the shared cell verdict is re-addressed
//!    per instance: internal nodes and elements become hierarchical
//!    paths (`x1.inv.out`), ports become their top nets.
//! 4. **Top composition** — the top skeleton is checked with instance
//!    ports anchored and seeded, then the cross-boundary rules run on
//!    composed facts: ERC010 (redundant shifter) per shifter instance,
//!    ERC011 from top *and* exported pull-up rails, ERC012 over the
//!    top static-channel graph joined by exported port joins.
//!
//! Every stage is deterministic in instance/index order, so the merged
//! [`Report`] is byte-identical at any worker count.

use std::collections::{BTreeSet, HashMap, HashSet};

use vls_netlist::{Circuit, Element, HierDesign, Instance, PortRole, Subcircuit};
use vls_runner::{run_indexed, RunnerOptions};

use crate::report::{Diagnostic, ErcCode, Report, Severity};
use crate::{domains, msv, Boundary, CheckLevel, CheckOptions};

/// A quantized port-hull vector: what an instance site imposes on a
/// cell. Two instances with equal signatures share every analysis.
type Signature = Vec<Option<(i64, i64)>>;

/// Voltage quantum for signatures (1 µV): coarse enough to merge
/// float noise, fine enough to keep distinct rails distinct.
const QUANTUM: f64 = 1e-6;

fn quantize(v: f64) -> i64 {
    #[allow(clippy::cast_possible_truncation)]
    let q = (v / QUANTUM).round() as i64;
    q
}

/// What one analyzed cell boundary exports back to its instance sites.
#[derive(Debug, Clone)]
struct Contract {
    /// Final hull of each port, in port order (`None` = never reached).
    ports: Vec<Option<(f64, f64)>>,
    /// Pull-up rails each port can be driven to from inside the cell.
    port_rails: Vec<Vec<f64>>,
    /// Port pairs joined by statically conducting internal channels.
    port_joins: Vec<(usize, usize)>,
}

/// Builds the boundary a signature imposes on a cell: ports with a
/// known hull are anchored and seeded; unknown ports stay internal.
fn boundary_of(cell: &Subcircuit, signature: &Signature) -> Boundary {
    let mut boundary = Boundary::default();
    for (node, sig) in cell.port_nodes().iter().zip(signature) {
        let Some((qlo, qhi)) = *sig else { continue };
        boundary.anchored.insert(node.index());
        #[allow(clippy::cast_precision_loss)]
        boundary
            .seeds
            .push((*node, qlo as f64 * QUANTUM, qhi as f64 * QUANTUM));
    }
    boundary
}

/// Analyzes one cell boundary into its [`Contract`].
fn derive_contract(cell: &Subcircuit, options: &CheckOptions, signature: &Signature) -> Contract {
    let boundary = boundary_of(cell, signature);
    let dom = domains::infer(cell.template(), options, &boundary);
    let port_nodes = cell.port_nodes();
    let ports = port_nodes
        .iter()
        .map(|&n| dom.hull(n).map(|h| (h.lo, h.hi)))
        .collect();
    let rails = msv::pullup_rails(cell.template(), &dom);
    let port_rails = port_nodes
        .iter()
        .map(|&n| rails.get(&n.index()).cloned().unwrap_or_default())
        .collect();
    let mut uf = msv::static_on_unionfind(cell.template(), &dom);
    let mut port_joins = Vec::new();
    for i in 0..port_nodes.len() {
        for j in i + 1..port_nodes.len() {
            if port_nodes[i] != port_nodes[j]
                && uf.same(port_nodes[i].index(), port_nodes[j].index())
            {
                port_joins.push((i, j));
            }
        }
    }
    Contract {
        ports,
        port_rails,
        port_joins,
    }
}

/// Checks a hierarchical design with a default worker pool.
pub fn run_check_design(design: &HierDesign, options: &CheckOptions) -> Report {
    run_check_design_with(design, options, &RunnerOptions::default())
}

/// Checks a hierarchical design: every cell is analyzed once per
/// distinct boundary signature, verdicts are rewritten per instance,
/// and the island-composition rules (ERC009–ERC013) run on boundary
/// contracts instead of a flattened netlist. The result is sorted and
/// byte-identical for any `runner` worker count.
pub fn run_check_design_with(
    design: &HierDesign,
    options: &CheckOptions,
    runner: &RunnerOptions,
) -> Report {
    let top = design.top();
    let instances = design.instances();
    let cells: Vec<&Subcircuit> = instances
        .iter()
        .map(|i| design.subckt(&i.subckt).expect("validated in add_instance"))
        .collect();

    // Instance ports are externally realized: anchored at the top.
    let mut top_boundary = Boundary::default();
    for inst in instances {
        for &n in &inst.connections {
            top_boundary.anchored.insert(n.index());
        }
    }

    // Phase 1: contract fixpoint. At Connectivity level hulls are not
    // used, so every instance of a cell shares the empty signature.
    let full = options.level == CheckLevel::Full;
    let mut contracts: HashMap<(String, Signature), Contract> = HashMap::new();
    let mut signatures: Vec<Signature> = vec![vec![None; 0]; instances.len()];
    let mut top_dom = domains::infer(top, options, &top_boundary);
    if full {
        for _round in 0..options.max_passes {
            let next: Vec<Signature> = instances
                .iter()
                .map(|inst| {
                    inst.connections
                        .iter()
                        .map(|&n| top_dom.hull(n).map(|h| (quantize(h.lo), quantize(h.hi))))
                        .collect()
                })
                .collect();
            let stable = next == signatures;
            signatures = next;

            // Analyze every signature not seen before, in sorted order
            // so the fan-out is deterministic.
            let fresh: BTreeSet<(String, Signature)> = instances
                .iter()
                .zip(&signatures)
                .map(|(inst, sig)| (inst.subckt.clone(), sig.clone()))
                .filter(|key| !contracts.contains_key(key))
                .collect();
            let fresh: Vec<(String, Signature)> = fresh.into_iter().collect();
            let derived = run_indexed(fresh.len(), runner, |k| {
                let (cell_name, sig) = &fresh[k];
                let cell = design.subckt(cell_name).expect("instances are validated");
                derive_contract(cell, options, sig)
            });
            for (key, contract) in fresh.into_iter().zip(derived) {
                contracts.insert(key, contract);
            }
            if stable {
                break;
            }

            // Seed the top with every instance's exports and re-infer.
            top_boundary.seeds.clear();
            for (inst, sig) in instances.iter().zip(&signatures) {
                let contract = &contracts[&(inst.subckt.clone(), sig.clone())];
                for (&node, hull) in inst.connections.iter().zip(&contract.ports) {
                    if let Some((lo, hi)) = *hull {
                        if !node.is_ground() {
                            top_boundary.seeds.push((node, lo, hi));
                        }
                    }
                }
            }
            top_dom = domains::infer(top, options, &top_boundary);
        }
    }

    // Phase 2: one full rule run per distinct (cell, signature).
    let verdict_keys: Vec<(String, Signature)> = instances
        .iter()
        .zip(&signatures)
        .map(|(inst, sig)| (inst.subckt.clone(), sig.clone()))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let verdict_reports = run_indexed(verdict_keys.len(), runner, |k| {
        let (cell_name, sig) = &verdict_keys[k];
        let cell = design.subckt(cell_name).expect("instances are validated");
        let boundary = if full {
            boundary_of(cell, sig)
        } else {
            // Connectivity-only: every port is externally realized.
            let mut b = Boundary::default();
            for n in cell.port_nodes() {
                b.anchored.insert(n.index());
            }
            b
        };
        crate::run_check_bounded(cell.template(), options, &boundary)
    });
    let verdicts: HashMap<&(String, Signature), &Report> =
        verdict_keys.iter().zip(verdict_reports.iter()).collect();

    // Phase 3: rewrite the shared verdicts per instance.
    let keys: Vec<(String, Signature)> = instances
        .iter()
        .zip(&signatures)
        .map(|(inst, sig)| (inst.subckt.clone(), sig.clone()))
        .collect();
    let rewritten: Vec<Vec<Diagnostic>> = run_indexed(instances.len(), runner, |i| {
        let report = verdicts[&keys[i]];
        report
            .diagnostics
            .iter()
            .map(|d| rewrite(d, &instances[i], cells[i], top))
            .collect()
    });

    // Phase 4: top skeleton plus composed cross-boundary rules.
    let mut skeleton = crate::run_check_bounded(top, options, &top_boundary);
    let mut diagnostics: Vec<Diagnostic> = skeleton
        .diagnostics
        .drain(..)
        .filter(|d| {
            // The composed versions below see strictly more facts.
            d.code != ErcCode::Erc011DomainContention && d.code != ErcCode::Erc012SneakRailPath
        })
        .collect();
    if full {
        for (inst, cell) in instances.iter().zip(&cells) {
            redundant_shifter(inst, cell, top, &top_dom, options, &mut diagnostics);
        }
        composed_contention(
            top,
            options,
            &top_dom,
            instances,
            &signatures,
            &contracts,
            &mut diagnostics,
        );
        composed_sneak_paths(
            top,
            options,
            &top_dom,
            instances,
            &signatures,
            &contracts,
            &mut diagnostics,
        );
    }
    for group in rewritten {
        diagnostics.extend(group);
    }

    Report {
        diagnostics,
        domains: skeleton.domains,
        suppressed: 0,
    }
    .finish()
}

/// Re-addresses one cell diagnostic for an instance site: port names
/// become the bound top nets, internal names gain the instance prefix.
fn rewrite(d: &Diagnostic, inst: &Instance, cell: &Subcircuit, top: &Circuit) -> Diagnostic {
    let ports: HashMap<&str, String> = cell
        .ports()
        .iter()
        .zip(&inst.connections)
        .map(|(p, &n)| (p.as_str(), top.node_name(n).to_string()))
        .collect();
    let map_node = |n: &String| -> String {
        if let Some(top_name) = ports.get(n.as_str()) {
            top_name.clone()
        } else if n == "0" || n == "gnd" {
            n.clone()
        } else {
            format!("{}.{n}", inst.name)
        }
    };
    Diagnostic {
        code: d.code,
        severity: d.severity,
        message: format!("in {} ({}): {}", inst.name, cell.name(), d.message),
        nodes: d.nodes.iter().map(map_node).collect(),
        elements: d
            .elements
            .iter()
            .map(|e| format!("{}.{e}", inst.name))
            .collect(),
        hint: d.hint.clone(),
    }
}

/// ERC010: a declared level shifter whose input net already swings to
/// the output rail — back-to-back shifting, burning area and delay for
/// nothing. Judged at the instance site from the final top hulls.
fn redundant_shifter(
    inst: &Instance,
    cell: &Subcircuit,
    top: &Circuit,
    top_dom: &domains::Domains,
    options: &CheckOptions,
    out: &mut Vec<Diagnostic>,
) {
    if cell.role() != vls_netlist::CellRole::LevelShifter {
        return;
    }
    // By cell convention the first signal port is the input and the
    // supply port is bound to the destination island's rail.
    let mut input = None;
    let mut rail = None;
    for ((role, port), &conn) in cell
        .port_roles()
        .iter()
        .zip(cell.ports())
        .zip(&inst.connections)
    {
        match role {
            PortRole::Signal if input.is_none() => input = Some((port.clone(), conn)),
            PortRole::Supply if rail.is_none() => rail = Some(conn),
            _ => {}
        }
    }
    let (Some((_, in_node)), Some(rail_node)) = (input, rail) else {
        return;
    };
    let (Some(in_hull), Some(rail_hull)) = (top_dom.hull(in_node), top_dom.hull(rail_node)) else {
        return;
    };
    if !rail_hull.is_point() || in_hull.hi < rail_hull.hi - options.domain_epsilon {
        return;
    }
    let in_name = top.node_name(in_node).to_string();
    out.push(Diagnostic {
        code: ErcCode::Erc010RedundantShifter,
        severity: Severity::Warning,
        message: format!(
            "level shifter \"{}\" ({}) is redundant: its input \"{in_name}\" already \
             reaches {:.3} V against the {:.3} V destination rail",
            inst.name, inst.subckt, in_hull.hi, rail_hull.hi
        ),
        nodes: vec![in_name],
        elements: vec![inst.name.clone()],
        hint: Some("the signal is already in the destination island; drop the shifter".into()),
    });
}

/// ERC011 composed at the top: pull-up rails from top-level devices
/// plus every contract's exported port rails, with only genuine rail
/// sources (ground and voltage-source terminals) exempt — seeded
/// instance nets must still be able to contend.
fn composed_contention(
    top: &Circuit,
    options: &CheckOptions,
    top_dom: &domains::Domains,
    instances: &[Instance],
    signatures: &[Signature],
    contracts: &HashMap<(String, Signature), Contract>,
    out: &mut Vec<Diagnostic>,
) {
    let mut rails = msv::pullup_rails(top, top_dom);
    for (inst, sig) in instances.iter().zip(signatures) {
        let contract = &contracts[&(inst.subckt.clone(), sig.clone())];
        for (&node, exported) in inst.connections.iter().zip(&contract.port_rails) {
            if !exported.is_empty() {
                rails
                    .entry(node.index())
                    .or_default()
                    .extend_from_slice(exported);
            }
        }
    }
    let exempt = source_pinned(top);
    msv::emit_contention(top, options, rails, &exempt, out);
}

/// ERC012 composed at the top: the top static-channel graph, with each
/// contract's internal port joins welded in.
fn composed_sneak_paths(
    top: &Circuit,
    options: &CheckOptions,
    top_dom: &domains::Domains,
    instances: &[Instance],
    signatures: &[Signature],
    contracts: &HashMap<(String, Signature), Contract>,
    out: &mut Vec<Diagnostic>,
) {
    let mut joins: Vec<(usize, usize)> = Vec::new();
    for (inst, sig) in instances.iter().zip(signatures) {
        let contract = &contracts[&(inst.subckt.clone(), sig.clone())];
        for &(a, b) in &contract.port_joins {
            joins.push((inst.connections[a].index(), inst.connections[b].index()));
        }
    }
    msv::sneak_paths(top, options, top_dom, &joins, out);
}

/// Ground plus every voltage-source terminal of `top`.
fn source_pinned(top: &Circuit) -> HashSet<usize> {
    let mut pinned = HashSet::new();
    pinned.insert(Circuit::GROUND.index());
    for e in top.elements() {
        if let Element::VoltageSource { pos, neg, .. } = e {
            pinned.insert(pos.index());
            pinned.insert(neg.index());
        }
    }
    pinned
}

#[cfg(test)]
mod tests {
    use super::*;
    use vls_netlist::chipgen::{generate_chip, generate_chip_mutated, ChipMutation, ChipSpec};

    fn spec(instances: usize) -> ChipSpec {
        ChipSpec {
            instances,
            ..ChipSpec::default()
        }
    }

    #[test]
    fn clean_chip_is_clean_hierarchically() {
        let design = generate_chip(&spec(60));
        let report = run_check_design(&design, &CheckOptions::default());
        assert_eq!(report.diagnostics.len(), 0, "{}", report.render_text());
        assert!(report.domains.is_some());
    }

    #[test]
    fn hierarchical_matches_flat_verdict_on_clean_chip() {
        let design = generate_chip(&spec(45));
        let flat = crate::run_check(&design.flatten(), &CheckOptions::default());
        assert!(!flat.has_errors(), "{}", flat.render_text());
        let hier = run_check_design(&design, &CheckOptions::default());
        assert!(!hier.has_errors(), "{}", hier.render_text());
    }

    #[test]
    fn dropped_shifter_is_flagged_with_hierarchical_paths() {
        let design = generate_chip_mutated(&spec(30), &[ChipMutation::DropShifter { unit: 2 }]);
        let report = run_check_design(&design, &CheckOptions::default());
        let hits = report.with_code(ErcCode::Erc009MissingShifter);
        assert!(!hits.is_empty(), "{}", report.render_text());
        // The offending devices carry instance-scoped names.
        assert!(
            hits.iter()
                .flat_map(|d| &d.elements)
                .any(|e| e.contains('.')),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn redundant_shifter_is_flagged() {
        let design =
            generate_chip_mutated(&spec(30), &[ChipMutation::RedundantShifter { unit: 1 }]);
        let report = run_check_design(&design, &CheckOptions::default());
        let hits = report.with_code(ErcCode::Erc010RedundantShifter);
        assert!(!hits.is_empty(), "{}", report.render_text());
        assert!(hits.iter().all(|d| d.severity == Severity::Warning));
    }

    #[test]
    fn cross_driver_contention_is_composed_from_contracts() {
        let design = generate_chip_mutated(&spec(30), &[ChipMutation::CrossDriver { unit: 0 }]);
        let report = run_check_design(&design, &CheckOptions::default());
        let hits = report.with_code(ErcCode::Erc011DomainContention);
        assert!(!hits.is_empty(), "{}", report.render_text());
        assert!(report.has_errors());
    }

    #[test]
    fn bridged_rails_and_orphan_island_are_flagged() {
        let design = generate_chip_mutated(
            &spec(30),
            &[
                ChipMutation::BridgeRails { a: 0, b: 1 },
                ChipMutation::OrphanIsland,
            ],
        );
        let report = run_check_design(&design, &CheckOptions::default());
        assert!(
            !report.with_code(ErcCode::Erc012SneakRailPath).is_empty(),
            "{}",
            report.render_text()
        );
        assert!(
            !report.with_code(ErcCode::Erc013DanglingIsland).is_empty(),
            "{}",
            report.render_text()
        );
    }

    #[test]
    fn worker_count_never_changes_the_report() {
        let design = generate_chip_mutated(
            &spec(40),
            &[
                ChipMutation::DropShifter { unit: 3 },
                ChipMutation::CrossDriver { unit: 5 },
                ChipMutation::BridgeRails { a: 0, b: 1 },
            ],
        );
        let options = CheckOptions::default();
        let serial = run_check_design_with(&design, &options, &RunnerOptions::serial());
        for jobs in [2, 8] {
            let parallel =
                run_check_design_with(&design, &options, &RunnerOptions::with_jobs(jobs));
            assert_eq!(serial.render_text(), parallel.render_text(), "jobs={jobs}");
            assert_eq!(serial.render_json(), parallel.render_json(), "jobs={jobs}");
        }
    }

    #[test]
    fn connectivity_level_still_composes() {
        let design = generate_chip(&spec(20));
        let options = CheckOptions::at_level(CheckLevel::Connectivity);
        let report = run_check_design(&design, &options);
        assert!(report.domains.is_none());
        assert!(!report.has_errors(), "{}", report.render_text());
    }
}
