//! Temperature with explicit Celsius/Kelvin conversions.
//!
//! The paper sweeps 27 / 60 / 90 °C; device physics wants kelvin. Keeping
//! the two scales behind one type removes a whole class of off-by-273
//! bugs from the characterization flows.

use crate::{BOLTZMANN, ELECTRON_CHARGE};

/// An absolute temperature, stored internally in kelvin.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Temperature(f64);

impl Temperature {
    /// The paper's reference temperature, 27 °C.
    pub const ROOM: Self = Self(300.15);

    /// Creates a temperature from degrees Celsius.
    ///
    /// # Panics
    ///
    /// Panics if the result would be below absolute zero.
    pub fn from_celsius(celsius: f64) -> Self {
        let kelvin = celsius + 273.15;
        assert!(
            kelvin >= 0.0,
            "temperature below absolute zero: {celsius} C"
        );
        Self(kelvin)
    }

    /// Creates a temperature from kelvin.
    ///
    /// # Panics
    ///
    /// Panics if `kelvin` is negative.
    pub fn from_kelvin(kelvin: f64) -> Self {
        assert!(kelvin >= 0.0, "temperature below absolute zero: {kelvin} K");
        Self(kelvin)
    }

    /// Returns the temperature in kelvin.
    pub const fn as_kelvin(self) -> f64 {
        self.0
    }

    /// Returns the temperature in degrees Celsius.
    pub fn as_celsius(self) -> f64 {
        self.0 - 273.15
    }

    /// The thermal voltage kT/q at this temperature, in volts.
    ///
    /// ≈ 25.9 mV at 27 °C; every subthreshold slope in the device models
    /// is expressed in multiples of this.
    pub fn thermal_voltage(self) -> f64 {
        BOLTZMANN * self.0 / ELECTRON_CHARGE
    }
}

impl Default for Temperature {
    fn default() -> Self {
        Self::ROOM
    }
}

impl core::fmt::Display for Temperature {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.2} C", self.as_celsius())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn celsius_kelvin_round_trip() {
        let t = Temperature::from_celsius(27.0);
        assert!((t.as_kelvin() - 300.15).abs() < 1e-12);
        assert!((t.as_celsius() - 27.0).abs() < 1e-12);
        assert_eq!(Temperature::from_kelvin(300.15), t);
        assert_eq!(Temperature::default(), Temperature::ROOM);
    }

    #[test]
    fn thermal_voltage_scales_linearly() {
        let t27 = Temperature::from_celsius(27.0);
        let t90 = Temperature::from_celsius(90.0);
        assert!((t27.thermal_voltage() - 0.02587).abs() < 1e-4);
        let ratio = t90.thermal_voltage() / t27.thermal_voltage();
        assert!((ratio - 363.15 / 300.15).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "absolute zero")]
    fn rejects_below_absolute_zero() {
        let _ = Temperature::from_celsius(-300.0);
    }

    #[test]
    fn display_shows_celsius() {
        assert_eq!(format!("{}", Temperature::from_celsius(60.0)), "60.00 C");
    }
}
