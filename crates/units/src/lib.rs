//! Typed physical quantities for analog circuit simulation.
//!
//! Circuit characterization juggles volts, amps, seconds, farads and
//! temperatures, frequently across ten or more orders of magnitude
//! (pico-seconds next to whole seconds, nano-amps next to milli-amps).
//! This crate provides zero-cost newtypes over `f64` so the *intent* of a
//! number is visible in signatures, plus engineering-notation formatting
//! so printed reports read like a datasheet instead of raw scientific
//! notation.
//!
//! # Example
//!
//! ```
//! use vls_units::{Voltage, Time, Current};
//!
//! let vdd = Voltage::from_volts(1.2);
//! let delay = Time::from_picos(22.0);
//! let leak = Current::from_nanos(20.8);
//! assert_eq!(format!("{vdd}"), "1.2 V");
//! assert_eq!(format!("{delay}"), "22 ps");
//! assert_eq!(format!("{leak}"), "20.8 nA");
//! ```

mod constants;
mod quantity;
mod temperature;

pub use constants::{BOLTZMANN, ELECTRON_CHARGE, EPS_OX, EPS_SI, ROOM_TEMPERATURE};
pub use quantity::{
    Capacitance, Charge, Current, Energy, Length, Power, Resistance, Time, Voltage,
};
pub use temperature::Temperature;

/// Formats a raw value with an engineering-notation SI prefix and unit
/// suffix, e.g. `fmt_eng(2.08e-8, "A")` → `"20.8 nA"`.
///
/// Values are rounded to four significant digits, which is what the
/// experiment reports in this workspace use. Zero, NaN and infinities are
/// passed through verbatim with the unit appended.
pub fn fmt_eng(value: f64, unit: &str) -> String {
    if value == 0.0 {
        return format!("0 {unit}");
    }
    if !value.is_finite() {
        return format!("{value} {unit}");
    }
    const PREFIXES: [(f64, &str); 9] = [
        (1e9, "G"),
        (1e6, "M"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "u"),
        (1e-9, "n"),
        (1e-12, "p"),
        (1e-15, "f"),
    ];
    let mag = value.abs();
    let (scale, prefix) = PREFIXES
        .iter()
        .find(|(s, _)| mag >= *s)
        .copied()
        .unwrap_or((1e-15, "f"));
    let scaled = value / scale;
    // Four significant digits, then trim trailing zeros / dangling dot.
    let digits = 3usize.saturating_sub(scaled.abs().log10().floor().max(0.0) as usize);
    let mut s = format!("{scaled:.digits$}");
    if s.contains('.') {
        while s.ends_with('0') {
            s.pop();
        }
        if s.ends_with('.') {
            s.pop();
        }
    }
    format!("{s} {prefix}{unit}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eng_format_picks_si_prefix() {
        assert_eq!(fmt_eng(2.08e-8, "A"), "20.8 nA");
        assert_eq!(fmt_eng(1.2, "V"), "1.2 V");
        assert_eq!(fmt_eng(-3.49e-11, "s"), "-34.9 ps");
        assert_eq!(fmt_eng(4.7e3, "Ohm"), "4.7 kOhm");
        assert_eq!(fmt_eng(1e-15, "F"), "1 fF");
    }

    #[test]
    fn eng_format_handles_edge_values() {
        assert_eq!(fmt_eng(0.0, "V"), "0 V");
        assert!(fmt_eng(f64::NAN, "V").contains("NaN"));
        assert!(fmt_eng(f64::INFINITY, "A").contains("inf"));
        // Below the femto range we clamp to the femto prefix.
        assert!(fmt_eng(1e-18, "F").ends_with("fF"));
    }

    #[test]
    fn eng_format_rounds_to_four_significant_digits() {
        assert_eq!(fmt_eng(123.456e-12, "s"), "123.5 ps");
        assert_eq!(fmt_eng(1.23456e-9, "A"), "1.235 nA");
    }
}
