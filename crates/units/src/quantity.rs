//! Newtype quantities over `f64`.
//!
//! Each quantity stores its value in base SI units and exposes
//! scale-specific constructors/accessors for the ranges that show up in
//! 90 nm circuit work (`from_picos`, `as_nanos`, …). Arithmetic between a
//! quantity and a bare `f64` scales the quantity; arithmetic between two
//! quantities of the same kind adds/subtracts them. A handful of
//! physically meaningful cross-type products (V·A = W, W·s = J, …) are
//! provided so characterization code reads like the physics.

use crate::fmt_eng;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal, $base:ident) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            #[doc = concat!("Creates the quantity from a value in base units (", $unit, ").")]
            pub const fn $base(value: f64) -> Self {
                Self(value)
            }

            /// Returns the value in base SI units.
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the larger of two quantities (NaN-propagating max).
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of two quantities.
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// `true` when the underlying value is finite.
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                f.write_str(&fmt_eng(self.0, $unit))
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl From<$name> for f64 {
            fn from(q: $name) -> f64 {
                q.0
            }
        }
    };
}

quantity!(
    /// Electric potential in volts.
    Voltage, "V", from_volts
);
quantity!(
    /// Electric current in amperes.
    Current, "A", from_amps
);
quantity!(
    /// Time in seconds.
    Time, "s", from_secs
);
quantity!(
    /// Capacitance in farads.
    Capacitance, "F", from_farads
);
quantity!(
    /// Resistance in ohms.
    Resistance, "Ohm", from_ohms
);
quantity!(
    /// Power in watts.
    Power, "W", from_watts
);
quantity!(
    /// Energy in joules.
    Energy, "J", from_joules
);
quantity!(
    /// Electric charge in coulombs.
    Charge, "C", from_coulombs
);
quantity!(
    /// Length in meters.
    Length, "m", from_meters
);

impl Voltage {
    /// Creates a voltage from millivolts.
    pub const fn from_millis(mv: f64) -> Self {
        Self(mv * 1e-3)
    }

    /// Returns the voltage in millivolts.
    pub const fn as_millis(self) -> f64 {
        self.0 * 1e3
    }
}

impl Current {
    /// Creates a current from microamps.
    pub const fn from_micros(ua: f64) -> Self {
        Self(ua * 1e-6)
    }

    /// Creates a current from nanoamps.
    pub const fn from_nanos(na: f64) -> Self {
        Self(na * 1e-9)
    }

    /// Returns the current in microamps.
    pub const fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the current in nanoamps.
    pub const fn as_nanos(self) -> f64 {
        self.0 * 1e9
    }
}

impl Time {
    /// Creates a time from nanoseconds.
    pub const fn from_nanos(ns: f64) -> Self {
        Self(ns * 1e-9)
    }

    /// Creates a time from picoseconds.
    pub const fn from_picos(ps: f64) -> Self {
        Self(ps * 1e-12)
    }

    /// Returns the time in nanoseconds.
    pub const fn as_nanos(self) -> f64 {
        self.0 * 1e9
    }

    /// Returns the time in picoseconds.
    pub const fn as_picos(self) -> f64 {
        self.0 * 1e12
    }
}

impl Capacitance {
    /// Creates a capacitance from femtofarads.
    pub const fn from_femtos(ff: f64) -> Self {
        Self(ff * 1e-15)
    }

    /// Returns the capacitance in femtofarads.
    pub const fn as_femtos(self) -> f64 {
        self.0 * 1e15
    }
}

impl Power {
    /// Creates a power from microwatts.
    pub const fn from_micros(uw: f64) -> Self {
        Self(uw * 1e-6)
    }

    /// Returns the power in microwatts.
    pub const fn as_micros(self) -> f64 {
        self.0 * 1e6
    }
}

impl Length {
    /// Creates a length from micrometers.
    pub const fn from_micros(um: f64) -> Self {
        Self(um * 1e-6)
    }

    /// Creates a length from nanometers.
    pub const fn from_nanos(nm: f64) -> Self {
        Self(nm * 1e-9)
    }

    /// Returns the length in micrometers.
    pub const fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the length in nanometers.
    pub const fn as_nanos(self) -> f64 {
        self.0 * 1e9
    }
}

// Physically meaningful cross-type products and quotients.

impl Mul<Current> for Voltage {
    type Output = Power;
    fn mul(self, rhs: Current) -> Power {
        Power::from_watts(self.0 * rhs.0)
    }
}

impl Mul<Voltage> for Current {
    type Output = Power;
    fn mul(self, rhs: Voltage) -> Power {
        rhs * self
    }
}

impl Div<Current> for Voltage {
    type Output = Resistance;
    fn div(self, rhs: Current) -> Resistance {
        Resistance::from_ohms(self.0 / rhs.0)
    }
}

impl Div<Resistance> for Voltage {
    type Output = Current;
    fn div(self, rhs: Resistance) -> Current {
        Current::from_amps(self.0 / rhs.0)
    }
}

impl Mul<Time> for Power {
    type Output = Energy;
    fn mul(self, rhs: Time) -> Energy {
        Energy::from_joules(self.0 * rhs.0)
    }
}

impl Mul<Time> for Current {
    type Output = Charge;
    fn mul(self, rhs: Time) -> Charge {
        Charge::from_coulombs(self.0 * rhs.0)
    }
}

impl Mul<Voltage> for Capacitance {
    type Output = Charge;
    fn mul(self, rhs: Voltage) -> Charge {
        Charge::from_coulombs(self.0 * rhs.0)
    }
}

impl Div<Time> for Energy {
    type Output = Power;
    fn div(self, rhs: Time) -> Power {
        Power::from_watts(self.0 / rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_conversions_round_trip() {
        assert_eq!(Time::from_picos(22.0).as_picos(), 22.0);
        assert_eq!(Current::from_nanos(7.3).as_nanos(), 7.3);
        assert_eq!(Voltage::from_millis(800.0).value(), 0.8);
        assert_eq!(Capacitance::from_femtos(1.0).value(), 1e-15);
        assert!((Length::from_nanos(90.0).as_micros() - 0.09).abs() < 1e-15);
        assert_eq!(Power::from_micros(2.5).as_micros(), 2.5);
    }

    #[test]
    fn same_type_arithmetic() {
        let a = Voltage::from_volts(1.2);
        let b = Voltage::from_volts(0.8);
        assert_eq!((a + b).value(), 2.0);
        assert!(((a - b).value() - 0.4).abs() < 1e-12);
        assert_eq!((-a).value(), -1.2);
        assert!((a / b - 1.5).abs() < 1e-12);
        assert_eq!((a * 2.0).value(), 2.4);
        assert_eq!((2.0 * a).value(), 2.4);
        assert_eq!((a / 2.0).value(), 0.6);
    }

    #[test]
    fn cross_type_products_have_correct_dimensions() {
        let p = Voltage::from_volts(1.2) * Current::from_micros(10.0);
        assert!((p.as_micros() - 12.0).abs() < 1e-9);

        let r = Voltage::from_volts(1.0) / Current::from_amps(0.001);
        assert_eq!(r.value(), 1000.0);

        let i = Voltage::from_volts(2.0) / Resistance::from_ohms(4.0);
        assert_eq!(i.value(), 0.5);

        let e = Power::from_watts(2.0) * Time::from_secs(3.0);
        assert_eq!(e.value(), 6.0);

        let q = Capacitance::from_femtos(1.0) * Voltage::from_volts(1.2);
        assert!((q.value() - 1.2e-15).abs() < 1e-27);

        let back = Energy::from_joules(6.0) / Time::from_secs(3.0);
        assert_eq!(back.value(), 2.0);
    }

    #[test]
    fn ordering_and_helpers() {
        let a = Time::from_picos(10.0);
        let b = Time::from_picos(20.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!((-b).abs(), b);
        assert!(a.is_finite());
        assert!(!Time::from_secs(f64::NAN).is_finite());
        assert_eq!(Time::ZERO.value(), 0.0);
    }

    #[test]
    fn display_uses_engineering_notation() {
        assert_eq!(format!("{}", Time::from_picos(34.9)), "34.9 ps");
        assert_eq!(format!("{}", Power::from_micros(1.5)), "1.5 uW");
        assert_eq!(format!("{}", Resistance::from_ohms(4700.0)), "4.7 kOhm");
    }
}
