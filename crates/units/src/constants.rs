//! Physical constants used by the device models.

/// Boltzmann constant in J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Elementary charge in C.
pub const ELECTRON_CHARGE: f64 = 1.602_176_634e-19;

/// Permittivity of silicon dioxide in F/m (3.9 · ε0).
pub const EPS_OX: f64 = 3.9 * 8.854_187_812_8e-12;

/// Permittivity of silicon in F/m (11.7 · ε0).
pub const EPS_SI: f64 = 11.7 * 8.854_187_812_8e-12;

/// The paper's reference temperature, 27 °C, in kelvin.
pub const ROOM_TEMPERATURE: f64 = 300.15;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_voltage_at_room_temperature_is_about_26mv() {
        let phi_t = BOLTZMANN * ROOM_TEMPERATURE / ELECTRON_CHARGE;
        assert!((phi_t - 0.02587).abs() < 1e-4, "phi_t = {phi_t}");
    }

    #[test]
    fn oxide_permittivity_matches_sio2() {
        assert!((EPS_OX - 3.453e-11).abs() < 1e-13);
    }
}
