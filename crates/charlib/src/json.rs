//! A minimal JSON reader for the artifact schema — std-only, no
//! external crates (the workspace builds with zero registry access).
//!
//! Supports the subset the artifact uses: objects, arrays, strings
//! (with escape sequences), numbers, booleans and `null`. Numbers are
//! parsed as `f64` through [`str::parse`], which round-trips every
//! value the canonical writer emits bit-exactly.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` — the writer uses it for non-finite table entries.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// A human-readable description with the byte offset of the defect.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = core::str::from_utf8(&bytes[start..*pos]).map_err(|_| "non-utf8 number")?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| core::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                        out.push(char::from_u32(code).ok_or("non-scalar \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&b) => {
                // Multi-byte UTF-8 passes through verbatim.
                let ch_len = match b {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let slice = bytes
                    .get(*pos..*pos + ch_len)
                    .ok_or("truncated utf-8 sequence")?;
                out.push_str(core::str::from_utf8(slice).map_err(|_| "invalid utf-8")?);
                *pos += ch_len;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

/// Writes `v` in the canonical artifact form: `{:?}` (shortest
/// round-trip) for finite values, `null` otherwise. The parser maps
/// `null` table entries back to NaN.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

/// Escapes a string into `out` with surrounding quotes.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_artifact_subset() {
        let doc = r#"{"a": 1.5e-10, "b": [true, false, null], "s": "x\ny", "o": {}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_num(), Some(1.5e-10));
        assert_eq!(
            v.get("b").unwrap().as_arr().unwrap(),
            &[Json::Bool(true), Json::Bool(false), Json::Null]
        );
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("o"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    #[allow(clippy::excessive_precision)] // deliberate: one digit past shortest round trip
    fn numbers_round_trip_bit_exactly() {
        for v in [
            0.0,
            -1.5,
            1.86332423704375234e-10,
            f64::MIN_POSITIVE,
            1e308,
            50e-12,
        ] {
            let mut s = String::new();
            write_f64(&mut s, v);
            let back = parse(&s).unwrap().as_num().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} mangled to {back}");
        }
        let mut s = String::new();
        write_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "a\"b\\c\nd\te\u{1}";
        let mut s = String::new();
        write_str(&mut s, original);
        assert_eq!(parse(&s).unwrap().as_str(), Some(original));
    }
}
