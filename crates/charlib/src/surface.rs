//! Serving the Figure 8/9 delay surface from a prebuilt library.

use vls_core::experiments::figures::DelaySurface;

use crate::{CharLib, QueryPoint};

/// Regenerates the Figure 8/9 [`DelaySurface`] by querying `lib`
/// instead of re-simulating every grid point. Slew, load and
/// temperature are the library grid's first coordinates (the nominal
/// protocol point); every (VDDI, VDDO) pair goes through
/// [`CharLib::eval`], so points inside the trust region are served by
/// the surrogate and points outside it (or over non-functional table
/// cells) transparently fall back to exact transients — the miss
/// counter shows how much of the surface actually needed simulation.
/// Points where even the exact fallback fails (the cell does not
/// translate) become NaN/non-functional, matching
/// [`vls_core::experiments::figures::delay_surface`].
///
/// # Panics
///
/// Panics if the range or step is degenerate.
pub fn delay_surface_from_lib(lib: &CharLib, v_min: f64, v_max: f64, step: f64) -> DelaySurface {
    assert!(v_max > v_min && step > 0.0, "bad sweep range");
    let n = ((v_max - v_min) / step).round() as usize + 1;
    let axis: Vec<f64> = (0..n).map(|k| v_min + step * k as f64).collect();
    let grid = lib.grid();
    let (slew, load, temp) = (grid.slew[0], grid.load[0], grid.temp[0]);

    let mut rise_ps = Vec::with_capacity(n);
    let mut fall_ps = Vec::with_capacity(n);
    let mut functional = Vec::with_capacity(n);
    for &vi in &axis {
        let mut rise = Vec::with_capacity(n);
        let mut fall = Vec::with_capacity(n);
        let mut func = Vec::with_capacity(n);
        for &vo in &axis {
            let q = QueryPoint {
                slew,
                load,
                vddi: vi,
                vddo: vo,
                temp,
            };
            match lib.eval(&q) {
                Ok(ev) if ev.metrics.functional => {
                    rise.push(ev.metrics.delay_rise * 1e12);
                    fall.push(ev.metrics.delay_fall * 1e12);
                    func.push(true);
                }
                _ => {
                    rise.push(f64::NAN);
                    fall.push(f64::NAN);
                    func.push(false);
                }
            }
        }
        rise_ps.push(rise);
        fall_ps.push(fall);
        functional.push(func);
    }
    DelaySurface {
        vddi: axis.clone(),
        vddo: axis,
        rise_ps,
        fall_ps,
        functional,
    }
}
