//! Liberty-style characterization tables for the paper's shifter
//! cells: precompute-then-serve.
//!
//! The paper's headline results (Tables 3–4, Figures 8–9) are a
//! characterization grid — delay/power/leakage of a cell over
//! `(input slew, output load, VDDI, VDDO, temperature)` — yet every
//! query used to re-run a full transient. SoC-scale consumers
//! (level-shifter-assignment floorplanners, design-space exploration)
//! issue millions of point queries; those are table lookups, not SPICE
//! runs. This crate is that serving layer:
//!
//! 1. [`GridSpec`] — the five-axis grid, filled in parallel through
//!    `vls-runner` with the exact `vls-core` measurement protocol
//!    (results are bit-identical for every worker count);
//! 2. an on-disk, versioned, std-only JSON artifact keyed by a content
//!    hash of cell kind + device parameters + grid + protocol, so a
//!    stale artifact is *detected and rebuilt*, never silently served
//!    ([`CharLib::load_or_build`]);
//! 3. [`CharLib::eval`] — clamped multilinear interpolation with a
//!    per-axis trust region: inside the region the answer comes from
//!    the table in sub-microsecond time; outside it the query falls
//!    back to an exact transient and the miss is recorded;
//! 4. a Liberty-style NLDM `.lib` exporter ([`CharLib::to_liberty`])
//!    so external EDA flows can consume the tables.
//!
//! # Example
//!
//! ```no_run
//! use vls_charlib::{CharLib, GridSpec, QueryPoint};
//! use vls_cells::ShifterKind;
//! use vls_core::CharacterizeOptions;
//! use vls_runner::RunnerOptions;
//!
//! # fn main() -> Result<(), vls_charlib::CharLibError> {
//! let grid = GridSpec::rails(0.8, 1.4, 0.1, vec![27.0])?;
//! let (lib, status) = CharLib::load_or_build(
//!     "sstvs.charlib.json",
//!     &ShifterKind::sstvs(),
//!     &CharacterizeOptions::default(),
//!     grid,
//!     &RunnerOptions::default(),
//! )?;
//! println!("library {status:?}, {} points", lib.grid().n_points());
//! let ev = lib.eval(&QueryPoint {
//!     slew: 50e-12,
//!     load: 1e-15,
//!     vddi: 0.85,
//!     vddo: 1.25,
//!     temp: 27.0,
//! })?;
//! println!("rise delay {:.3} ps (source {:?})", ev.metrics.delay_rise * 1e12, ev.source);
//! # Ok(())
//! # }
//! ```

mod artifact;
mod grid;
mod interp;
pub mod json;
mod liberty;
pub mod ndgrid;
mod surface;

pub use artifact::{content_hash, FORMAT_VERSION};
pub use grid::{GridSpec, QueryPoint, AXIS_NAMES};
pub use liberty::LibertyCorner;
pub use ndgrid::{NdFallback, NdGrid, NdTable};
pub use surface::delay_surface_from_lib;

use std::sync::atomic::{AtomicU64, Ordering};

use vls_cells::{ShifterKind, VoltagePair};
use vls_core::{characterize, CellMetrics, CharacterizeOptions, CoreError};
use vls_runner::RunnerOptions;
use vls_units::Temperature;

/// Errors from building, loading or querying a characterization
/// library.
#[derive(Debug)]
pub enum CharLibError {
    /// The grid specification is unusable.
    BadGrid(String),
    /// Artifact file I/O failed.
    Io(std::io::Error),
    /// The artifact does not parse or violates the schema.
    Parse(String),
    /// The artifact's format version is not supported by this build.
    Format {
        /// Version found in the artifact.
        found: u32,
    },
    /// The artifact's content hash does not match the requested cell +
    /// protocol — it was built for something else and must be rebuilt,
    /// not served.
    Stale {
        /// Hash recomputed from the requested cell/protocol/grid.
        expected: u64,
        /// Hash recorded in the artifact.
        found: u64,
    },
    /// The exact-simulation fallback failed.
    Sim(CoreError),
    /// The requested Liberty export is not possible.
    Liberty(String),
}

impl core::fmt::Display for CharLibError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CharLibError::BadGrid(msg) => write!(f, "bad grid: {msg}"),
            CharLibError::Io(e) => write!(f, "artifact io error: {e}"),
            CharLibError::Parse(msg) => write!(f, "artifact parse error: {msg}"),
            CharLibError::Format { found } => write!(
                f,
                "unsupported artifact format {found} (this build reads {FORMAT_VERSION})"
            ),
            CharLibError::Stale { expected, found } => write!(
                f,
                "stale artifact: content hash {found:#018x} does not match requested \
                 cell/protocol/grid {expected:#018x}; rebuild required"
            ),
            CharLibError::Sim(e) => write!(f, "exact fallback failed: {e}"),
            CharLibError::Liberty(msg) => write!(f, "liberty export: {msg}"),
        }
    }
}

impl std::error::Error for CharLibError {}

impl From<std::io::Error> for CharLibError {
    fn from(e: std::io::Error) -> Self {
        CharLibError::Io(e)
    }
}

impl From<CoreError> for CharLibError {
    fn from(e: CoreError) -> Self {
        CharLibError::Sim(e)
    }
}

/// The six metrics of one operating point, in SI base units (seconds,
/// watts, amperes) — the table-native mirror of
/// [`vls_core::CellMetrics`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableMetrics {
    /// Output rising delay, s.
    pub delay_rise: f64,
    /// Output falling delay, s.
    pub delay_fall: f64,
    /// Average switching power, rising-output event, W.
    pub power_rise: f64,
    /// Average switching power, falling-output event, W.
    pub power_fall: f64,
    /// Steady-state VDDO-referred leakage, output high, A.
    pub leakage_high: f64,
    /// Steady-state VDDO-referred leakage, output low, A.
    pub leakage_low: f64,
    /// `true` when the cell translated correctly at this point.
    pub functional: bool,
}

impl TableMetrics {
    /// Converts a [`vls_core::CellMetrics`] measurement into the
    /// table-native representation — the bridge external evaluators
    /// (the `vls-opt` sizing optimizer's exact path) use to speak the
    /// same metric vocabulary as the tables.
    pub fn from_cell_metrics(m: &CellMetrics) -> Self {
        Self::from_cell(m)
    }

    fn from_cell(m: &CellMetrics) -> Self {
        Self {
            delay_rise: m.delay_rise.value(),
            delay_fall: m.delay_fall.value(),
            power_rise: m.power_rise.value(),
            power_fall: m.power_fall.value(),
            leakage_high: m.leakage_high.value(),
            leakage_low: m.leakage_low.value(),
            functional: m.functional,
        }
    }

    fn failed() -> Self {
        Self {
            delay_rise: f64::NAN,
            delay_fall: f64::NAN,
            power_rise: f64::NAN,
            power_fall: f64::NAN,
            leakage_high: f64::NAN,
            leakage_low: f64::NAN,
            functional: false,
        }
    }
}

/// Why a query could not be served from the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// The query left the trust region of the named axis.
    OutOfTrustRegion(&'static str),
    /// The query clamps onto the grid hull on two or more axes at
    /// once. Single-axis clamping inside the trust margin is ordinary
    /// edge extrapolation; a *corner* clamp compounds the per-axis
    /// extrapolation error multiplicatively, so it is refused and
    /// counted separately — optimizers probe corners constantly, and
    /// silently served corner values would skew the search.
    ClampedCorner,
    /// A grid point the interpolation would read is non-functional
    /// (the cell does not translate there), so the surrounding table
    /// cell cannot be trusted.
    NonFunctionalRegion,
}

/// Where an evaluation's numbers came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalSource {
    /// The interpolated table fast path.
    Table,
    /// An exact transient, after the recorded fallback.
    Exact(FallbackReason),
}

/// One answered query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// The metrics at the query point.
    pub metrics: TableMetrics,
    /// Fast path or exact fallback.
    pub source: EvalSource,
}

/// The filled tables, flat row-major vectors parallel to
/// [`GridSpec::point`] indexing.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Tables {
    pub(crate) delay_rise: Vec<f64>,
    pub(crate) delay_fall: Vec<f64>,
    pub(crate) power_rise: Vec<f64>,
    pub(crate) power_fall: Vec<f64>,
    pub(crate) leakage_high: Vec<f64>,
    pub(crate) leakage_low: Vec<f64>,
    pub(crate) functional: Vec<bool>,
}

impl Tables {
    pub(crate) fn metrics_at(&self, flat: usize) -> TableMetrics {
        TableMetrics {
            delay_rise: self.delay_rise[flat],
            delay_fall: self.delay_fall[flat],
            power_rise: self.power_rise[flat],
            power_fall: self.power_fall[flat],
            leakage_high: self.leakage_high[flat],
            leakage_low: self.leakage_low[flat],
            functional: self.functional[flat],
        }
    }
}

/// How [`CharLib::load_or_build`] obtained the library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildStatus {
    /// A valid artifact was loaded from disk.
    Loaded,
    /// No artifact existed; the grid was filled and saved.
    BuiltMissing,
    /// An artifact existed but could not be served (stale hash, wrong
    /// format, different grid, schema violation); it was rebuilt and
    /// overwritten. The string says why.
    Rebuilt(String),
}

/// A coherent point-in-time snapshot of the surrogate traffic
/// counters: both fields come from one atomic load of the packed
/// counter word, so `hits + misses` always equals the number of
/// queries whose outcome had been recorded at the instant of the
/// snapshot — a concurrent reader can never observe a torn pair
/// (e.g. a hit counted but "not yet" visible next to a later miss
/// that is). Each class is 32 bits wide and wraps independently at
/// `2^32`; serving-scale consumers that need wider counters should
/// difference snapshots periodically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SurrogateCounters {
    /// Queries served from the table since construction.
    pub hits: u64,
    /// Queries that needed the exact path since construction.
    pub misses: u64,
}

impl SurrogateCounters {
    /// Total recorded query outcomes.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }
}

/// Hit unit of the packed counter word: hits live in the high 32 bits,
/// misses in the low 32, so one `fetch_add` records an outcome and one
/// `load` reads a coherent (hits, misses) pair.
const HIT_UNIT: u64 = 1 << 32;

/// A characterization library: the filled grid plus everything needed
/// to fall back to an exact simulation for untrusted queries.
#[derive(Debug)]
pub struct CharLib {
    kind: ShifterKind,
    base: CharacterizeOptions,
    grid: GridSpec,
    content_hash: u64,
    tables: Tables,
    /// Packed traffic counters: `hits << 32 | misses`. Exactly one
    /// `fetch_add` per recorded outcome — never two separate counter
    /// updates a reader could observe half-applied.
    counters: AtomicU64,
    /// Queries refused because they clamped on ≥ 2 axes at once. A
    /// separate word, not a third field in the packed counter: every
    /// corner clamp is *also* recorded as a miss (the query does fall
    /// back to the exact path), so the hit/miss balance invariants
    /// served by [`SurrogateCounters`] are untouched.
    corner_clamps: AtomicU64,
}

impl CharLib {
    /// Fills the grid for `kind` by running the exact measurement
    /// protocol at every point, sharded across workers per `runner`.
    /// Points where the protocol fails (the cell does not translate,
    /// an edge never appears, the engine diverges) are recorded as
    /// non-functional, not errors — exactly like the Figure 8/9 sweep.
    /// The filled tables are bit-identical for every worker count.
    ///
    /// `base` carries the protocol constants (tolerances, power
    /// window); its slew/load/temperature are overridden per grid
    /// point.
    pub fn build(
        kind: &ShifterKind,
        base: &CharacterizeOptions,
        grid: GridSpec,
        runner: &RunnerOptions,
    ) -> Self {
        let n = grid.n_points();
        let points = vls_runner::run_indexed(n, runner, |flat| {
            let q = grid.point(flat);
            match characterize(
                kind,
                VoltagePair::new(q.vddi, q.vddo),
                &options_at(base, &q),
            ) {
                Ok(m) => TableMetrics::from_cell(&m),
                Err(_) => TableMetrics::failed(),
            }
        });
        let mut tables = Tables {
            delay_rise: Vec::with_capacity(n),
            delay_fall: Vec::with_capacity(n),
            power_rise: Vec::with_capacity(n),
            power_fall: Vec::with_capacity(n),
            leakage_high: Vec::with_capacity(n),
            leakage_low: Vec::with_capacity(n),
            functional: Vec::with_capacity(n),
        };
        for m in points {
            tables.delay_rise.push(m.delay_rise);
            tables.delay_fall.push(m.delay_fall);
            tables.power_rise.push(m.power_rise);
            tables.power_fall.push(m.power_fall);
            tables.leakage_high.push(m.leakage_high);
            tables.leakage_low.push(m.leakage_low);
            tables.functional.push(m.functional);
        }
        let content_hash = content_hash(kind, base, &grid);
        Self {
            kind: kind.clone(),
            base: base.clone(),
            grid,
            content_hash,
            tables,
            counters: AtomicU64::new(0),
            corner_clamps: AtomicU64::new(0),
        }
    }

    pub(crate) fn from_parts(
        kind: ShifterKind,
        base: CharacterizeOptions,
        grid: GridSpec,
        content_hash: u64,
        tables: Tables,
    ) -> Self {
        Self {
            kind,
            base,
            grid,
            content_hash,
            tables,
            counters: AtomicU64::new(0),
            corner_clamps: AtomicU64::new(0),
        }
    }

    /// Loads an artifact and verifies it against the requested cell +
    /// protocol, then — when the file is missing, stale, unreadable or
    /// built over a different grid — fills `grid` from scratch and
    /// saves the fresh artifact over it. A stale artifact is never
    /// silently served.
    ///
    /// # Errors
    ///
    /// Propagates artifact I/O failures (other than the file simply
    /// not existing) and grid validation failures.
    pub fn load_or_build(
        path: impl AsRef<std::path::Path>,
        kind: &ShifterKind,
        base: &CharacterizeOptions,
        grid: GridSpec,
        runner: &RunnerOptions,
    ) -> Result<(Self, BuildStatus), CharLibError> {
        let path = path.as_ref();
        let rebuild = |status: BuildStatus| -> Result<(Self, BuildStatus), CharLibError> {
            let lib = Self::build(kind, base, grid.clone(), runner);
            lib.save(path)?;
            Ok((lib, status))
        };
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return rebuild(BuildStatus::BuiltMissing);
            }
            Err(e) => return Err(CharLibError::Io(e)),
        };
        match Self::load_json(&text, kind, base) {
            Ok(lib) if lib.grid == grid => Ok((lib, BuildStatus::Loaded)),
            Ok(_) => rebuild(BuildStatus::Rebuilt("grid specification changed".into())),
            Err(e @ (CharLibError::Stale { .. } | CharLibError::Format { .. })) => {
                rebuild(BuildStatus::Rebuilt(e.to_string()))
            }
            Err(CharLibError::Parse(msg)) => {
                rebuild(BuildStatus::Rebuilt(format!("artifact unreadable: {msg}")))
            }
            Err(e) => Err(e),
        }
    }

    /// Loads and verifies an artifact file for the given cell +
    /// protocol.
    ///
    /// # Errors
    ///
    /// [`CharLibError::Io`] on read failure, and everything
    /// [`Self::load_json`] reports.
    pub fn load(
        path: impl AsRef<std::path::Path>,
        kind: &ShifterKind,
        base: &CharacterizeOptions,
    ) -> Result<Self, CharLibError> {
        Self::load_json(&std::fs::read_to_string(path)?, kind, base)
    }

    /// Saves the artifact as canonical JSON. Round-tripping the file
    /// through [`Self::load`] and saving again is byte-identical.
    ///
    /// # Errors
    ///
    /// [`CharLibError::Io`] on write failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), CharLibError> {
        std::fs::write(path, self.to_json())?;
        Ok(())
    }

    /// The cell this library characterizes.
    pub fn kind(&self) -> &ShifterKind {
        &self.kind
    }

    /// The protocol constants the grid was filled with.
    pub fn base_options(&self) -> &CharacterizeOptions {
        &self.base
    }

    /// The grid specification.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// The artifact's content hash (cell kind + device parameters +
    /// protocol + grid).
    pub fn content_hash(&self) -> u64 {
        self.content_hash
    }

    /// Records one query outcome with a single packed `fetch_add`, the
    /// only write the counter word ever sees.
    fn record(&self, hit: bool) {
        let unit = if hit { HIT_UNIT } else { 1 };
        self.counters.fetch_add(unit, Ordering::Relaxed);
    }

    /// A coherent snapshot of the traffic counters: one atomic load of
    /// the packed word, so the pair can never tear under concurrent
    /// writers the way two independent loads could.
    pub fn counter_snapshot(&self) -> SurrogateCounters {
        let word = self.counters.load(Ordering::Relaxed);
        SurrogateCounters {
            hits: word >> 32,
            misses: word & 0xffff_ffff,
        }
    }

    /// Queries served from the table since construction.
    pub fn hit_count(&self) -> u64 {
        self.counter_snapshot().hits
    }

    /// Queries that fell back to an exact transient since
    /// construction.
    pub fn miss_count(&self) -> u64 {
        self.counter_snapshot().misses
    }

    /// Queries refused because they clamped onto the grid hull on two
    /// or more axes simultaneously (a strict subset of
    /// [`Self::miss_count`] — every corner clamp is also a miss).
    pub fn corner_clamp_count(&self) -> u64 {
        self.corner_clamps.load(Ordering::Relaxed)
    }

    /// The stored metrics of grid point `flat` (no interpolation).
    ///
    /// # Panics
    ///
    /// Panics if `flat` is out of range.
    pub fn point_metrics(&self, flat: usize) -> TableMetrics {
        self.tables.metrics_at(flat)
    }

    /// The table fast path alone: clamped multilinear interpolation,
    /// `None` when the query is outside the trust region or a grid
    /// point it would read is non-functional. Does not touch the
    /// hit/miss counters — use [`Self::eval`] for served traffic.
    pub fn eval_table(&self, q: &QueryPoint) -> Option<TableMetrics> {
        if self.grid.out_of_trust(q).is_some() || self.grid.clamped_axes(q) >= 2 {
            return None;
        }
        interp::interpolate(&self.grid, &self.tables, q)
    }

    /// The counted table fast path: serves the query from the surrogate
    /// and records a hit, or records a miss and says why the caller
    /// must fall back to an exact transient. This is the single place
    /// the traffic counters are written, so any front end built on it
    /// (the CLI, `vls-serve`) shares one counting discipline.
    pub fn probe_table(&self, q: &QueryPoint) -> Result<TableMetrics, FallbackReason> {
        if let Some(axis) = self.grid.out_of_trust(q) {
            self.record(false);
            return Err(FallbackReason::OutOfTrustRegion(axis));
        }
        // Inside the trust margin but beyond the hull on ≥ 2 axes:
        // the interpolation would extrapolate a *corner*, compounding
        // per-axis error. Refuse and force the exact path.
        if self.grid.clamped_axes(q) >= 2 {
            self.corner_clamps.fetch_add(1, Ordering::Relaxed);
            self.record(false);
            return Err(FallbackReason::ClampedCorner);
        }
        match interp::interpolate(&self.grid, &self.tables, q) {
            Some(metrics) => {
                self.record(true);
                Ok(metrics)
            }
            None => {
                self.record(false);
                Err(FallbackReason::NonFunctionalRegion)
            }
        }
    }

    /// Answers a query: from the table when the point is trusted,
    /// otherwise via an exact transient (recording the miss).
    ///
    /// # Errors
    ///
    /// [`CharLibError::Sim`] when the exact fallback itself fails —
    /// the table fast path cannot fail.
    pub fn eval(&self, q: &QueryPoint) -> Result<Evaluation, CharLibError> {
        match self.probe_table(q) {
            Ok(metrics) => Ok(Evaluation {
                metrics,
                source: EvalSource::Table,
            }),
            Err(reason) => self.eval_exact(q).map(|metrics| Evaluation {
                metrics,
                source: EvalSource::Exact(reason),
            }),
        }
    }

    /// Runs the exact measurement protocol at `q` — the fallback path,
    /// also usable directly as the ground truth in accuracy checks.
    ///
    /// # Errors
    ///
    /// [`CharLibError::Sim`] when the protocol fails at this point.
    pub fn eval_exact(&self, q: &QueryPoint) -> Result<TableMetrics, CharLibError> {
        self.eval_exact_opts(q, &self.base)
    }

    /// [`Self::eval_exact`] with caller-supplied protocol constants:
    /// `base` replaces the library's stored options before the grid
    /// coordinates are substituted in. Lets a server thread its own
    /// solver budgets and fault plan through the exact path without
    /// rebuilding the library.
    ///
    /// # Errors
    ///
    /// [`CharLibError::Sim`] when the protocol fails at this point.
    pub fn eval_exact_opts(
        &self,
        q: &QueryPoint,
        base: &CharacterizeOptions,
    ) -> Result<TableMetrics, CharLibError> {
        let m = characterize(
            &self.kind,
            VoltagePair::new(q.vddi, q.vddo),
            &options_at(base, q),
        )?;
        Ok(TableMetrics::from_cell(&m))
    }

    /// Batch form of [`Self::probe_table`]: probes every query, fanned
    /// across workers per `runner`, results in query order regardless
    /// of worker count. Counter totals are identical to probing the
    /// queries serially (each probe records exactly one outcome via the
    /// same atomic discipline); only the interleaving differs.
    pub fn probe_batch(
        &self,
        queries: &[QueryPoint],
        runner: &RunnerOptions,
    ) -> Vec<Result<TableMetrics, FallbackReason>> {
        vls_runner::run_indexed(queries.len(), runner, |i| self.probe_table(&queries[i]))
    }

    /// Batch form of [`Self::eval`]: answers every query — table fast
    /// path or exact fallback — fanned across workers per `runner`,
    /// results in query order regardless of worker count. This is the
    /// shape optimizer candidate waves arrive in: mostly table hits
    /// with the occasional exact transient, all accounted through the
    /// shared counters.
    pub fn eval_batch(
        &self,
        queries: &[QueryPoint],
        runner: &RunnerOptions,
    ) -> Vec<Result<Evaluation, CharLibError>> {
        vls_runner::run_indexed(queries.len(), runner, |i| self.eval(&queries[i]))
    }
}

/// The per-point protocol options: `base` with the grid coordinates
/// substituted in.
fn options_at(base: &CharacterizeOptions, q: &QueryPoint) -> CharacterizeOptions {
    let mut o = base.clone();
    o.input_slew = q.slew;
    o.load_farads = q.load;
    o.sim.temperature = Temperature::from_celsius(q.temp);
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic single-point library: every axis is a singleton, so
    /// an on-grid query interpolates trivially (hit) and any distant
    /// coordinate leaves the trust region (miss) — no simulation runs.
    fn one_point_lib() -> CharLib {
        let grid = GridSpec::new(
            vec![50e-12],
            vec![1e-15],
            vec![1.0],
            vec![1.0],
            vec![27.0],
            0.0,
        )
        .unwrap();
        let tables = Tables {
            delay_rise: vec![1e-10],
            delay_fall: vec![1e-10],
            power_rise: vec![1e-6],
            power_fall: vec![1e-6],
            leakage_high: vec![1e-9],
            leakage_low: vec![1e-9],
            functional: vec![true],
        };
        CharLib::from_parts(
            ShifterKind::sstvs(),
            CharacterizeOptions::default(),
            grid,
            0,
            tables,
        )
    }

    #[test]
    fn probe_table_records_hits_and_misses() {
        let lib = one_point_lib();
        let on_grid = QueryPoint {
            slew: 50e-12,
            load: 1e-15,
            vddi: 1.0,
            vddo: 1.0,
            temp: 27.0,
        };
        assert!(lib.probe_table(&on_grid).is_ok());
        let far = QueryPoint {
            vddi: 5.0,
            ..on_grid
        };
        assert_eq!(
            lib.probe_table(&far),
            Err(FallbackReason::OutOfTrustRegion("vddi"))
        );
        let snap = lib.counter_snapshot();
        assert_eq!(snap, SurrogateCounters { hits: 1, misses: 1 });
        assert_eq!(snap.total(), 2);
        assert_eq!(lib.hit_count(), 1);
        assert_eq!(lib.miss_count(), 1);
    }

    /// Loom-free counter stress: writer threads alternate hit/miss
    /// probes while a reader scrapes snapshots. Each writer is at most
    /// one probe ahead on hits, so every *coherent* snapshot satisfies
    /// `hits - misses ∈ [0, n_threads]`; a torn two-word read could
    /// violate that by an unbounded margin. Exact final totals prove no
    /// update was lost to a read-modify-write race.
    #[test]
    fn counter_snapshot_is_coherent_under_concurrent_probes() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        const THREADS: u64 = 8;
        const CYCLES: u64 = 4000;

        let lib = Arc::new(one_point_lib());
        let on_grid = QueryPoint {
            slew: 50e-12,
            load: 1e-15,
            vddi: 1.0,
            vddo: 1.0,
            temp: 27.0,
        };
        let far = QueryPoint {
            vddi: 5.0,
            ..on_grid
        };

        let done = Arc::new(AtomicBool::new(false));
        let reader = {
            let lib = Arc::clone(&lib);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut scrapes = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let s = lib.counter_snapshot();
                    assert!(
                        s.hits >= s.misses && s.hits - s.misses <= THREADS,
                        "torn snapshot: hits {} misses {}",
                        s.hits,
                        s.misses
                    );
                    scrapes += 1;
                }
                scrapes
            })
        };

        let writers: Vec<_> = (0..THREADS)
            .map(|_| {
                let lib = Arc::clone(&lib);
                std::thread::spawn(move || {
                    for _ in 0..CYCLES {
                        let _ = lib.probe_table(&on_grid); // hit
                        let _ = lib.probe_table(&far); // miss
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
        assert!(reader.join().unwrap() > 0, "reader never scraped");

        // No lost updates: final totals are exact.
        let s = lib.counter_snapshot();
        assert_eq!(s.hits, THREADS * CYCLES);
        assert_eq!(s.misses, THREADS * CYCLES);
    }

    /// Corner-clamp policy: with a trust margin, a query overhanging
    /// the hull on one axis is served from the clamped edge, but a
    /// query overhanging two axes at once is refused with a distinct
    /// reason, counted both as a miss and in the dedicated corner
    /// counter.
    #[test]
    fn corner_clamp_is_refused_and_counted() {
        let grid = GridSpec::new(
            vec![50e-12],
            vec![1e-15, 2e-15],
            vec![0.8, 1.2],
            vec![0.8, 1.2],
            vec![27.0],
            0.25,
        )
        .unwrap();
        let n = grid.n_points();
        let tables = Tables {
            delay_rise: vec![1e-10; n],
            delay_fall: vec![1e-10; n],
            power_rise: vec![1e-6; n],
            power_fall: vec![1e-6; n],
            leakage_high: vec![1e-9; n],
            leakage_low: vec![1e-9; n],
            functional: vec![true; n],
        };
        let lib = CharLib::from_parts(
            ShifterKind::sstvs(),
            CharacterizeOptions::default(),
            grid,
            0,
            tables,
        );
        let inside = QueryPoint {
            slew: 50e-12,
            load: 1.5e-15,
            vddi: 1.0,
            vddo: 1.0,
            temp: 27.0,
        };
        assert!(lib.probe_table(&inside).is_ok());
        // One-axis overhang inside the 25% margin (0.1 V): clamped
        // edge serve, still a hit.
        let one_axis = QueryPoint {
            vddi: 1.25,
            ..inside
        };
        assert!(lib.probe_table(&one_axis).is_ok());
        assert_eq!(lib.corner_clamp_count(), 0);
        // Two axes at once: refused, miss + corner counter, and the
        // uncounted fast path agrees.
        let corner = QueryPoint {
            vddi: 1.25,
            vddo: 1.25,
            ..inside
        };
        assert_eq!(lib.probe_table(&corner), Err(FallbackReason::ClampedCorner));
        assert!(lib.eval_table(&corner).is_none());
        assert_eq!(lib.corner_clamp_count(), 1);
        let snap = lib.counter_snapshot();
        assert_eq!(snap, SurrogateCounters { hits: 2, misses: 1 });
        // Way off any axis still reports out-of-trust first.
        let far = QueryPoint {
            vddi: 5.0,
            vddo: 5.0,
            ..inside
        };
        assert_eq!(
            lib.probe_table(&far),
            Err(FallbackReason::OutOfTrustRegion("vddi"))
        );
        assert_eq!(lib.corner_clamp_count(), 1);
    }

    /// The batch API returns results in query order and lands the same
    /// counter totals as serial probing.
    #[test]
    fn probe_batch_matches_serial_probing() {
        let lib = one_point_lib();
        let on_grid = QueryPoint {
            slew: 50e-12,
            load: 1e-15,
            vddi: 1.0,
            vddo: 1.0,
            temp: 27.0,
        };
        let far = QueryPoint {
            vddi: 5.0,
            ..on_grid
        };
        let queries: Vec<QueryPoint> = (0..24)
            .map(|i| if i % 3 == 0 { far } else { on_grid })
            .collect();
        let batch = lib.probe_batch(&queries, &RunnerOptions::with_jobs(4));
        assert_eq!(batch.len(), queries.len());
        for (i, r) in batch.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(r, &Err(FallbackReason::OutOfTrustRegion("vddi")));
            } else {
                assert!(r.is_ok(), "query {i}");
            }
        }
        let snap = lib.counter_snapshot();
        assert_eq!(snap.hits, 16);
        assert_eq!(snap.misses, 8);
    }

    #[test]
    fn options_at_substitutes_the_grid_coordinates() {
        let q = QueryPoint {
            slew: 80e-12,
            load: 2e-15,
            vddi: 0.9,
            vddo: 1.1,
            temp: 85.0,
        };
        let o = options_at(&CharacterizeOptions::default(), &q);
        assert_eq!(o.input_slew, 80e-12);
        assert_eq!(o.load_farads, 2e-15);
        assert!((o.sim.temperature.as_celsius() - 85.0).abs() < 1e-9);
        // Protocol constants survive.
        assert_eq!(o.power_window, CharacterizeOptions::default().power_window);
    }
}
