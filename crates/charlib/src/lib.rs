//! Liberty-style characterization tables for the paper's shifter
//! cells: precompute-then-serve.
//!
//! The paper's headline results (Tables 3–4, Figures 8–9) are a
//! characterization grid — delay/power/leakage of a cell over
//! `(input slew, output load, VDDI, VDDO, temperature)` — yet every
//! query used to re-run a full transient. SoC-scale consumers
//! (level-shifter-assignment floorplanners, design-space exploration)
//! issue millions of point queries; those are table lookups, not SPICE
//! runs. This crate is that serving layer:
//!
//! 1. [`GridSpec`] — the five-axis grid, filled in parallel through
//!    `vls-runner` with the exact `vls-core` measurement protocol
//!    (results are bit-identical for every worker count);
//! 2. an on-disk, versioned, std-only JSON artifact keyed by a content
//!    hash of cell kind + device parameters + grid + protocol, so a
//!    stale artifact is *detected and rebuilt*, never silently served
//!    ([`CharLib::load_or_build`]);
//! 3. [`CharLib::eval`] — clamped multilinear interpolation with a
//!    per-axis trust region: inside the region the answer comes from
//!    the table in sub-microsecond time; outside it the query falls
//!    back to an exact transient and the miss is recorded;
//! 4. a Liberty-style NLDM `.lib` exporter ([`CharLib::to_liberty`])
//!    so external EDA flows can consume the tables.
//!
//! # Example
//!
//! ```no_run
//! use vls_charlib::{CharLib, GridSpec, QueryPoint};
//! use vls_cells::ShifterKind;
//! use vls_core::CharacterizeOptions;
//! use vls_runner::RunnerOptions;
//!
//! # fn main() -> Result<(), vls_charlib::CharLibError> {
//! let grid = GridSpec::rails(0.8, 1.4, 0.1, vec![27.0])?;
//! let (lib, status) = CharLib::load_or_build(
//!     "sstvs.charlib.json",
//!     &ShifterKind::sstvs(),
//!     &CharacterizeOptions::default(),
//!     grid,
//!     &RunnerOptions::default(),
//! )?;
//! println!("library {status:?}, {} points", lib.grid().n_points());
//! let ev = lib.eval(&QueryPoint {
//!     slew: 50e-12,
//!     load: 1e-15,
//!     vddi: 0.85,
//!     vddo: 1.25,
//!     temp: 27.0,
//! })?;
//! println!("rise delay {:.3} ps (source {:?})", ev.metrics.delay_rise * 1e12, ev.source);
//! # Ok(())
//! # }
//! ```

mod artifact;
mod grid;
mod interp;
mod json;
mod liberty;
mod surface;

pub use artifact::{content_hash, FORMAT_VERSION};
pub use grid::{GridSpec, QueryPoint, AXIS_NAMES};
pub use liberty::LibertyCorner;
pub use surface::delay_surface_from_lib;

use std::sync::atomic::{AtomicU64, Ordering};

use vls_cells::{ShifterKind, VoltagePair};
use vls_core::{characterize, CellMetrics, CharacterizeOptions, CoreError};
use vls_runner::RunnerOptions;
use vls_units::Temperature;

/// Errors from building, loading or querying a characterization
/// library.
#[derive(Debug)]
pub enum CharLibError {
    /// The grid specification is unusable.
    BadGrid(String),
    /// Artifact file I/O failed.
    Io(std::io::Error),
    /// The artifact does not parse or violates the schema.
    Parse(String),
    /// The artifact's format version is not supported by this build.
    Format {
        /// Version found in the artifact.
        found: u32,
    },
    /// The artifact's content hash does not match the requested cell +
    /// protocol — it was built for something else and must be rebuilt,
    /// not served.
    Stale {
        /// Hash recomputed from the requested cell/protocol/grid.
        expected: u64,
        /// Hash recorded in the artifact.
        found: u64,
    },
    /// The exact-simulation fallback failed.
    Sim(CoreError),
    /// The requested Liberty export is not possible.
    Liberty(String),
}

impl core::fmt::Display for CharLibError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CharLibError::BadGrid(msg) => write!(f, "bad grid: {msg}"),
            CharLibError::Io(e) => write!(f, "artifact io error: {e}"),
            CharLibError::Parse(msg) => write!(f, "artifact parse error: {msg}"),
            CharLibError::Format { found } => write!(
                f,
                "unsupported artifact format {found} (this build reads {FORMAT_VERSION})"
            ),
            CharLibError::Stale { expected, found } => write!(
                f,
                "stale artifact: content hash {found:#018x} does not match requested \
                 cell/protocol/grid {expected:#018x}; rebuild required"
            ),
            CharLibError::Sim(e) => write!(f, "exact fallback failed: {e}"),
            CharLibError::Liberty(msg) => write!(f, "liberty export: {msg}"),
        }
    }
}

impl std::error::Error for CharLibError {}

impl From<std::io::Error> for CharLibError {
    fn from(e: std::io::Error) -> Self {
        CharLibError::Io(e)
    }
}

impl From<CoreError> for CharLibError {
    fn from(e: CoreError) -> Self {
        CharLibError::Sim(e)
    }
}

/// The six metrics of one operating point, in SI base units (seconds,
/// watts, amperes) — the table-native mirror of
/// [`vls_core::CellMetrics`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableMetrics {
    /// Output rising delay, s.
    pub delay_rise: f64,
    /// Output falling delay, s.
    pub delay_fall: f64,
    /// Average switching power, rising-output event, W.
    pub power_rise: f64,
    /// Average switching power, falling-output event, W.
    pub power_fall: f64,
    /// Steady-state VDDO-referred leakage, output high, A.
    pub leakage_high: f64,
    /// Steady-state VDDO-referred leakage, output low, A.
    pub leakage_low: f64,
    /// `true` when the cell translated correctly at this point.
    pub functional: bool,
}

impl TableMetrics {
    fn from_cell(m: &CellMetrics) -> Self {
        Self {
            delay_rise: m.delay_rise.value(),
            delay_fall: m.delay_fall.value(),
            power_rise: m.power_rise.value(),
            power_fall: m.power_fall.value(),
            leakage_high: m.leakage_high.value(),
            leakage_low: m.leakage_low.value(),
            functional: m.functional,
        }
    }

    fn failed() -> Self {
        Self {
            delay_rise: f64::NAN,
            delay_fall: f64::NAN,
            power_rise: f64::NAN,
            power_fall: f64::NAN,
            leakage_high: f64::NAN,
            leakage_low: f64::NAN,
            functional: false,
        }
    }
}

/// Why a query could not be served from the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// The query left the trust region of the named axis.
    OutOfTrustRegion(&'static str),
    /// A grid point the interpolation would read is non-functional
    /// (the cell does not translate there), so the surrounding table
    /// cell cannot be trusted.
    NonFunctionalRegion,
}

/// Where an evaluation's numbers came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalSource {
    /// The interpolated table fast path.
    Table,
    /// An exact transient, after the recorded fallback.
    Exact(FallbackReason),
}

/// One answered query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// The metrics at the query point.
    pub metrics: TableMetrics,
    /// Fast path or exact fallback.
    pub source: EvalSource,
}

/// The filled tables, flat row-major vectors parallel to
/// [`GridSpec::point`] indexing.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Tables {
    pub(crate) delay_rise: Vec<f64>,
    pub(crate) delay_fall: Vec<f64>,
    pub(crate) power_rise: Vec<f64>,
    pub(crate) power_fall: Vec<f64>,
    pub(crate) leakage_high: Vec<f64>,
    pub(crate) leakage_low: Vec<f64>,
    pub(crate) functional: Vec<bool>,
}

impl Tables {
    pub(crate) fn metrics_at(&self, flat: usize) -> TableMetrics {
        TableMetrics {
            delay_rise: self.delay_rise[flat],
            delay_fall: self.delay_fall[flat],
            power_rise: self.power_rise[flat],
            power_fall: self.power_fall[flat],
            leakage_high: self.leakage_high[flat],
            leakage_low: self.leakage_low[flat],
            functional: self.functional[flat],
        }
    }
}

/// How [`CharLib::load_or_build`] obtained the library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildStatus {
    /// A valid artifact was loaded from disk.
    Loaded,
    /// No artifact existed; the grid was filled and saved.
    BuiltMissing,
    /// An artifact existed but could not be served (stale hash, wrong
    /// format, different grid, schema violation); it was rebuilt and
    /// overwritten. The string says why.
    Rebuilt(String),
}

/// A characterization library: the filled grid plus everything needed
/// to fall back to an exact simulation for untrusted queries.
#[derive(Debug)]
pub struct CharLib {
    kind: ShifterKind,
    base: CharacterizeOptions,
    grid: GridSpec,
    content_hash: u64,
    tables: Tables,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CharLib {
    /// Fills the grid for `kind` by running the exact measurement
    /// protocol at every point, sharded across workers per `runner`.
    /// Points where the protocol fails (the cell does not translate,
    /// an edge never appears, the engine diverges) are recorded as
    /// non-functional, not errors — exactly like the Figure 8/9 sweep.
    /// The filled tables are bit-identical for every worker count.
    ///
    /// `base` carries the protocol constants (tolerances, power
    /// window); its slew/load/temperature are overridden per grid
    /// point.
    pub fn build(
        kind: &ShifterKind,
        base: &CharacterizeOptions,
        grid: GridSpec,
        runner: &RunnerOptions,
    ) -> Self {
        let n = grid.n_points();
        let points = vls_runner::run_indexed(n, runner, |flat| {
            let q = grid.point(flat);
            match characterize(
                kind,
                VoltagePair::new(q.vddi, q.vddo),
                &options_at(base, &q),
            ) {
                Ok(m) => TableMetrics::from_cell(&m),
                Err(_) => TableMetrics::failed(),
            }
        });
        let mut tables = Tables {
            delay_rise: Vec::with_capacity(n),
            delay_fall: Vec::with_capacity(n),
            power_rise: Vec::with_capacity(n),
            power_fall: Vec::with_capacity(n),
            leakage_high: Vec::with_capacity(n),
            leakage_low: Vec::with_capacity(n),
            functional: Vec::with_capacity(n),
        };
        for m in points {
            tables.delay_rise.push(m.delay_rise);
            tables.delay_fall.push(m.delay_fall);
            tables.power_rise.push(m.power_rise);
            tables.power_fall.push(m.power_fall);
            tables.leakage_high.push(m.leakage_high);
            tables.leakage_low.push(m.leakage_low);
            tables.functional.push(m.functional);
        }
        let content_hash = content_hash(kind, base, &grid);
        Self {
            kind: kind.clone(),
            base: base.clone(),
            grid,
            content_hash,
            tables,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    pub(crate) fn from_parts(
        kind: ShifterKind,
        base: CharacterizeOptions,
        grid: GridSpec,
        content_hash: u64,
        tables: Tables,
    ) -> Self {
        Self {
            kind,
            base,
            grid,
            content_hash,
            tables,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Loads an artifact and verifies it against the requested cell +
    /// protocol, then — when the file is missing, stale, unreadable or
    /// built over a different grid — fills `grid` from scratch and
    /// saves the fresh artifact over it. A stale artifact is never
    /// silently served.
    ///
    /// # Errors
    ///
    /// Propagates artifact I/O failures (other than the file simply
    /// not existing) and grid validation failures.
    pub fn load_or_build(
        path: impl AsRef<std::path::Path>,
        kind: &ShifterKind,
        base: &CharacterizeOptions,
        grid: GridSpec,
        runner: &RunnerOptions,
    ) -> Result<(Self, BuildStatus), CharLibError> {
        let path = path.as_ref();
        let rebuild = |status: BuildStatus| -> Result<(Self, BuildStatus), CharLibError> {
            let lib = Self::build(kind, base, grid.clone(), runner);
            lib.save(path)?;
            Ok((lib, status))
        };
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return rebuild(BuildStatus::BuiltMissing);
            }
            Err(e) => return Err(CharLibError::Io(e)),
        };
        match Self::load_json(&text, kind, base) {
            Ok(lib) if lib.grid == grid => Ok((lib, BuildStatus::Loaded)),
            Ok(_) => rebuild(BuildStatus::Rebuilt("grid specification changed".into())),
            Err(e @ (CharLibError::Stale { .. } | CharLibError::Format { .. })) => {
                rebuild(BuildStatus::Rebuilt(e.to_string()))
            }
            Err(CharLibError::Parse(msg)) => {
                rebuild(BuildStatus::Rebuilt(format!("artifact unreadable: {msg}")))
            }
            Err(e) => Err(e),
        }
    }

    /// Loads and verifies an artifact file for the given cell +
    /// protocol.
    ///
    /// # Errors
    ///
    /// [`CharLibError::Io`] on read failure, and everything
    /// [`Self::load_json`] reports.
    pub fn load(
        path: impl AsRef<std::path::Path>,
        kind: &ShifterKind,
        base: &CharacterizeOptions,
    ) -> Result<Self, CharLibError> {
        Self::load_json(&std::fs::read_to_string(path)?, kind, base)
    }

    /// Saves the artifact as canonical JSON. Round-tripping the file
    /// through [`Self::load`] and saving again is byte-identical.
    ///
    /// # Errors
    ///
    /// [`CharLibError::Io`] on write failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), CharLibError> {
        std::fs::write(path, self.to_json())?;
        Ok(())
    }

    /// The cell this library characterizes.
    pub fn kind(&self) -> &ShifterKind {
        &self.kind
    }

    /// The protocol constants the grid was filled with.
    pub fn base_options(&self) -> &CharacterizeOptions {
        &self.base
    }

    /// The grid specification.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// The artifact's content hash (cell kind + device parameters +
    /// protocol + grid).
    pub fn content_hash(&self) -> u64 {
        self.content_hash
    }

    /// Queries served from the table since construction.
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Queries that fell back to an exact transient since
    /// construction.
    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The stored metrics of grid point `flat` (no interpolation).
    ///
    /// # Panics
    ///
    /// Panics if `flat` is out of range.
    pub fn point_metrics(&self, flat: usize) -> TableMetrics {
        self.tables.metrics_at(flat)
    }

    /// The table fast path alone: clamped multilinear interpolation,
    /// `None` when the query is outside the trust region or a grid
    /// point it would read is non-functional. Does not touch the
    /// hit/miss counters — use [`Self::eval`] for served traffic.
    pub fn eval_table(&self, q: &QueryPoint) -> Option<TableMetrics> {
        if self.grid.out_of_trust(q).is_some() {
            return None;
        }
        interp::interpolate(&self.grid, &self.tables, q)
    }

    /// Answers a query: from the table when the point is trusted,
    /// otherwise via an exact transient (recording the miss).
    ///
    /// # Errors
    ///
    /// [`CharLibError::Sim`] when the exact fallback itself fails —
    /// the table fast path cannot fail.
    pub fn eval(&self, q: &QueryPoint) -> Result<Evaluation, CharLibError> {
        if let Some(axis) = self.grid.out_of_trust(q) {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return self.eval_exact(q).map(|metrics| Evaluation {
                metrics,
                source: EvalSource::Exact(FallbackReason::OutOfTrustRegion(axis)),
            });
        }
        match interp::interpolate(&self.grid, &self.tables, q) {
            Some(metrics) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Ok(Evaluation {
                    metrics,
                    source: EvalSource::Table,
                })
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.eval_exact(q).map(|metrics| Evaluation {
                    metrics,
                    source: EvalSource::Exact(FallbackReason::NonFunctionalRegion),
                })
            }
        }
    }

    /// Runs the exact measurement protocol at `q` — the fallback path,
    /// also usable directly as the ground truth in accuracy checks.
    ///
    /// # Errors
    ///
    /// [`CharLibError::Sim`] when the protocol fails at this point.
    pub fn eval_exact(&self, q: &QueryPoint) -> Result<TableMetrics, CharLibError> {
        let m = characterize(
            &self.kind,
            VoltagePair::new(q.vddi, q.vddo),
            &options_at(&self.base, q),
        )?;
        Ok(TableMetrics::from_cell(&m))
    }
}

/// The per-point protocol options: `base` with the grid coordinates
/// substituted in.
fn options_at(base: &CharacterizeOptions, q: &QueryPoint) -> CharacterizeOptions {
    let mut o = base.clone();
    o.input_slew = q.slew;
    o.load_farads = q.load;
    o.sim.temperature = Temperature::from_celsius(q.temp);
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_at_substitutes_the_grid_coordinates() {
        let q = QueryPoint {
            slew: 80e-12,
            load: 2e-15,
            vddi: 0.9,
            vddo: 1.1,
            temp: 85.0,
        };
        let o = options_at(&CharacterizeOptions::default(), &q);
        assert_eq!(o.input_slew, 80e-12);
        assert_eq!(o.load_farads, 2e-15);
        assert!((o.sim.temperature.as_celsius() - 85.0).abs() < 1e-9);
        // Protocol constants survive.
        assert_eq!(o.power_window, CharacterizeOptions::default().power_window);
    }
}
