//! Liberty-style NLDM export.
//!
//! A Liberty library describes one PVT corner, so the exporter takes a
//! (VDDI, VDDO, temperature) corner of the grid and emits the slew ×
//! load plane at that corner as `cell_rise` / `cell_fall` delay
//! tables, `rise_power` / `fall_power` internal-energy tables and two
//! state-dependent `leakage_power` groups — the NLDM subset external
//! assignment/floorplanning flows consume.
//!
//! Units follow common 90 nm practice: time in ns, capacitance in fF,
//! leakage in nW, internal power as energy in pJ per event (average
//! measured power × the protocol's power window).

use crate::{CharLib, CharLibError};

/// A (VDDI, VDDO, temperature) corner of the grid, by axis indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LibertyCorner {
    /// Index into [`crate::GridSpec::vddi`].
    pub vddi_idx: usize,
    /// Index into [`crate::GridSpec::vddo`].
    pub vddo_idx: usize,
    /// Index into [`crate::GridSpec::temp`].
    pub temp_idx: usize,
}

fn fmt_values(values: &[f64]) -> String {
    values
        .iter()
        .map(|v| format!("{v:.6}"))
        .collect::<Vec<_>>()
        .join(", ")
}

fn fmt_index(values: &[f64], scale: f64) -> String {
    fmt_values(&values.iter().map(|v| v * scale).collect::<Vec<_>>())
}

impl CharLib {
    /// Renders the NLDM `.lib` text for one grid corner.
    ///
    /// # Errors
    ///
    /// [`CharLibError::Liberty`] when a corner index is out of range
    /// or any slew × load point at the corner is non-functional (a
    /// broken cell must not be handed to downstream flows as timing
    /// data).
    pub fn to_liberty(
        &self,
        library_name: &str,
        corner: &LibertyCorner,
    ) -> Result<String, CharLibError> {
        let grid = self.grid();
        if corner.vddi_idx >= grid.vddi.len()
            || corner.vddo_idx >= grid.vddo.len()
            || corner.temp_idx >= grid.temp.len()
        {
            return Err(CharLibError::Liberty(format!(
                "corner {corner:?} out of range for grid {} x {} x {}",
                grid.vddi.len(),
                grid.vddo.len(),
                grid.temp.len()
            )));
        }
        let vddi = grid.vddi[corner.vddi_idx];
        let vddo = grid.vddo[corner.vddo_idx];
        let temp = grid.temp[corner.temp_idx];

        // Gather the slew x load plane, slew-major like the flat grid.
        let n_slew = grid.slew.len();
        let n_load = grid.load.len();
        let mut rows: Vec<[Vec<f64>; 4]> = Vec::with_capacity(n_slew);
        let mut leak_high = 0.0;
        let mut leak_low = 0.0;
        for (si, _) in grid.slew.iter().enumerate() {
            let mut row: [Vec<f64>; 4] = Default::default();
            for (li, _) in grid.load.iter().enumerate() {
                let flat =
                    grid.flat_index([si, li, corner.vddi_idx, corner.vddo_idx, corner.temp_idx]);
                let m = self.point_metrics(flat);
                if !m.functional {
                    return Err(CharLibError::Liberty(format!(
                        "grid point (slew {}, load {}) at VDDI {vddi} V / VDDO {vddo} V / \
                         {temp} C is non-functional",
                        grid.slew[si], grid.load[li]
                    )));
                }
                row[0].push(m.delay_rise * 1e9); // ns
                row[1].push(m.delay_fall * 1e9);
                // Energy per event, pJ.
                row[2].push(m.power_rise * self.base_options().power_window * 1e12);
                row[3].push(m.power_fall * self.base_options().power_window * 1e12);
                leak_high = m.leakage_high * vddo * 1e9; // nW
                leak_low = m.leakage_low * vddo * 1e9;
            }
            rows.push(row);
        }

        let index_1 = fmt_index(&grid.slew, 1e9); // ns
        let index_2 = fmt_index(&grid.load, 1e15); // fF
        let table = |out: &mut String, group: &str, template: &str, which: usize| {
            out.push_str(&format!("      {group} ({template}) {{\n"));
            out.push_str(&format!("        index_1 (\"{index_1}\");\n"));
            out.push_str(&format!("        index_2 (\"{index_2}\");\n"));
            out.push_str("        values ( \\\n");
            for (i, row) in rows.iter().enumerate() {
                out.push_str(&format!(
                    "          \"{}\"{} \\\n",
                    fmt_values(&row[which]),
                    if i + 1 == n_slew { "" } else { "," }
                ));
            }
            out.push_str("        );\n      }\n");
        };

        let cell_name = self
            .kind()
            .label()
            .replace(|c: char| !c.is_ascii_alphanumeric(), "_")
            .to_uppercase();
        let mut out = String::new();
        out.push_str(&format!("library ({library_name}) {{\n"));
        out.push_str("  delay_model : table_lookup;\n");
        out.push_str("  time_unit : \"1ns\";\n");
        out.push_str("  voltage_unit : \"1V\";\n");
        out.push_str("  current_unit : \"1uA\";\n");
        out.push_str("  leakage_power_unit : \"1nW\";\n");
        out.push_str("  capacitive_load_unit (1, ff);\n");
        out.push_str(&format!("  nom_voltage : {vddo:.3};\n"));
        out.push_str(&format!("  nom_temperature : {temp:.1};\n"));
        out.push_str(&format!(
            "  /* input domain VDDI = {vddi:.3} V, output domain VDDO = {vddo:.3} V */\n"
        ));
        out.push_str(&format!(
            "  lu_table_template (delay_{n_slew}x{n_load}) {{\n\
             \x20   variable_1 : input_net_transition;\n\
             \x20   variable_2 : total_output_net_capacitance;\n\
             \x20   index_1 (\"{index_1}\");\n\
             \x20   index_2 (\"{index_2}\");\n\
             \x20 }}\n"
        ));
        out.push_str(&format!(
            "  power_lut_template (energy_{n_slew}x{n_load}) {{\n\
             \x20   variable_1 : input_net_transition;\n\
             \x20   variable_2 : total_output_net_capacitance;\n\
             \x20   index_1 (\"{index_1}\");\n\
             \x20   index_2 (\"{index_2}\");\n\
             \x20 }}\n"
        ));
        out.push_str(&format!("  cell ({cell_name}) {{\n"));
        out.push_str(&format!(
            "    leakage_power () {{ when : \"A\"; value : {leak_low:.6}; }}\n"
        ));
        out.push_str(&format!(
            "    leakage_power () {{ when : \"!A\"; value : {leak_high:.6}; }}\n"
        ));
        out.push_str("    pin (A) {\n      direction : input;\n    }\n");
        out.push_str("    pin (Z) {\n");
        out.push_str("      direction : output;\n");
        out.push_str("      function : \"A\";\n");
        out.push_str("      timing () {\n");
        out.push_str("        related_pin : \"A\";\n");
        out.push_str("        timing_sense : positive_unate;\n");
        // Nested one level deeper than `table` writes; re-indent.
        let mut timing = String::new();
        table(
            &mut timing,
            "cell_rise",
            &format!("delay_{n_slew}x{n_load}"),
            0,
        );
        table(
            &mut timing,
            "cell_fall",
            &format!("delay_{n_slew}x{n_load}"),
            1,
        );
        for line in timing.lines() {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
        out.push_str("      }\n");
        out.push_str("      internal_power () {\n");
        out.push_str("        related_pin : \"A\";\n");
        let mut power = String::new();
        table(
            &mut power,
            "rise_power",
            &format!("energy_{n_slew}x{n_load}"),
            2,
        );
        table(
            &mut power,
            "fall_power",
            &format!("energy_{n_slew}x{n_load}"),
            3,
        );
        for line in power.lines() {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
        out.push_str("      }\n");
        out.push_str("    }\n  }\n}\n");
        Ok(out)
    }
}
