//! Clamped multilinear interpolation over the five-axis grid.

use crate::grid::{GridSpec, QueryPoint};
use crate::{TableMetrics, Tables};

/// Locates `x` on `axis`: the lower bracket index and the fractional
/// position inside the bracket, with `x` clamped onto the axis hull
/// first (the trust-region check has already admitted the query; a
/// point in the margin is served from the nearest table cell).
pub(crate) fn locate(axis: &[f64], x: f64) -> (usize, f64) {
    if axis.len() == 1 {
        return (0, 0.0);
    }
    let x = x.clamp(axis[0], *axis.last().expect("validated non-empty"));
    // Upper bracket: first sample >= x, kept interior.
    let hi = axis.partition_point(|&a| a < x).clamp(1, axis.len() - 1);
    let lo = hi - 1;
    let frac = (x - axis[lo]) / (axis[hi] - axis[lo]);
    (lo, frac.clamp(0.0, 1.0))
}

/// Multilinear interpolation of all six metrics at `q`, reading the
/// 2⁵ cell corners (fewer on singleton or exactly-hit axes, whose
/// zero-weight corners are skipped). Returns `None` if any
/// *contributing* corner is non-functional — the surrounding table
/// cell cannot be trusted and the caller must fall back to an exact
/// simulation.
pub(crate) fn interpolate(
    grid: &GridSpec,
    tables: &Tables,
    q: &QueryPoint,
) -> Option<TableMetrics> {
    let axes = grid.axes();
    let coords = q.coords();
    let mut brackets = [(0usize, 0.0f64); 5];
    for k in 0..5 {
        brackets[k] = locate(axes[k], coords[k]);
    }

    let mut acc = [0.0f64; 6];
    for mask in 0u32..32 {
        let mut weight = 1.0;
        let mut idx = [0usize; 5];
        for k in 0..5 {
            let (lo, frac) = brackets[k];
            if mask & (1 << k) == 0 {
                weight *= 1.0 - frac;
                idx[k] = lo;
            } else {
                weight *= frac;
                // Clamp keeps singleton axes in range; their upper
                // weight is zero and the corner is skipped below.
                idx[k] = (lo + 1).min(axes[k].len() - 1);
            }
        }
        if weight == 0.0 {
            continue;
        }
        let flat = grid.flat_index(idx);
        if !tables.functional[flat] {
            return None;
        }
        let m = tables.metrics_at(flat);
        for (a, v) in acc.iter_mut().zip([
            m.delay_rise,
            m.delay_fall,
            m.power_rise,
            m.power_fall,
            m.leakage_high,
            m.leakage_low,
        ]) {
            *a += weight * v;
        }
    }
    Some(TableMetrics {
        delay_rise: acc[0],
        delay_fall: acc[1],
        power_rise: acc[2],
        power_fall: acc[3],
        leakage_high: acc[4],
        leakage_low: acc[5],
        functional: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 1×1×3×2×1 grid whose metrics follow a known linear function
    /// of (vddi, vddo) — multilinear interpolation must be exact.
    fn linear_fixture() -> (GridSpec, Tables) {
        let grid = GridSpec::new(
            vec![50e-12],
            vec![1e-15],
            vec![0.8, 1.0, 1.2],
            vec![0.9, 1.1],
            vec![27.0],
            0.0,
        )
        .unwrap();
        let n = grid.n_points();
        let f = |q: &QueryPoint| 2.0 * q.vddi + 3.0 * q.vddo;
        let mut t = Tables {
            delay_rise: Vec::new(),
            delay_fall: Vec::new(),
            power_rise: Vec::new(),
            power_fall: Vec::new(),
            leakage_high: Vec::new(),
            leakage_low: Vec::new(),
            functional: Vec::new(),
        };
        for flat in 0..n {
            let q = grid.point(flat);
            let v = f(&q);
            t.delay_rise.push(v);
            t.delay_fall.push(2.0 * v);
            t.power_rise.push(3.0 * v);
            t.power_fall.push(4.0 * v);
            t.leakage_high.push(5.0 * v);
            t.leakage_low.push(6.0 * v);
            t.functional.push(true);
        }
        (grid, t)
    }

    fn q(vddi: f64, vddo: f64) -> QueryPoint {
        QueryPoint {
            slew: 50e-12,
            load: 1e-15,
            vddi,
            vddo,
            temp: 27.0,
        }
    }

    #[test]
    fn locate_brackets_and_clamps() {
        let axis = [0.8, 1.0, 1.2];
        assert_eq!(locate(&axis, 0.8), (0, 0.0));
        assert_eq!(locate(&axis, 1.2), (1, 1.0));
        let (i, f) = locate(&axis, 0.9);
        assert_eq!(i, 0);
        assert!((f - 0.5).abs() < 1e-12);
        // Clamped outside the hull.
        assert_eq!(locate(&axis, 0.5), (0, 0.0));
        assert_eq!(locate(&axis, 2.0), (1, 1.0));
        assert_eq!(locate(&[1.0], 99.0), (0, 0.0));
    }

    #[test]
    fn multilinear_is_exact_on_a_linear_function() {
        let (grid, tables) = linear_fixture();
        for (vi, vo) in [(0.8, 0.9), (1.2, 1.1), (0.9, 1.0), (1.13, 0.97)] {
            let m = interpolate(&grid, &tables, &q(vi, vo)).unwrap();
            let expect = 2.0 * vi + 3.0 * vo;
            assert!(
                (m.delay_rise - expect).abs() < 1e-12,
                "delay_rise {} vs {expect}",
                m.delay_rise
            );
            assert!((m.leakage_low - 6.0 * expect).abs() < 1e-12);
            assert!(m.functional);
        }
    }

    #[test]
    fn clamps_onto_the_hull() {
        let (grid, tables) = linear_fixture();
        // Queries off the hull (admitted by a margin) clamp to the edge.
        let m = interpolate(&grid, &tables, &q(0.5, 0.9)).unwrap();
        assert!((m.delay_rise - (2.0 * 0.8 + 3.0 * 0.9)).abs() < 1e-12);
        let m = interpolate(&grid, &tables, &q(1.2, 2.0)).unwrap();
        assert!((m.delay_rise - (2.0 * 1.2 + 3.0 * 1.1)).abs() < 1e-12);
    }

    #[test]
    fn non_functional_corner_vetoes_only_its_cells() {
        let (grid, mut tables) = linear_fixture();
        // Kill the (vddi=1.2, vddo=1.1) corner.
        let flat = grid.flat_index([0, 0, 2, 1, 0]);
        tables.functional[flat] = false;
        tables.delay_rise[flat] = f64::NAN;
        // Queries inside the affected cell fall back...
        assert!(interpolate(&grid, &tables, &q(1.1, 1.0)).is_none());
        // ...but the untouched half of the grid still serves,
        assert!(interpolate(&grid, &tables, &q(0.9, 1.0)).is_some());
        // ...and an exact hit on the live edge has zero weight on the
        // dead corner, so it serves too.
        let m = interpolate(&grid, &tables, &q(1.0, 1.1)).unwrap();
        assert!((m.delay_rise - (2.0 + 3.3)).abs() < 1e-12);
    }
}
