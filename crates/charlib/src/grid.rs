//! The characterization grid: five axes, row-major point order, and
//! the per-axis trust region a query must fall inside for the table to
//! be allowed to answer.

use crate::CharLibError;

/// Axis order of the grid, slowest-varying first. The flat point index
/// is row-major in this order; every table vector follows it.
pub const AXIS_NAMES: [&str; 5] = ["slew", "load", "vddi", "vddo", "temp"];

/// A grid specification over (input slew, output load, VDDI, VDDO,
/// temperature). Axes hold the sample coordinates; every axis is
/// non-empty, strictly increasing and finite. The electrical axes must
/// be strictly positive (a zero rail or load is not a characterizable
/// corner); temperature may be any finite Celsius value.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Input-stimulus edge slew samples, s.
    pub slew: Vec<f64>,
    /// Output load samples, F.
    pub load: Vec<f64>,
    /// Input-domain supply samples, V.
    pub vddi: Vec<f64>,
    /// Output-domain supply samples, V.
    pub vddo: Vec<f64>,
    /// Temperature samples, °C.
    pub temp: Vec<f64>,
    /// Relative extension of every axis hull that still counts as
    /// trusted: a query within `span ± trust_margin · span` of an axis
    /// is clamped onto the hull and served from the table; anything
    /// further falls back to an exact simulation. Zero means the hull
    /// itself. On a singleton axis the query must match the single
    /// sample (to within `trust_margin · |value|` plus rounding).
    pub trust_margin: f64,
}

/// One fully-specified operating point, in the same units as the grid
/// axes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryPoint {
    /// Input-stimulus edge slew, s.
    pub slew: f64,
    /// Output load, F.
    pub load: f64,
    /// Input-domain supply, V.
    pub vddi: f64,
    /// Output-domain supply, V.
    pub vddo: f64,
    /// Temperature, °C.
    pub temp: f64,
}

impl QueryPoint {
    /// The coordinates in canonical axis order.
    pub fn coords(&self) -> [f64; 5] {
        [self.slew, self.load, self.vddi, self.vddo, self.temp]
    }
}

fn validate_axis(name: &str, axis: &[f64], must_be_positive: bool) -> Result<(), CharLibError> {
    if axis.is_empty() {
        return Err(CharLibError::BadGrid(format!("{name} axis is empty")));
    }
    if axis.iter().any(|v| !v.is_finite()) {
        return Err(CharLibError::BadGrid(format!(
            "{name} axis has a non-finite sample"
        )));
    }
    if must_be_positive && axis.iter().any(|&v| v <= 0.0) {
        return Err(CharLibError::BadGrid(format!(
            "{name} axis has a non-positive sample"
        )));
    }
    if axis.windows(2).any(|w| w[1] <= w[0]) {
        return Err(CharLibError::BadGrid(format!(
            "{name} axis is not strictly increasing"
        )));
    }
    Ok(())
}

impl GridSpec {
    /// Builds and validates a grid.
    ///
    /// # Errors
    ///
    /// [`CharLibError::BadGrid`] when any axis is empty, non-finite,
    /// non-increasing, or (for the four electrical axes) non-positive,
    /// or when `trust_margin` is negative or non-finite.
    pub fn new(
        slew: Vec<f64>,
        load: Vec<f64>,
        vddi: Vec<f64>,
        vddo: Vec<f64>,
        temp: Vec<f64>,
        trust_margin: f64,
    ) -> Result<Self, CharLibError> {
        validate_axis("slew", &slew, true)?;
        validate_axis("load", &load, true)?;
        validate_axis("vddi", &vddi, true)?;
        validate_axis("vddo", &vddo, true)?;
        validate_axis("temp", &temp, false)?;
        if !trust_margin.is_finite() || trust_margin < 0.0 {
            return Err(CharLibError::BadGrid(format!(
                "trust margin {trust_margin} must be finite and non-negative"
            )));
        }
        Ok(Self {
            slew,
            load,
            vddi,
            vddo,
            temp,
            trust_margin,
        })
    }

    /// The CI smoke grid: the paper's two corner rails at nominal
    /// slew/load/temperature — four points, seconds to fill.
    pub fn smoke() -> Self {
        Self::new(
            vec![50e-12],
            vec![1e-15],
            vec![0.8, 1.2],
            vec![0.8, 1.2],
            vec![27.0],
            0.0,
        )
        .expect("smoke grid is statically valid")
    }

    /// A uniform VDDI × VDDO grid over `[v_min, v_max]` at pitch
    /// `step`, nominal slew/load and the given temperatures — the
    /// Figure 8/9 serving grid.
    ///
    /// # Errors
    ///
    /// [`CharLibError::BadGrid`] for a degenerate range or step.
    pub fn rails(v_min: f64, v_max: f64, step: f64, temp: Vec<f64>) -> Result<Self, CharLibError> {
        if !(v_max > v_min && step > 0.0) {
            return Err(CharLibError::BadGrid(format!(
                "bad rail range {v_min}..{v_max} step {step}"
            )));
        }
        let n = ((v_max - v_min) / step).round() as usize + 1;
        let axis: Vec<f64> = (0..n).map(|k| v_min + step * k as f64).collect();
        Self::new(vec![50e-12], vec![1e-15], axis.clone(), axis, temp, 0.0)
    }

    /// The axes in canonical order, paired with [`AXIS_NAMES`].
    pub fn axes(&self) -> [&[f64]; 5] {
        [&self.slew, &self.load, &self.vddi, &self.vddo, &self.temp]
    }

    /// Total number of grid points.
    pub fn n_points(&self) -> usize {
        self.axes().iter().map(|a| a.len()).product()
    }

    /// The operating point of flat index `flat` (row-major in
    /// [`AXIS_NAMES`] order).
    ///
    /// # Panics
    ///
    /// Panics if `flat` is out of range.
    pub fn point(&self, flat: usize) -> QueryPoint {
        assert!(flat < self.n_points(), "grid index {flat} out of range");
        let axes = self.axes();
        let mut rem = flat;
        let mut coords = [0.0; 5];
        for k in (0..5).rev() {
            let n = axes[k].len();
            coords[k] = axes[k][rem % n];
            rem /= n;
        }
        QueryPoint {
            slew: coords[0],
            load: coords[1],
            vddi: coords[2],
            vddo: coords[3],
            temp: coords[4],
        }
    }

    /// The flat index of the grid point with the given per-axis sample
    /// indices, in [`AXIS_NAMES`] order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range for its axis.
    pub fn flat_index(&self, idx: [usize; 5]) -> usize {
        let axes = self.axes();
        let mut flat = 0;
        for k in 0..5 {
            assert!(idx[k] < axes[k].len(), "axis {} index out of range", k);
            flat = flat * axes[k].len() + idx[k];
        }
        flat
    }

    /// `None` when `q` lies inside the trust region of every axis;
    /// otherwise the name of the first offending axis.
    pub fn out_of_trust(&self, q: &QueryPoint) -> Option<&'static str> {
        let coords = q.coords();
        for (k, axis) in self.axes().iter().enumerate() {
            let (lo, hi) = (axis[0], *axis.last().expect("validated non-empty"));
            let span = hi - lo;
            // Rounding slack keeps an exact re-query of a boundary
            // sample (or of a singleton axis, whose span is zero)
            // inside despite float noise in `hi - lo`.
            let rounding = 1e-12 * lo.abs().max(hi.abs()).max(1.0);
            let margin = if span > 0.0 {
                self.trust_margin * span
            } else {
                self.trust_margin * lo.abs()
            };
            let slack = margin + rounding;
            if coords[k] < lo - slack || coords[k] > hi + slack {
                return Some(AXIS_NAMES[k]);
            }
        }
        None
    }

    /// How many axes `q` lies strictly outside the grid hull on
    /// (beyond rounding slack only — the trust *margin* does not
    /// excuse a coordinate here). These are the axes the clamped
    /// interpolation would pin to a boundary sample; a count ≥ 2 means
    /// the query extrapolates a corner of the table.
    pub fn clamped_axes(&self, q: &QueryPoint) -> usize {
        let coords = q.coords();
        self.axes()
            .iter()
            .enumerate()
            .filter(|(k, axis)| {
                let (lo, hi) = (axis[0], *axis.last().expect("validated non-empty"));
                let rounding = 1e-12 * lo.abs().max(hi.abs()).max(1.0);
                coords[*k] < lo - rounding || coords[*k] > hi + rounding
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> GridSpec {
        GridSpec::new(
            vec![50e-12],
            vec![1e-15, 2e-15],
            vec![0.8, 1.0, 1.2],
            vec![0.8, 1.2],
            vec![27.0],
            0.0,
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_bad_axes() {
        let bad = GridSpec::new(vec![], vec![1e-15], vec![1.0], vec![1.0], vec![27.0], 0.0);
        assert!(matches!(bad, Err(CharLibError::BadGrid(_))));
        let dup = GridSpec::new(
            vec![50e-12],
            vec![1e-15],
            vec![1.0, 1.0],
            vec![1.0],
            vec![27.0],
            0.0,
        );
        assert!(matches!(dup, Err(CharLibError::BadGrid(_))));
        let neg = GridSpec::new(
            vec![50e-12],
            vec![-1e-15],
            vec![1.0],
            vec![1.0],
            vec![27.0],
            0.0,
        );
        assert!(matches!(neg, Err(CharLibError::BadGrid(_))));
        // Temperature may be negative Celsius.
        assert!(GridSpec::new(
            vec![50e-12],
            vec![1e-15],
            vec![1.0],
            vec![1.0],
            vec![-40.0, 27.0],
            0.0,
        )
        .is_ok());
        let margin = GridSpec::new(
            vec![50e-12],
            vec![1e-15],
            vec![1.0],
            vec![1.0],
            vec![27.0],
            -0.1,
        );
        assert!(matches!(margin, Err(CharLibError::BadGrid(_))));
    }

    #[test]
    fn point_indexing_is_row_major() {
        let g = tiny();
        assert_eq!(g.n_points(), 12);
        let p0 = g.point(0);
        assert_eq!(
            (p0.slew, p0.load, p0.vddi, p0.vddo, p0.temp),
            (50e-12, 1e-15, 0.8, 0.8, 27.0)
        );
        // Last axis (temp) is fastest; vddo next.
        let p1 = g.point(1);
        assert_eq!((p1.vddi, p1.vddo), (0.8, 1.2));
        let p2 = g.point(2);
        assert_eq!((p2.vddi, p2.vddo), (1.0, 0.8));
        let last = g.point(11);
        assert_eq!((last.load, last.vddi, last.vddo), (2e-15, 1.2, 1.2));
        assert_eq!(g.flat_index([0, 1, 2, 1, 0]), 11);
        assert_eq!(g.flat_index([0, 0, 0, 1, 0]), 1);
    }

    #[test]
    fn trust_region_covers_hull_and_margin() {
        let mut g = tiny();
        let inside = QueryPoint {
            slew: 50e-12,
            load: 1.5e-15,
            vddi: 0.9,
            vddo: 1.0,
            temp: 27.0,
        };
        assert_eq!(g.out_of_trust(&inside), None);
        // Off the vddi hull.
        let off = QueryPoint {
            vddi: 1.3,
            ..inside
        };
        assert_eq!(g.out_of_trust(&off), Some("vddi"));
        // A margin admits it (0.25 * 0.4 V span = 0.1 V).
        g.trust_margin = 0.25;
        assert_eq!(g.out_of_trust(&off), None);
        assert_eq!(
            g.out_of_trust(&QueryPoint {
                vddi: 1.31,
                ..inside
            }),
            Some("vddi")
        );
        // Singleton axis: the sample itself is inside, anything else out.
        g.trust_margin = 0.0;
        assert_eq!(
            g.out_of_trust(&QueryPoint {
                temp: 90.0,
                ..inside
            }),
            Some("temp")
        );
        assert_eq!(
            g.out_of_trust(&QueryPoint {
                slew: 60e-12,
                ..inside
            }),
            Some("slew")
        );
    }

    #[test]
    fn smoke_and_rails_constructors() {
        assert_eq!(GridSpec::smoke().n_points(), 4);
        let r = GridSpec::rails(0.8, 1.4, 0.2, vec![27.0]).unwrap();
        assert_eq!(r.vddi.len(), 4);
        assert_eq!(r.n_points(), 16);
        assert!(GridSpec::rails(1.0, 0.8, 0.1, vec![27.0]).is_err());
    }
}
