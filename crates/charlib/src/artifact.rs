//! The on-disk artifact: canonical, versioned JSON keyed by a content
//! hash of cell kind + device parameters + measurement protocol +
//! grid.
//!
//! The writer is canonical (fixed member order, shortest round-trip
//! float formatting, `null` for non-finite entries), so
//! save → load → save is byte-identical. The loader recomputes the
//! content hash from the *requested* cell/protocol and the grid found
//! in the file; a mismatch means the artifact was built for a
//! different cell, sizing, protocol or format and is reported as
//! [`CharLibError::Stale`] instead of being served.

use vls_cells::ShifterKind;
use vls_core::CharacterizeOptions;

use crate::grid::GridSpec;
use crate::json::{self, Json};
use crate::{CharLib, CharLibError, Tables};

/// The artifact schema version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// 64-bit FNV-1a over `bytes` — stable, dependency-free, and entirely
/// sufficient for change *detection* (this is a freshness key, not a
/// security boundary).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The content hash an artifact for (`kind`, `base`, `grid`) must
/// carry. Covers the schema version, the cell kind *including every
/// device parameter* (via its exhaustive `Debug` rendering), the
/// protocol constants that shape the measured numbers, and the exact
/// grid coordinates — change any of them and the hash moves, forcing
/// a rebuild.
pub fn content_hash(kind: &ShifterKind, base: &CharacterizeOptions, grid: &GridSpec) -> u64 {
    let sim = &base.sim;
    let descriptor = format!(
        "charlib-v{FORMAT_VERSION};cell={kind:?};protocol=(power_window={:?},level_tolerance={:?},\
         reltol={:?},vabstol={:?},iabstol={:?},lte_tol={:?});grid=(slew={:?},load={:?},vddi={:?},\
         vddo={:?},temp={:?},trust_margin={:?})",
        base.power_window,
        base.level_tolerance,
        sim.reltol,
        sim.vabstol,
        sim.iabstol,
        sim.lte_tol,
        grid.slew,
        grid.load,
        grid.vddi,
        grid.vddo,
        grid.temp,
        grid.trust_margin,
    );
    fnv1a64(descriptor.as_bytes())
}

fn write_axis(out: &mut String, name: &str, axis: &[f64]) {
    out.push_str("    \"");
    out.push_str(name);
    out.push_str("\": [");
    for (i, &v) in axis.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        json::write_f64(out, v);
    }
    out.push(']');
}

fn write_table(out: &mut String, name: &str, values: &[f64]) {
    out.push_str("    \"");
    out.push_str(name);
    out.push_str("\": [");
    for (i, &v) in values.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        json::write_f64(out, v);
    }
    out.push(']');
}

impl CharLib {
    /// Renders the canonical artifact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"format\": {FORMAT_VERSION},\n"));
        out.push_str("  \"cell\": ");
        json::write_str(&mut out, self.kind().label());
        out.push_str(",\n");
        out.push_str(&format!(
            "  \"content_hash\": \"{:#018x}\",\n",
            self.content_hash()
        ));
        out.push_str("  \"grid\": {\n");
        out.push_str("    \"trust_margin\": ");
        json::write_f64(&mut out, self.grid().trust_margin);
        out.push_str(",\n");
        let grid = self.grid();
        for (name, axis) in [
            ("slew", &grid.slew),
            ("load", &grid.load),
            ("vddi", &grid.vddi),
            ("vddo", &grid.vddo),
            ("temp", &grid.temp),
        ] {
            write_axis(&mut out, name, axis);
            out.push_str(if name == "temp" { "\n" } else { ",\n" });
        }
        out.push_str("  },\n");
        out.push_str("  \"tables\": {\n");
        let t = &self.tables;
        for (name, values) in [
            ("delay_rise", &t.delay_rise),
            ("delay_fall", &t.delay_fall),
            ("power_rise", &t.power_rise),
            ("power_fall", &t.power_fall),
            ("leakage_high", &t.leakage_high),
            ("leakage_low", &t.leakage_low),
        ] {
            write_table(&mut out, name, values);
            out.push_str(",\n");
        }
        out.push_str("    \"functional\": [");
        for (i, &f) in t.functional.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(if f { "true" } else { "false" });
        }
        out.push_str("]\n  }\n}\n");
        out
    }

    /// Parses and verifies an artifact for (`kind`, `base`).
    ///
    /// # Errors
    ///
    /// [`CharLibError::Parse`] for malformed JSON or schema
    /// violations, [`CharLibError::Format`] for an unsupported format
    /// version, [`CharLibError::BadGrid`] for an invalid stored grid,
    /// and [`CharLibError::Stale`] when the stored content hash does
    /// not match the requested cell + protocol + stored grid.
    pub fn load_json(
        text: &str,
        kind: &ShifterKind,
        base: &CharacterizeOptions,
    ) -> Result<Self, CharLibError> {
        let doc = json::parse(text).map_err(CharLibError::Parse)?;
        let format = require_num(&doc, "format")?;
        if format.fract() != 0.0 || format < 0.0 {
            return Err(CharLibError::Parse(format!("bad format version {format}")));
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let format = format as u32;
        if format != FORMAT_VERSION {
            return Err(CharLibError::Format { found: format });
        }
        let stored_hash = parse_hash(
            doc.get("content_hash")
                .and_then(Json::as_str)
                .ok_or_else(|| CharLibError::Parse("missing content_hash".into()))?,
        )?;

        let grid_doc = doc
            .get("grid")
            .ok_or_else(|| CharLibError::Parse("missing grid".into()))?;
        let trust_margin = require_num(grid_doc, "trust_margin")?;
        let grid = GridSpec::new(
            require_axis(grid_doc, "slew")?,
            require_axis(grid_doc, "load")?,
            require_axis(grid_doc, "vddi")?,
            require_axis(grid_doc, "vddo")?,
            require_axis(grid_doc, "temp")?,
            trust_margin,
        )?;

        let expected = content_hash(kind, base, &grid);
        if expected != stored_hash {
            return Err(CharLibError::Stale {
                expected,
                found: stored_hash,
            });
        }

        let tables_doc = doc
            .get("tables")
            .ok_or_else(|| CharLibError::Parse("missing tables".into()))?;
        let n = grid.n_points();
        let tables = Tables {
            delay_rise: require_table(tables_doc, "delay_rise", n)?,
            delay_fall: require_table(tables_doc, "delay_fall", n)?,
            power_rise: require_table(tables_doc, "power_rise", n)?,
            power_fall: require_table(tables_doc, "power_fall", n)?,
            leakage_high: require_table(tables_doc, "leakage_high", n)?,
            leakage_low: require_table(tables_doc, "leakage_low", n)?,
            functional: require_bools(tables_doc, "functional", n)?,
        };
        Ok(CharLib::from_parts(
            kind.clone(),
            base.clone(),
            grid,
            stored_hash,
            tables,
        ))
    }
}

fn parse_hash(text: &str) -> Result<u64, CharLibError> {
    let digits = text
        .strip_prefix("0x")
        .ok_or_else(|| CharLibError::Parse(format!("content_hash '{text}' is not 0x-prefixed")))?;
    u64::from_str_radix(digits, 16).map_err(|_| {
        CharLibError::Parse(format!("content_hash '{text}' is not a 64-bit hex value"))
    })
}

fn require_num(doc: &Json, key: &str) -> Result<f64, CharLibError> {
    doc.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| CharLibError::Parse(format!("missing number '{key}'")))
}

fn require_axis(doc: &Json, key: &str) -> Result<Vec<f64>, CharLibError> {
    let items = doc
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| CharLibError::Parse(format!("missing axis '{key}'")))?;
    items
        .iter()
        .map(|v| {
            v.as_num()
                .ok_or_else(|| CharLibError::Parse(format!("axis '{key}' has a non-number entry")))
        })
        .collect()
}

fn require_table(doc: &Json, key: &str, n: usize) -> Result<Vec<f64>, CharLibError> {
    let items = doc
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| CharLibError::Parse(format!("missing table '{key}'")))?;
    if items.len() != n {
        return Err(CharLibError::Parse(format!(
            "table '{key}' has {} entries, grid has {n} points",
            items.len()
        )));
    }
    items
        .iter()
        .map(|v| match v {
            Json::Num(x) => Ok(*x),
            Json::Null => Ok(f64::NAN),
            _ => Err(CharLibError::Parse(format!(
                "table '{key}' has a non-number entry"
            ))),
        })
        .collect()
}

fn require_bools(doc: &Json, key: &str, n: usize) -> Result<Vec<bool>, CharLibError> {
    let items = doc
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| CharLibError::Parse(format!("missing table '{key}'")))?;
    if items.len() != n {
        return Err(CharLibError::Parse(format!(
            "table '{key}' has {} entries, grid has {n} points",
            items.len()
        )));
    }
    items
        .iter()
        .map(|v| match v {
            Json::Bool(b) => Ok(*b),
            _ => Err(CharLibError::Parse(format!(
                "table '{key}' has a non-boolean entry"
            ))),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_hash_moves_with_every_input() {
        let base = CharacterizeOptions::default();
        let grid = GridSpec::smoke();
        let h = content_hash(&ShifterKind::sstvs(), &base, &grid);
        // Different cell.
        assert_ne!(h, content_hash(&ShifterKind::combined(), &base, &grid));
        // Different protocol constant.
        let mut widened = base.clone();
        widened.power_window = 4e-9;
        assert_ne!(h, content_hash(&ShifterKind::sstvs(), &widened, &grid));
        // Different grid.
        let mut shifted = grid.clone();
        shifted.vddi = vec![0.8, 1.3];
        assert_ne!(h, content_hash(&ShifterKind::sstvs(), &base, &shifted));
        // Different sizing of the same cell.
        let mut sizes = vls_cells::SstvsSizes::paper();
        sizes.w_m1 *= 2.0;
        assert_ne!(
            h,
            content_hash(
                &ShifterKind::Sstvs(vls_cells::Sstvs::with_sizes(sizes)),
                &base,
                &grid
            ),
            "device parameters must key the hash"
        );
        // Stable for identical inputs.
        assert_eq!(h, content_hash(&ShifterKind::sstvs(), &base, &grid));
    }

    #[test]
    fn hash_field_parses_back() {
        assert_eq!(parse_hash("0x00000000000000ff").unwrap(), 255);
        assert!(parse_hash("ff").is_err());
        assert!(parse_hash("0xzz").is_err());
    }
}
