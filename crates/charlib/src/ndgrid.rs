//! A generic named-axis N-dimensional grid and interpolated table.
//!
//! The five-axis operating grid ([`crate::GridSpec`]) is hard-wired to
//! `(slew, load, vddi, vddo, temp)`. The sizing optimizer (`vls-opt`)
//! needs the same machinery — strictly increasing sample axes,
//! row-major flat indexing, per-axis trust region, clamped multilinear
//! interpolation with non-functional vetoes, corner-clamp refusal —
//! over an *arbitrary* set of named axes (per-device W/L knobs). This
//! module is that machinery, dimension-generic up to [`MAX_DIMS`].
//!
//! Unlike [`crate::CharLib`], an [`NdTable`] carries no traffic
//! counters: callers (the optimizer's trust accounting) fold the
//! returned [`NdFallback`] reasons themselves, which keeps the
//! aggregation deterministic under parallel candidate fan-out.

use crate::interp::locate;
use crate::{CharLibError, TableMetrics};

/// The corner loop uses a `u32` mask, so 16 axes is a hard ceiling —
/// far above any practical sizing space (2^16 corners per probe).
pub const MAX_DIMS: usize = 16;

/// One named sample axis.
#[derive(Debug, Clone, PartialEq)]
pub struct NdAxis {
    /// The axis name (a sizing knob like `w_m1`).
    pub name: String,
    /// Strictly increasing, finite sample coordinates.
    pub samples: Vec<f64>,
}

/// Why an [`NdTable`] probe could not be served — the N-dimensional
/// mirror of [`crate::FallbackReason`], with an owned axis name
/// because the axes are caller-defined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NdFallback {
    /// The probe left the trust region of the named axis.
    OutOfTrustRegion(String),
    /// The probe clamps onto the grid hull on ≥ 2 axes at once.
    ClampedCorner,
    /// A contributing grid point is non-functional.
    NonFunctionalRegion,
}

impl core::fmt::Display for NdFallback {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            NdFallback::OutOfTrustRegion(axis) => write!(f, "out of trust region on '{axis}'"),
            NdFallback::ClampedCorner => write!(f, "clamped corner"),
            NdFallback::NonFunctionalRegion => write!(f, "non-functional region"),
        }
    }
}

/// An N-dimensional named-axis grid with a shared trust margin.
#[derive(Debug, Clone, PartialEq)]
pub struct NdGrid {
    axes: Vec<NdAxis>,
    trust_margin: f64,
}

impl NdGrid {
    /// Builds a grid from `(name, samples)` axes and a trust margin
    /// (fraction of each axis span a query may overhang by and still
    /// be served from the clamped table edge).
    ///
    /// # Errors
    ///
    /// [`CharLibError::BadGrid`] for zero axes, more than [`MAX_DIMS`]
    /// axes, duplicate axis names, an empty / non-finite /
    /// non-strictly-increasing axis, or a non-finite / negative
    /// margin.
    pub fn new(axes: Vec<(String, Vec<f64>)>, trust_margin: f64) -> Result<Self, CharLibError> {
        if axes.is_empty() {
            return Err(CharLibError::BadGrid("grid needs at least one axis".into()));
        }
        if axes.len() > MAX_DIMS {
            return Err(CharLibError::BadGrid(format!(
                "{} axes exceeds the {MAX_DIMS}-axis ceiling",
                axes.len()
            )));
        }
        if !trust_margin.is_finite() || trust_margin < 0.0 {
            return Err(CharLibError::BadGrid(format!(
                "trust margin must be finite and non-negative, got {trust_margin}"
            )));
        }
        for (k, (name, samples)) in axes.iter().enumerate() {
            if name.is_empty() {
                return Err(CharLibError::BadGrid(format!("axis {k} has no name")));
            }
            if axes[..k].iter().any(|(other, _)| other == name) {
                return Err(CharLibError::BadGrid(format!(
                    "duplicate axis name '{name}'"
                )));
            }
            if samples.is_empty() {
                return Err(CharLibError::BadGrid(format!(
                    "axis '{name}' has no samples"
                )));
            }
            if samples.iter().any(|v| !v.is_finite()) {
                return Err(CharLibError::BadGrid(format!(
                    "axis '{name}' has a non-finite sample"
                )));
            }
            if samples.windows(2).any(|w| w[0] >= w[1]) {
                return Err(CharLibError::BadGrid(format!(
                    "axis '{name}' samples must be strictly increasing"
                )));
            }
        }
        Ok(Self {
            axes: axes
                .into_iter()
                .map(|(name, samples)| NdAxis { name, samples })
                .collect(),
            trust_margin,
        })
    }

    /// Number of axes.
    pub fn dims(&self) -> usize {
        self.axes.len()
    }

    /// The axes, in definition order.
    pub fn axes(&self) -> &[NdAxis] {
        &self.axes
    }

    /// The trust margin.
    pub fn trust_margin(&self) -> f64 {
        self.trust_margin
    }

    /// Total grid points (product of axis lengths).
    pub fn n_points(&self) -> usize {
        self.axes.iter().map(|a| a.samples.len()).product()
    }

    /// The coordinates of flat index `flat`, row-major with the *last*
    /// axis fastest (matching [`crate::GridSpec::point`]).
    ///
    /// # Panics
    ///
    /// Panics if `flat >= n_points()`.
    pub fn point(&self, flat: usize) -> Vec<f64> {
        assert!(flat < self.n_points(), "flat index {flat} out of range");
        let mut coords = vec![0.0; self.dims()];
        let mut rem = flat;
        for k in (0..self.dims()).rev() {
            let n = self.axes[k].samples.len();
            coords[k] = self.axes[k].samples[rem % n];
            rem /= n;
        }
        coords
    }

    /// The flat index of per-axis sample indices `idx`.
    ///
    /// # Panics
    ///
    /// Panics on a dimension mismatch or an out-of-range index.
    pub fn flat_index(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.dims(), "index dimension mismatch");
        let mut flat = 0;
        for (k, &i) in idx.iter().enumerate() {
            let n = self.axes[k].samples.len();
            assert!(i < n, "axis '{}' index {i} out of range", self.axes[k].name);
            flat = flat * n + i;
        }
        flat
    }

    /// `None` when `x` lies inside the trust region of every axis;
    /// otherwise the name of the first offending axis. Same slack
    /// policy as [`crate::GridSpec::out_of_trust`].
    pub fn out_of_trust(&self, x: &[f64]) -> Option<&str> {
        assert_eq!(x.len(), self.dims(), "query dimension mismatch");
        for (k, axis) in self.axes.iter().enumerate() {
            let (lo, hi) = (
                axis.samples[0],
                *axis.samples.last().expect("validated non-empty"),
            );
            let span = hi - lo;
            let rounding = 1e-12 * lo.abs().max(hi.abs()).max(1.0);
            let margin = if span > 0.0 {
                self.trust_margin * span
            } else {
                self.trust_margin * lo.abs()
            };
            let slack = margin + rounding;
            if x[k] < lo - slack || x[k] > hi + slack {
                return Some(&axis.name);
            }
        }
        None
    }

    /// How many axes `x` lies strictly outside the hull on (beyond
    /// rounding slack; the trust margin does not excuse a coordinate).
    pub fn clamped_axes(&self, x: &[f64]) -> usize {
        assert_eq!(x.len(), self.dims(), "query dimension mismatch");
        self.axes
            .iter()
            .enumerate()
            .filter(|(k, axis)| {
                let (lo, hi) = (
                    axis.samples[0],
                    *axis.samples.last().expect("validated non-empty"),
                );
                let rounding = 1e-12 * lo.abs().max(hi.abs()).max(1.0);
                x[*k] < lo - rounding || x[*k] > hi + rounding
            })
            .count()
    }
}

/// A filled N-dimensional table: one [`TableMetrics`] per grid point,
/// flat row-major parallel to [`NdGrid::point`].
#[derive(Debug, Clone, PartialEq)]
pub struct NdTable {
    grid: NdGrid,
    metrics: Vec<TableMetrics>,
}

impl NdTable {
    /// Wraps pre-computed metrics over `grid`.
    ///
    /// # Errors
    ///
    /// [`CharLibError::BadGrid`] when `metrics.len()` does not match
    /// the grid's point count.
    pub fn from_metrics(grid: NdGrid, metrics: Vec<TableMetrics>) -> Result<Self, CharLibError> {
        if metrics.len() != grid.n_points() {
            return Err(CharLibError::BadGrid(format!(
                "{} metrics for a {}-point grid",
                metrics.len(),
                grid.n_points()
            )));
        }
        Ok(Self { grid, metrics })
    }

    /// The grid.
    pub fn grid(&self) -> &NdGrid {
        &self.grid
    }

    /// The stored metrics of grid point `flat` (no interpolation).
    ///
    /// # Panics
    ///
    /// Panics if `flat` is out of range.
    pub fn metrics_at(&self, flat: usize) -> TableMetrics {
        self.metrics[flat]
    }

    /// Overwrites one grid point. Exists for fault-injection tests —
    /// the `vls-opt` surrogate-lie suite plants a falsified optimum
    /// and asserts exact verification refuses it.
    ///
    /// # Panics
    ///
    /// Panics if `flat` is out of range.
    pub fn set_point(&mut self, flat: usize, m: TableMetrics) {
        self.metrics[flat] = m;
    }

    /// Clamped multilinear probe at `x`: trust-region check, then
    /// corner-clamp refusal (≥ 2 clamped axes), then interpolation
    /// over the 2^dims cell corners with zero-weight corners skipped
    /// and non-functional contributing corners vetoing the answer.
    ///
    /// # Errors
    ///
    /// The [`NdFallback`] reason the caller must fall back to an exact
    /// evaluation for.
    ///
    /// # Panics
    ///
    /// Panics on a query dimension mismatch.
    pub fn probe(&self, x: &[f64]) -> Result<TableMetrics, NdFallback> {
        if let Some(axis) = self.grid.out_of_trust(x) {
            return Err(NdFallback::OutOfTrustRegion(axis.to_string()));
        }
        if self.grid.clamped_axes(x) >= 2 {
            return Err(NdFallback::ClampedCorner);
        }
        let dims = self.grid.dims();
        let brackets: Vec<(usize, f64)> = (0..dims)
            .map(|k| locate(&self.grid.axes[k].samples, x[k]))
            .collect();

        let mut acc = [0.0f64; 6];
        for mask in 0u32..(1u32 << dims) {
            let mut weight = 1.0;
            let mut idx = vec![0usize; dims];
            for k in 0..dims {
                let (lo, frac) = brackets[k];
                if mask & (1 << k) == 0 {
                    weight *= 1.0 - frac;
                    idx[k] = lo;
                } else {
                    weight *= frac;
                    idx[k] = (lo + 1).min(self.grid.axes[k].samples.len() - 1);
                }
            }
            if weight == 0.0 {
                continue;
            }
            let m = self.metrics[self.grid.flat_index(&idx)];
            if !m.functional {
                return Err(NdFallback::NonFunctionalRegion);
            }
            for (a, v) in acc.iter_mut().zip([
                m.delay_rise,
                m.delay_fall,
                m.power_rise,
                m.power_fall,
                m.leakage_high,
                m.leakage_low,
            ]) {
                *a += weight * v;
            }
        }
        Ok(TableMetrics {
            delay_rise: acc[0],
            delay_fall: acc[1],
            power_rise: acc[2],
            power_fall: acc[3],
            leakage_high: acc[4],
            leakage_low: acc[5],
            functional: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(v: f64) -> TableMetrics {
        TableMetrics {
            delay_rise: v,
            delay_fall: 2.0 * v,
            power_rise: 3.0 * v,
            power_fall: 4.0 * v,
            leakage_high: 5.0 * v,
            leakage_low: 6.0 * v,
            functional: true,
        }
    }

    /// A 3×2 grid over a linear function of (a, b) — multilinear
    /// interpolation must be exact.
    fn linear_table(margin: f64) -> NdTable {
        let grid = NdGrid::new(
            vec![
                ("a".into(), vec![0.0, 0.5, 1.0]),
                ("b".into(), vec![1.0, 2.0]),
            ],
            margin,
        )
        .unwrap();
        let metrics = (0..grid.n_points())
            .map(|flat| {
                let c = grid.point(flat);
                metric(2.0 * c[0] + 3.0 * c[1])
            })
            .collect();
        NdTable::from_metrics(grid, metrics).unwrap()
    }

    #[test]
    fn validation_rejects_bad_grids() {
        assert!(NdGrid::new(vec![], 0.0).is_err());
        assert!(NdGrid::new(vec![("a".into(), vec![])], 0.0).is_err());
        assert!(NdGrid::new(vec![("a".into(), vec![1.0, 1.0])], 0.0).is_err());
        assert!(NdGrid::new(vec![("a".into(), vec![1.0, f64::NAN])], 0.0).is_err());
        assert!(NdGrid::new(vec![("".into(), vec![1.0])], 0.0).is_err());
        assert!(NdGrid::new(vec![("a".into(), vec![1.0]), ("a".into(), vec![2.0])], 0.0).is_err());
        assert!(NdGrid::new(vec![("a".into(), vec![1.0])], -0.1).is_err());
        let too_many = (0..=MAX_DIMS)
            .map(|k| (format!("x{k}"), vec![0.0, 1.0]))
            .collect();
        assert!(NdGrid::new(too_many, 0.0).is_err());
        // Metrics length must match.
        let g = NdGrid::new(vec![("a".into(), vec![0.0, 1.0])], 0.0).unwrap();
        assert!(NdTable::from_metrics(g, vec![metric(1.0)]).is_err());
    }

    #[test]
    fn indexing_round_trips() {
        let t = linear_table(0.0);
        let g = t.grid();
        assert_eq!(g.dims(), 2);
        assert_eq!(g.n_points(), 6);
        // Last axis fastest: flat 0 → (0.0, 1.0), flat 1 → (0.0, 2.0).
        assert_eq!(g.point(0), vec![0.0, 1.0]);
        assert_eq!(g.point(1), vec![0.0, 2.0]);
        assert_eq!(g.point(2), vec![0.5, 1.0]);
        assert_eq!(g.flat_index(&[1, 0]), 2);
        for flat in 0..g.n_points() {
            let c = g.point(flat);
            let idx: Vec<usize> = (0..g.dims())
                .map(|k| g.axes()[k].samples.iter().position(|&s| s == c[k]).unwrap())
                .collect();
            assert_eq!(g.flat_index(&idx), flat);
        }
    }

    #[test]
    fn probe_is_exact_on_a_linear_function() {
        let t = linear_table(0.0);
        for (a, b) in [(0.0, 1.0), (1.0, 2.0), (0.25, 1.5), (0.7, 1.3)] {
            let m = t.probe(&[a, b]).unwrap();
            let expect = 2.0 * a + 3.0 * b;
            assert!((m.delay_rise - expect).abs() < 1e-12, "at ({a}, {b})");
            assert!((m.leakage_low - 6.0 * expect).abs() < 1e-12);
        }
    }

    #[test]
    fn trust_and_corner_policy() {
        let t = linear_table(0.2);
        // Single-axis overhang inside the 20% margin: clamped serve.
        let m = t.probe(&[1.05, 1.5]).unwrap();
        assert!((m.delay_rise - (2.0 * 1.0 + 3.0 * 1.5)).abs() < 1e-12);
        // Outside the margin: refused with the axis name.
        assert_eq!(
            t.probe(&[1.5, 1.5]),
            Err(NdFallback::OutOfTrustRegion("a".into()))
        );
        // Overhanging two axes at once: corner refusal, even though
        // each axis alone is inside its margin.
        assert_eq!(t.probe(&[1.05, 2.1]), Err(NdFallback::ClampedCorner));
        assert_eq!(t.grid().clamped_axes(&[1.05, 2.1]), 2);
        assert_eq!(t.grid().clamped_axes(&[1.05, 1.5]), 1);
        // Exactly on the hull corner: zero clamped axes, serves.
        assert!(t.probe(&[1.0, 2.0]).is_ok());
    }

    #[test]
    fn non_functional_corner_vetoes_and_set_point_plants_lies() {
        let mut t = linear_table(0.0);
        let flat = t.grid().flat_index(&[2, 1]);
        let mut dead = metric(f64::NAN);
        dead.functional = false;
        t.set_point(flat, dead);
        assert_eq!(t.probe(&[0.9, 1.9]), Err(NdFallback::NonFunctionalRegion));
        // The untouched half still serves.
        assert!(t.probe(&[0.1, 1.1]).is_ok());
        // set_point can also plant a falsified value (the lie the
        // opt-regression suite hunts).
        t.set_point(flat, metric(-1.0));
        let m = t.probe(&[1.0, 2.0]).unwrap();
        assert!((m.delay_rise - -1.0).abs() < 1e-12);
    }
}
