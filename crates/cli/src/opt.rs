//! The `optimize` subcommand: automated sizing search over the
//! charlib surrogate (`vls-opt`), as a library function so the
//! integration tests exercise the same code path as the binary.
//!
//! ```text
//! vls-spice optimize [--objective delay|edp|yield] [--knobs n:lo:hi:step,...]
//!           [--vddi V] [--vddo V] [--leakage-cap A] [--budget N] [--restarts N]
//!           [--samples N] [--trust-margin F] [--gap-tol F] [--seed N] [--jobs N]
//!           [--trials N] [--delay-target S] [--leakage-target A] [--retry N]
//!           [--out artifact.json]
//! ```
//!
//! Exit-code contract: flag-syntax problems are usage errors (exit 2);
//! anything that fails after the flags parsed — space construction,
//! surrogate fill, the search itself, artifact I/O — is a runtime
//! failure (exit 1). No code path unwraps.

use std::fmt::Write as _;

use vls_cells::VoltagePair;
use vls_opt::{
    optimize, Knob, Objective, OptimizerConfig, ParamSpace, SimSource, SizingSurrogate,
    SurrogateConfig, YieldSpec,
};
use vls_runner::RunnerOptions;

use crate::CliError;

/// Options of one `optimize` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeArgs {
    /// Objective label (`--objective`): `delay`, `edp` or `yield`.
    pub objective: String,
    /// Knob specs as `name:lo:hi:step` tuples (`--knobs`). The default
    /// is the Figure 4 pair: the pull-down width `w_m1` and the
    /// current-limiter width `w_mc`.
    pub knobs: Vec<(String, f64, f64, f64)>,
    /// Input-domain supply, V (`--vddi`).
    pub vddi: f64,
    /// Output-domain supply, V (`--vddo`).
    pub vddo: f64,
    /// Worst-state leakage cap for the delay objective, A
    /// (`--leakage-cap`; unset = unconstrained).
    pub leakage_cap: Option<f64>,
    /// Fresh-evaluation budget (`--budget`).
    pub budget: usize,
    /// Seeded restarts beyond the midpoint start (`--restarts`).
    pub restarts: usize,
    /// Surrogate samples per knob (`--samples`); `0` disables the
    /// surrogate and runs every candidate exactly.
    pub samples: usize,
    /// Surrogate trust margin as a fraction of each knob's span
    /// (`--trust-margin`).
    pub trust_margin: f64,
    /// Surrogate-vs-exact acceptance gap (`--gap-tol`).
    pub gap_tolerance: f64,
    /// Master seed (`--seed`).
    pub seed: u64,
    /// Worker threads (`--jobs`); `None` = all cores / `VLS_JOBS`.
    pub jobs: Option<usize>,
    /// Monte Carlo trials per candidate in yield mode (`--trials`).
    pub trials: usize,
    /// Yield-mode worst-edge delay target, s (`--delay-target`).
    pub delay_target: Option<f64>,
    /// Yield-mode worst-state leakage target, A (`--leakage-target`).
    pub leakage_target: Option<f64>,
    /// Escalated retries per non-converging candidate (`--retry`).
    pub retry: usize,
    /// Write the JSON artifact here (`--out`).
    pub out: Option<String>,
}

impl Default for OptimizeArgs {
    fn default() -> Self {
        let base = OptimizerConfig::default();
        Self {
            objective: "delay".into(),
            knobs: vec![
                ("w_m1".into(), 0.2, 1.2, 0.05),
                ("w_mc".into(), 0.4, 2.4, 0.1),
            ],
            vddi: 0.8,
            vddo: 1.2,
            leakage_cap: None,
            budget: base.budget,
            restarts: base.restarts,
            samples: SurrogateConfig::default().samples_per_knob,
            trust_margin: SurrogateConfig::default().trust_margin,
            gap_tolerance: base.gap_tolerance,
            seed: base.seed,
            jobs: None,
            trials: YieldSpec::default().trials,
            delay_target: None,
            leakage_target: None,
            retry: 3,
            out: None,
        }
    }
}

/// Parses one `--knobs` value (`name:lo:hi:step[,name:lo:hi:step...]`).
///
/// # Errors
///
/// [`CliError::Usage`] naming the malformed tuple.
pub fn parse_knobs(value: &str) -> Result<Vec<(String, f64, f64, f64)>, CliError> {
    value
        .split(',')
        .map(|spec| {
            let parts: Vec<&str> = spec.trim().split(':').collect();
            let bad =
                || CliError::Usage(format!("--knobs: expected name:lo:hi:step, got '{spec}'"));
            let [name, lo, hi, step] = parts[..] else {
                return Err(bad());
            };
            let lo = lo.parse::<f64>().map_err(|_| bad())?;
            let hi = hi.parse::<f64>().map_err(|_| bad())?;
            let step = step.parse::<f64>().map_err(|_| bad())?;
            Ok((name.to_string(), lo, hi, step))
        })
        .collect()
}

fn objective_for(args: &OptimizeArgs) -> Result<Objective, CliError> {
    match args.objective.as_str() {
        "delay" => Ok(Objective::DelayAtLeakageCap {
            cap_amps: args.leakage_cap.unwrap_or(f64::INFINITY),
        }),
        "edp" => Ok(Objective::EnergyDelayProduct),
        "yield" => Ok(Objective::Yield(YieldSpec {
            trials: args.trials,
            seed: args.seed,
            max_delay: args.delay_target,
            max_leakage: args.leakage_target,
            retries: args.retry,
        })),
        other => Err(CliError::Usage(format!(
            "unknown objective '{other}' (expected delay, edp or yield)"
        ))),
    }
}

/// Runs one sizing optimization and returns the report the binary
/// prints.
///
/// # Errors
///
/// [`CliError::Usage`] for inconsistent flags, [`CliError::Opt`] for
/// space/surrogate/search failures, [`CliError::Io`] when the artifact
/// cannot be written.
pub fn run_optimize(args: &OptimizeArgs) -> Result<String, CliError> {
    let objective = objective_for(args)?;
    let knobs: Vec<Knob> = args
        .knobs
        .iter()
        .map(|(name, lo, hi, step)| Knob::new(name, *lo, *hi, *step))
        .collect();
    let space = ParamSpace::new(knobs)?;
    let runner = args
        .jobs
        .map_or_else(RunnerOptions::default, RunnerOptions::with_jobs);

    let mut source = SimSource::new(space.clone(), VoltagePair::new(args.vddi, args.vddo));
    source.retries = args.retry;
    source.mc_runner = runner.clone();

    let mut out = String::new();
    let surrogate = if args.samples >= 2 && args.objective != "yield" {
        let sur = SizingSurrogate::build(
            &space,
            &SurrogateConfig {
                samples_per_knob: args.samples,
                trust_margin: args.trust_margin,
            },
            &source,
            &runner,
        )?;
        let _ = writeln!(
            out,
            "surrogate: {} grid points filled exactly ({} non-functional)",
            sur.table().grid().n_points(),
            sur.fill_failures
        );
        Some(sur)
    } else {
        None
    };

    let config = OptimizerConfig {
        budget: args.budget,
        restarts: args.restarts,
        seed: args.seed,
        gap_tolerance: args.gap_tolerance,
        runner,
    };
    let outcome = optimize(&space, &objective, &source, surrogate.as_ref(), &config)?;
    out.push_str(&outcome.render());
    if let Some(path) = &args.out {
        std::fs::write(path, outcome.to_json())?;
        let _ = writeln!(out, "wrote {path}");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_specs_parse_and_reject() {
        let knobs = parse_knobs("w_m1:0.2:1.2:0.05,w_mc:0.4:2.4:0.1").unwrap();
        assert_eq!(knobs.len(), 2);
        assert_eq!(knobs[0].0, "w_m1");
        assert_eq!(knobs[1].3, 0.1);
        assert!(matches!(
            parse_knobs("w_m1:0.2:1.2"),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_knobs("w_m1:lo:1.2:0.05"),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn bad_objective_is_a_usage_error() {
        let args = OptimizeArgs {
            objective: "power".into(),
            ..Default::default()
        };
        assert!(matches!(run_optimize(&args), Err(CliError::Usage(_))));
    }

    #[test]
    fn bad_knob_name_is_an_opt_error_not_a_panic() {
        // A knob the cell does not have fails at evaluation, not with
        // an unwrap: the run reports it as a search that refused every
        // optimum (every candidate's exact evaluation fails).
        let args = OptimizeArgs {
            knobs: vec![("w_bogus".into(), 0.2, 1.2, 0.5)],
            samples: 0,
            budget: 3,
            restarts: 0,
            ..Default::default()
        };
        let report = run_optimize(&args).unwrap();
        assert!(report.contains("best: none"), "{report}");
    }

    #[test]
    fn bad_space_is_an_opt_error() {
        let args = OptimizeArgs {
            knobs: vec![("w_m1".into(), 1.2, 0.2, 0.05)],
            ..Default::default()
        };
        assert!(matches!(run_optimize(&args), Err(CliError::Opt(_))));
    }
}
