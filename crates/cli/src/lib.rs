//! The `vls-spice` deck runner: everything the binary does, as a
//! library function so it can be integration-tested without spawning
//! processes.
//!
//! ```text
//! vls-spice deck.sp [--csv out.csv] [--plot node1,node2] [--op-report] [--jobs N]
//!           [--check off|conn|full]
//! vls-spice check deck.sp [--json]
//! vls-spice characterize --out lib.json [--smoke | --rails vmin:vmax:step]
//!           [--temp t1,t2] [--cell sstvs|combined] [--jobs N] [--liberty prefix]
//! vls-spice query --lib lib.json --vddi V --vddo V [--slew S] [--load C] [--temp T]
//!           [--cell sstvs|combined] [--exact]
//! ```
//!
//! Runs every analysis card in the deck (`.op`, `.tran` — with UIC
//! when `.ic` cards are present — and `.dc`), evaluates every `.meas`
//! card against the transient, and renders the results as text. The
//! deck's `.temp` card selects the simulation temperature. Independent
//! analysis cards run in parallel across `--jobs` workers (default:
//! all cores); the rendered report is joined in card order, so the
//! output text is byte-identical for any worker count. `--csv`
//! composes with `--jobs`: each card renders its CSV into a buffer and
//! the buffers are written after the join, in deck order, so the file
//! on disk is identical to a serial run.
//!
//! Before any analysis, the static checker (`vls-check`) runs as a
//! pre-sim gate — connectivity rules by default — and refuses decks
//! with error-severity findings. `check` runs the full rule set
//! standalone and renders the report (text or JSON) without
//! simulating; its exit code (0 clean, 1 findings with errors) makes
//! it usable as a CI lint step.

use std::fmt::Write as _;

mod opt;
mod serve;
mod tables;

pub use opt::{parse_knobs, run_optimize, OptimizeArgs};
pub use serve::{load_served_cells, run_serve_check, serve_config, start_server, ServeArgs};
pub use tables::{run_characterize, run_query, CharacterizeArgs, QueryArgs};
pub use vls_check::{Baseline, CheckLevel, Report};

use vls_check::{run_check, CheckOptions};
use vls_core::evaluate_all_meas;
use vls_engine::{
    dc_sweep, log_space, op_report, run_ac, run_transient, run_transient_uic, solve_dc,
    EngineError, FaultPlan, SimOptions,
};
use vls_netlist::{parse_deck, parse_deck_file, AnalysisCard, Deck};
use vls_units::fmt_eng;
use vls_waveform::{ascii_chart, csv_from_series, Waveform};

/// Options of one runner invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOptions {
    /// Write the transient waveforms of every node to this CSV path.
    pub csv: Option<String>,
    /// Nodes to render as ASCII charts after the transient.
    pub plot: Vec<String>,
    /// Print the `.op` device report after DC analyses.
    pub op_report: bool,
    /// Static-check level gating the run (default: connectivity).
    pub check: CheckLevel,
    /// Worker threads for running analysis cards; `None` = all
    /// available cores.
    pub jobs: Option<usize>,
    /// Fault-injection plan text (see [`FaultPlan::parse`]); armed
    /// with [`RunOptions::seed`] before the run. `None` runs clean.
    pub fault_plan: Option<String>,
    /// Seed the fault plan is armed with; also printed in the replay
    /// command when a faulted run fails.
    pub seed: u64,
    /// Escalated retries per analysis card after a failed base
    /// attempt (the [`SimOptions::escalated`] ladder). `0` disables
    /// the ladder.
    pub retry: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            csv: None,
            plot: Vec::new(),
            op_report: false,
            check: CheckLevel::Connectivity,
            jobs: None,
            fault_plan: None,
            seed: 0,
            retry: 0,
        }
    }
}

/// Errors from the deck runner.
#[derive(Debug)]
pub enum CliError {
    /// The deck failed to parse.
    Parse(vls_netlist::ParseDeckError),
    /// An analysis failed.
    Engine(vls_engine::EngineError),
    /// A `.meas` card could not be evaluated.
    Meas(vls_core::CoreError),
    /// File I/O failed.
    Io(std::io::Error),
    /// The deck or flags are unusable as given.
    Usage(String),
    /// The pre-sim static check found error-severity defects.
    Check(Box<Report>),
    /// A characterization-library operation failed.
    CharLib(vls_charlib::CharLibError),
    /// The query daemon could not start.
    Serve(vls_serve::ServeError),
    /// A simulated waveform could not be post-processed (degenerate
    /// transient result).
    Waveform(vls_waveform::WaveformError),
    /// A sizing-optimization run failed (bad space, surrogate fill,
    /// or search configuration).
    Opt(vls_opt::OptError),
    /// An analysis exhausted its retry ladder. Carries the taxonomy
    /// fields (stable failure class, highest rung attempted) and a
    /// one-line reproduction command.
    Resilience {
        /// The final attempt's engine error.
        source: vls_engine::EngineError,
        /// Highest escalation rung attempted (0 = base only).
        stage_reached: usize,
        /// One-line command that replays the failure deterministically.
        replay: String,
    },
}

impl core::fmt::Display for CliError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CliError::Parse(e) => write!(f, "parse error: {e}"),
            CliError::Engine(e) => write!(f, "simulation error: {e}"),
            CliError::Meas(e) => write!(f, "measurement error: {e}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Check(report) => {
                write!(f, "static check failed: {}", report.error_summary())
            }
            CliError::CharLib(e) => write!(f, "characterization library: {e}"),
            CliError::Serve(e) => write!(f, "serve: {e}"),
            CliError::Waveform(e) => write!(f, "waveform error: {e}"),
            CliError::Opt(e) => write!(f, "optimize: {e}"),
            CliError::Resilience {
                source,
                stage_reached,
                replay,
            } => write!(
                f,
                "simulation failed ({}) after {} attempt(s): {source}\n  replay: {replay}",
                source.failure_class(),
                stage_reached + 1
            ),
        }
    }
}

impl std::error::Error for CliError {}

impl From<vls_netlist::ParseDeckError> for CliError {
    fn from(e: vls_netlist::ParseDeckError) -> Self {
        CliError::Parse(e)
    }
}

impl From<vls_engine::EngineError> for CliError {
    fn from(e: vls_engine::EngineError) -> Self {
        CliError::Engine(e)
    }
}

impl From<vls_core::CoreError> for CliError {
    fn from(e: vls_core::CoreError) -> Self {
        CliError::Meas(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<vls_charlib::CharLibError> for CliError {
    fn from(e: vls_charlib::CharLibError) -> Self {
        CliError::CharLib(e)
    }
}

impl From<vls_waveform::WaveformError> for CliError {
    fn from(e: vls_waveform::WaveformError) -> Self {
        CliError::Waveform(e)
    }
}

impl From<vls_serve::ServeError> for CliError {
    fn from(e: vls_serve::ServeError) -> Self {
        CliError::Serve(e)
    }
}

impl From<vls_opt::OptError> for CliError {
    fn from(e: vls_opt::OptError) -> Self {
        CliError::Opt(e)
    }
}

/// Runs a deck given as text; returns the full report that the binary
/// prints.
///
/// # Errors
///
/// Any parse, simulation, measurement or I/O failure.
pub fn run_deck_text(text: &str, options: &RunOptions) -> Result<String, CliError> {
    let deck = parse_deck(text)?;
    run_deck(&deck, options)
}

/// Runs a deck file, expanding `.include` directives relative to its
/// directory.
///
/// # Errors
///
/// Any parse, simulation, measurement or I/O failure.
pub fn run_deck_path(
    path: impl AsRef<std::path::Path>,
    options: &RunOptions,
) -> Result<String, CliError> {
    let deck = parse_deck_file(path)?;
    run_deck(&deck, options)
}

/// Runs the full static rule set over a deck given as text and
/// returns the [`Report`] (no simulation).
///
/// # Errors
///
/// [`CliError::Parse`] when the deck does not parse.
pub fn check_deck_text(text: &str) -> Result<Report, CliError> {
    let deck = parse_deck(text)?;
    Ok(run_check(
        &deck.circuit,
        &CheckOptions::at_level(CheckLevel::Full),
    ))
}

/// Runs the full static rule set over a deck file (no simulation).
///
/// # Errors
///
/// [`CliError::Parse`] when the deck does not parse or read.
pub fn check_deck_path(path: impl AsRef<std::path::Path>) -> Result<Report, CliError> {
    let deck = parse_deck_file(path)?;
    Ok(run_check(
        &deck.circuit,
        &CheckOptions::at_level(CheckLevel::Full),
    ))
}

/// Walks the escalation ladder for one analysis: attempts rungs
/// `0..=retries` of [`SimOptions::escalated`], returning the first
/// success and the rung that produced it, or the final error and the
/// highest rung attempted.
///
/// # Errors
///
/// `(final_error, stage_reached)` when every rung failed.
pub fn with_retry<T>(
    base: &SimOptions,
    retries: usize,
    mut attempt: impl FnMut(&SimOptions) -> Result<T, EngineError>,
) -> Result<(T, usize), (EngineError, usize)> {
    let mut last = None;
    for rung in 0..=retries {
        match attempt(&base.escalated(rung)) {
            Ok(value) => return Ok((value, rung)),
            Err(e) => last = Some(e),
        }
    }
    Err((last.expect("at least one attempt runs"), retries))
}

/// The one-line command that replays a faulted run deterministically:
/// same deck, same (armed-down) plan, same seed, same ladder depth.
pub fn replay_command(options: &RunOptions) -> String {
    let mut cmd = "vls-spice <deck.sp>".to_string();
    if let Some(plan) = &options.fault_plan {
        let _ = write!(cmd, " --fault-plan '{plan}'");
    }
    let _ = write!(cmd, " --seed {:#x}", options.seed);
    if options.retry > 0 {
        let _ = write!(cmd, " --retry {}", options.retry);
    }
    cmd
}

/// Runs an already-parsed deck.
///
/// # Errors
///
/// Any simulation, measurement or I/O failure.
pub fn run_deck(deck: &Deck, options: &RunOptions) -> Result<String, CliError> {
    let mut out = String::new();
    let _ = writeln!(out, "* {}", deck.title);
    let mut sim = SimOptions::default();
    if let Some(celsius) = deck.temperature_celsius {
        sim = SimOptions::at_celsius(celsius);
        let _ = writeln!(out, "* temperature: {celsius} C");
    }
    if let Some(plan_text) = &options.fault_plan {
        let plan = FaultPlan::parse(plan_text)
            .map_err(|e| CliError::Usage(format!("--fault-plan: {e}")))?;
        sim.fault = plan.arm(options.seed);
        let _ = writeln!(
            out,
            "* fault plan armed (seed {:#x}): {}",
            options.seed, sim.fault
        );
    }
    if deck.analyses.is_empty() {
        return Err(CliError::Usage("deck contains no analysis cards".into()));
    }

    // Pre-sim gate: refuse structurally defective decks before any
    // matrix is assembled; surface non-error findings in the report.
    if !matches!(options.check, CheckLevel::Off) {
        let report = run_check(&deck.circuit, &CheckOptions::at_level(options.check));
        if report.has_errors() {
            return Err(CliError::Check(Box::new(report)));
        }
        let warnings = report.count(vls_check::Severity::Warning);
        if warnings > 0 {
            let _ = writeln!(
                out,
                "* static check: {warnings} warning(s), run `check` for details"
            );
        }
    }

    // Each card renders into its own buffers — report text plus any
    // CSV payload; cards are independent, so they shard across workers
    // and the buffers are joined in deck order afterwards. The report
    // text and the CSV on disk never depend on the worker count: CSV
    // writes happen after the join, in deck order (later cards
    // overwrite earlier ones, same as a serial run).
    // Failures after a ladder walk become [`CliError::Resilience`]
    // (with the replay one-liner) when resilience features are on;
    // plain runs keep the plain engine error.
    let ladder_err = |(e, stage): (EngineError, usize)| -> CliError {
        if options.retry == 0 && options.fault_plan.is_none() {
            CliError::Engine(e)
        } else {
            CliError::Resilience {
                source: e,
                stage_reached: stage,
                replay: replay_command(options),
            }
        }
    };
    let rung_note = |out: &mut String, rung: usize| {
        if rung > 0 {
            let _ = writeln!(out, "  (recovered at escalation rung {rung})");
        }
    };

    let render_card = |analysis: &AnalysisCard| -> Result<(String, Option<String>), CliError> {
        let mut out = String::new();
        let mut csv_payload = None;
        match analysis {
            AnalysisCard::Op => {
                let (sol, rung) = with_retry(&sim, options.retry, |s| solve_dc(&deck.circuit, s))
                    .map_err(ladder_err)?;
                let _ = writeln!(out, "\n.op operating point:");
                rung_note(&mut out, rung);
                // Print every named node voltage.
                let mut names: Vec<&str> = Vec::new();
                for e in deck.circuit.elements() {
                    for n in e.nodes() {
                        let name = deck.circuit.node_name(n);
                        if !n.is_ground() && !names.contains(&name) {
                            names.push(name);
                        }
                    }
                }
                for name in names {
                    let node = deck.circuit.find_node(name).ok_or_else(|| {
                        CliError::Usage(format!("node {name} vanished from the circuit"))
                    })?;
                    let _ = writeln!(out, "  V({name}) = {:.6} V", sol.voltage(node));
                }
                if options.op_report {
                    let _ = writeln!(out, "{}", op_report(&deck.circuit, &sol, &sim));
                }
            }
            AnalysisCard::Tran { tstop, .. } => {
                let (res, rung) = if deck.initial_conditions.is_empty() {
                    with_retry(&sim, options.retry, |s| {
                        run_transient(&deck.circuit, *tstop, s)
                    })
                    .map_err(ladder_err)?
                } else {
                    let ics: Vec<_> = deck
                        .initial_conditions
                        .iter()
                        .filter_map(|(name, v)| deck.circuit.find_node(name).map(|n| (n, *v)))
                        .collect();
                    let _ = writeln!(out, "* UIC: {} initial condition(s)", ics.len());
                    with_retry(&sim, options.retry, |s| {
                        run_transient_uic(&deck.circuit, *tstop, s, &ics)
                    })
                    .map_err(ladder_err)?
                };
                let _ = writeln!(
                    out,
                    "\n.tran to {}: {} accepted time points",
                    fmt_eng(*tstop, "s"),
                    res.len()
                );
                rung_note(&mut out, rung);
                if !deck.measures.is_empty() {
                    let values = evaluate_all_meas(&deck.measures, &deck.circuit, &res)?;
                    for (name, value) in values {
                        let _ = writeln!(out, "  .meas {name} = {value:.6e}");
                    }
                }
                for node_name in &options.plot {
                    let node = deck.circuit.find_node(node_name).ok_or_else(|| {
                        CliError::Usage(format!("--plot names unknown node {node_name}"))
                    })?;
                    let w = Waveform::new(res.times().to_vec(), res.node_series(node))?;
                    let _ = writeln!(out, "V({node_name}):");
                    let _ = write!(out, "{}", ascii_chart(&[(node_name.as_str(), &w)], 90, 6));
                }
                if let Some(path) = &options.csv {
                    // All non-ground nodes, deck order of first use.
                    let mut names: Vec<String> = Vec::new();
                    for e in deck.circuit.elements() {
                        for n in e.nodes() {
                            let name = deck.circuit.node_name(n).to_string();
                            if !n.is_ground() && !names.contains(&name) {
                                names.push(name);
                            }
                        }
                    }
                    let series: Vec<(String, Vec<f64>)> = names
                        .iter()
                        .filter_map(|name| {
                            deck.circuit
                                .find_node(name)
                                .map(|node| (name.clone(), res.node_series(node)))
                        })
                        .collect();
                    let refs: Vec<(&str, &[f64])> = series
                        .iter()
                        .map(|(n, v)| (n.as_str(), v.as_slice()))
                        .collect();
                    csv_payload = Some(csv_from_series(res.times(), &refs));
                    let _ = writeln!(out, "  wrote {path}");
                }
            }
            AnalysisCard::DcSweep {
                source,
                start,
                stop,
                step,
            } => {
                let (points, rung) = with_retry(&sim, options.retry, |s| {
                    dc_sweep(&deck.circuit, source, *start, *stop, *step, s)
                })
                .map_err(ladder_err)?;
                let _ = writeln!(out, "\n.dc sweep of {source}: {} points", points.len());
                rung_note(&mut out, rung);
                // Print a compact table of every node at first/last point.
                if let (Some(first), Some(last)) = (points.first(), points.last()) {
                    let _ = writeln!(
                        out,
                        "  {source} = {:.4} .. {:.4} V solved",
                        first.value, last.value
                    );
                }
            }
            AnalysisCard::Ac {
                points_per_decade,
                f_start,
                f_stop,
                source,
            } => {
                let freqs = log_space(*f_start, *f_stop, *points_per_decade);
                let (ac, rung) = with_retry(&sim, options.retry, |s| {
                    run_ac(&deck.circuit, source, &freqs, s)
                })
                .map_err(ladder_err)?;
                let _ = writeln!(
                    out,
                    "\n.ac sweep ({} points, excitation on {source}):",
                    freqs.len()
                );
                rung_note(&mut out, rung);
                for node_name in &options.plot {
                    let node = deck.circuit.find_node(node_name).ok_or_else(|| {
                        CliError::Usage(format!("--plot names unknown node {node_name}"))
                    })?;
                    let gains = ac.gain_db(node);
                    let phases = ac.phase_deg(node);
                    let _ = writeln!(out, "  V({node_name}): freq / gain dB / phase deg");
                    for ((f, g), p) in freqs.iter().zip(&gains).zip(&phases) {
                        let _ = writeln!(out, "  {f:>12.4e} {g:>9.3} {p:>9.2}");
                    }
                    if let Some(bw) = ac.bandwidth(node) {
                        let _ = writeln!(out, "  -3 dB bandwidth: {bw:.4e} Hz");
                    }
                }
            }
        }
        Ok((out, csv_payload))
    };

    let runner = options.jobs.map_or_else(
        vls_runner::RunnerOptions::default,
        vls_runner::RunnerOptions::with_jobs,
    );
    let rendered = vls_runner::run_indexed(deck.analyses.len(), &runner, |i| {
        render_card(&deck.analyses[i])
    });
    for chunk in rendered {
        let (text, csv_payload) = chunk?;
        out.push_str(&text);
        if let (Some(path), Some(payload)) = (&options.csv, csv_payload) {
            std::fs::write(path, payload)?;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DECK: &str = "\
cli smoke deck
Vdd vdd 0 1.2
Vin in 0 PULSE(0 1.2 0.5n 50p 50p 2n 6n)
Mp out in vdd vdd ptm90_pmos W=0.4u L=0.1u
Mn out in 0 0 ptm90_nmos W=0.2u L=0.1u
Cl out 0 1fF
.op
.meas tran tphl trig v(in) val=0.6 rise=1 targ v(out) val=0.6 fall=1
.tran 10p 6n
.end
";

    #[test]
    fn runs_a_full_deck() {
        let report = run_deck_text(
            DECK,
            &RunOptions {
                op_report: true,
                plot: vec!["out".into()],
                ..Default::default()
            },
        )
        .unwrap();
        assert!(report.contains(".op operating point"));
        assert!(report.contains("V(out)"));
        assert!(report.contains(".meas tphl ="));
        assert!(report.contains("saturation") || report.contains("subthreshold"));
        assert!(report.contains("V(out):"), "plot rendered");
    }

    #[test]
    fn csv_output_lands_on_disk() {
        let path = std::env::temp_dir().join("vls_cli_test.csv");
        let _ = std::fs::remove_file(&path);
        let opts = RunOptions {
            csv: Some(path.to_string_lossy().into_owned()),
            ..Default::default()
        };
        run_deck_text(DECK, &opts).unwrap();
        let csv = std::fs::read_to_string(&path).unwrap();
        assert!(csv.starts_with("time,"));
        assert!(csv.lines().count() > 10);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn csv_composes_with_parallel_jobs() {
        // Two .tran cards writing the same CSV path: the file must be
        // the later card's payload for every worker count, exactly as
        // a serial run would leave it.
        let deck = "t\nV1 a 0 1\nR1 a b 1k\nC1 b 0 1p\n.tran 1p 1n\n.tran 1p 2n\n.end\n";
        let path = std::env::temp_dir().join("vls_cli_csv_jobs.csv");
        let mut baseline = None;
        for jobs in [1, 2, 4] {
            let _ = std::fs::remove_file(&path);
            let opts = RunOptions {
                csv: Some(path.to_string_lossy().into_owned()),
                jobs: Some(jobs),
                ..Default::default()
            };
            let report = run_deck_text(deck, &opts).unwrap();
            assert_eq!(report.matches("wrote").count(), 2);
            let csv = std::fs::read_to_string(&path).unwrap();
            match &baseline {
                None => baseline = Some(csv),
                Some(b) => assert_eq!(b, &csv, "CSV differs at {jobs} workers"),
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn deck_without_analyses_is_a_usage_error() {
        let err =
            run_deck_text("t\nV1 a 0 1\nR1 a 0 1k\n.end\n", &RunOptions::default()).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
    }

    #[test]
    fn unknown_plot_node_is_a_usage_error() {
        let err = run_deck_text(
            "t\nV1 a 0 1\nR1 a 0 1k\n.tran 1p 1n\n.end\n",
            &RunOptions {
                plot: vec!["ghost".into()],
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
    }

    #[test]
    fn uic_deck_runs_through_the_cli() {
        let report = run_deck_text(
            "t\nV1 a 0 1\nR1 a b 1k\nC1 b 0 1p\n.ic v(b)=1.0\n.tran 1p 3n\n.end\n",
            &RunOptions::default(),
        )
        .unwrap();
        assert!(report.contains("UIC: 1 initial condition"));
    }

    #[test]
    fn pre_sim_gate_refuses_a_singular_deck() {
        // Two parallel DC sources: ERC003. The engine would only see
        // this as a singular matrix; the gate names the rule.
        let deck = "t\nV1 a 0 1.2\nV2 a 0 1.0\nR1 a 0 1k\n.op\n.end\n";
        let err = run_deck_text(deck, &RunOptions::default()).unwrap_err();
        match err {
            CliError::Check(report) => {
                assert!(report.error_summary().contains("ERC003"));
            }
            other => panic!("expected a check refusal, got {other}"),
        }
        // Opting out of the gate hands the deck to the engine.
        let opts = RunOptions {
            check: CheckLevel::Off,
            ..Default::default()
        };
        assert!(matches!(
            run_deck_text(deck, &opts),
            Err(CliError::Engine(_))
        ));
    }

    #[test]
    fn clean_deck_passes_the_gate_silently() {
        let report = run_deck_text(DECK, &RunOptions::default()).unwrap();
        assert!(!report.contains("static check"), "{report}");
    }

    #[test]
    fn check_deck_text_reports_the_full_rule_set() {
        // A 0.7 V gate swing against a 1.3 V rail: only the domain
        // rules (ERC007) see this — connectivity is fine.
        let deck = "t\n\
            Vdd vdd 0 1.3\n\
            Vin in 0 PULSE(0 0.7 0 50p 50p 1n 2n)\n\
            Mp out in vdd vdd ptm90_pmos W=0.4u L=0.1u\n\
            Mn out in 0 0 ptm90_nmos W=0.2u L=0.1u\n\
            .tran 10p 2n\n.end\n";
        let report = check_deck_text(deck).unwrap();
        assert!(report.has_errors(), "{}", report.render_text());
        assert!(report.error_summary().contains("ERC007"));
        // The run gate at connectivity level lets the same deck start.
        let run = run_deck_text(deck, &RunOptions::default());
        assert!(run.is_ok(), "{:?}", run.err().map(|e| e.to_string()));
        // At full level it refuses.
        let opts = RunOptions {
            check: CheckLevel::Full,
            ..Default::default()
        };
        assert!(matches!(
            run_deck_text(deck, &opts),
            Err(CliError::Check(_))
        ));
    }

    #[test]
    fn multi_card_deck_renders_identically_for_any_worker_count() {
        // Three independent cards; the joined report must not depend
        // on how they were sharded.
        let deck = "t\nV1 a 0 1\nR1 a b 1k\nR2 b 0 1k\nC1 b 0 1p\n\
                    .op\n.dc V1 0 1 0.25\n.tran 1p 2n\n.end\n";
        let serial = run_deck_text(
            deck,
            &RunOptions {
                jobs: Some(1),
                ..Default::default()
            },
        )
        .unwrap();
        for jobs in [2, 4] {
            let par = run_deck_text(
                deck,
                &RunOptions {
                    jobs: Some(jobs),
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(serial, par, "report differs at {jobs} workers");
        }
        assert!(serial.contains(".op operating point"));
        assert!(serial.contains(".dc sweep of v1"));
        assert!(serial.contains(".tran to"));
    }

    #[test]
    fn fault_plan_forces_failure_and_retry_recovers() {
        // Force non-convergence at every homotopy stage: the base
        // attempt must fail with a replayable taxonomy error...
        let plan = "newton@warm,newton@plain,newton@gmin,newton@source";
        let base = RunOptions {
            fault_plan: Some(plan.into()),
            seed: 7,
            ..Default::default()
        };
        let err = run_deck_text(DECK, &base).unwrap_err();
        match &err {
            CliError::Resilience {
                source,
                stage_reached,
                replay,
            } => {
                assert_eq!(*stage_reached, 0);
                assert_eq!(source.failure_class(), "no_convergence");
                assert!(replay.contains("--fault-plan"), "{replay}");
                assert!(replay.contains("--seed 0x7"), "{replay}");
            }
            other => panic!("expected a resilience error, got {other}"),
        }
        // ...and one escalated retry (which disarms the plan) recovers.
        let retried = RunOptions { retry: 1, ..base };
        let report = run_deck_text(DECK, &retried).unwrap();
        assert!(report.contains("fault plan armed"), "{report}");
        assert!(
            report.contains("recovered at escalation rung 1"),
            "{report}"
        );
    }

    #[test]
    fn bad_fault_plan_is_a_usage_error() {
        let opts = RunOptions {
            fault_plan: Some("gremlins".into()),
            ..Default::default()
        };
        let err = run_deck_text(DECK, &opts).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        assert!(err.to_string().contains("--fault-plan"));
    }

    #[test]
    fn clean_run_with_retries_enabled_matches_the_plain_run() {
        // The ladder only engages on failure: a healthy deck renders
        // byte-identically with and without retries enabled.
        let plain = run_deck_text(DECK, &RunOptions::default()).unwrap();
        let resilient = run_deck_text(
            DECK,
            &RunOptions {
                retry: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(plain, resilient);
    }

    #[test]
    fn replay_command_round_trips_the_flags() {
        let opts = RunOptions {
            fault_plan: Some("pivot:every=4:offset=1".into()),
            seed: 0xbeef,
            retry: 2,
            ..Default::default()
        };
        let cmd = replay_command(&opts);
        assert!(cmd.contains("--fault-plan 'pivot:every=4:offset=1'"));
        assert!(cmd.contains("--seed 0xbeef"));
        assert!(cmd.contains("--retry 2"));
    }

    #[test]
    fn dc_sweep_deck_runs() {
        let report = run_deck_text(
            "t\nV1 a 0 0\nR1 a b 1k\nR2 b 0 1k\n.dc V1 0 1 0.25\n.end\n",
            &RunOptions::default(),
        )
        .unwrap();
        assert!(report.contains(".dc sweep of v1: 5 points"));
    }
}
