//! The `characterize` and `query` subcommands: build, export and
//! query a `vls-charlib` characterization library from the command
//! line. Everything is a library function so the integration tests
//! exercise the same code path as the binary.

use std::fmt::Write as _;

use vls_cells::ShifterKind;
use vls_charlib::{CharLib, GridSpec, LibertyCorner, QueryPoint};
use vls_core::CharacterizeOptions;
use vls_runner::RunnerOptions;
use vls_units::fmt_eng;

use crate::CliError;

/// Parses a `--cell` value.
fn parse_cell(name: &str) -> Result<ShifterKind, CliError> {
    match name {
        "sstvs" => Ok(ShifterKind::sstvs()),
        "combined" => Ok(ShifterKind::combined()),
        other => Err(CliError::Usage(format!(
            "unknown cell '{other}' (expected sstvs or combined)"
        ))),
    }
}

/// Options of one `characterize` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizeArgs {
    /// Artifact path (`--out`).
    pub out: String,
    /// Use the 4-point CI smoke grid (`--smoke`).
    pub smoke: bool,
    /// A uniform VDDI × VDDO grid as (v_min, v_max, step)
    /// (`--rails vmin:vmax:step`); the default when neither `--smoke`
    /// nor `--rails` is given is the paper's 0.8–1.4 V range at
    /// 0.1 V pitch.
    pub rails: Option<(f64, f64, f64)>,
    /// Temperature samples, °C (`--temp`).
    pub temps: Vec<f64>,
    /// Cell to characterize (`--cell`, default `sstvs`).
    pub cell: String,
    /// Worker threads (`--jobs`); `None` = all cores.
    pub jobs: Option<usize>,
    /// When set, also export one Liberty `.lib` file per
    /// (VDDI, VDDO, temperature) corner under this path prefix
    /// (`--liberty`).
    pub liberty: Option<String>,
}

impl Default for CharacterizeArgs {
    fn default() -> Self {
        Self {
            out: "vls-charlib.json".into(),
            smoke: false,
            rails: None,
            temps: vec![27.0],
            cell: "sstvs".into(),
            jobs: None,
            liberty: None,
        }
    }
}

/// Options of one `query` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryArgs {
    /// Artifact path (`--lib`).
    pub lib: String,
    /// Cell the artifact was built for (`--cell`, default `sstvs`).
    pub cell: String,
    /// Input-domain supply, V (`--vddi`, required).
    pub vddi: f64,
    /// Output-domain supply, V (`--vddo`, required).
    pub vddo: f64,
    /// Input slew, s (`--slew`; default: the grid's first sample).
    pub slew: Option<f64>,
    /// Output load, F (`--load`; default: the grid's first sample).
    pub load: Option<f64>,
    /// Temperature, °C (`--temp`; default: the grid's first sample).
    pub temp: Option<f64>,
    /// Skip the table and run the exact protocol (`--exact`) — the
    /// ground truth to compare the surrogate against.
    pub exact: bool,
}

fn grid_for(args: &CharacterizeArgs) -> Result<GridSpec, CliError> {
    if args.smoke {
        if args.rails.is_some() {
            return Err(CliError::Usage(
                "--smoke and --rails are mutually exclusive".into(),
            ));
        }
        return Ok(GridSpec::smoke());
    }
    let (v_min, v_max, step) = args.rails.unwrap_or((0.8, 1.4, 0.1));
    Ok(GridSpec::rails(v_min, v_max, step, args.temps.clone())?)
}

fn runner_for(jobs: Option<usize>) -> RunnerOptions {
    jobs.map_or_else(RunnerOptions::default, RunnerOptions::with_jobs)
}

/// Builds (or freshness-checks and loads) the artifact at `args.out`
/// and returns the report the binary prints.
///
/// # Errors
///
/// Usage errors for inconsistent flags, grid validation failures, and
/// artifact I/O failures.
pub fn run_characterize(args: &CharacterizeArgs) -> Result<String, CliError> {
    let kind = parse_cell(&args.cell)?;
    let base = CharacterizeOptions::default();
    let grid = grid_for(args)?;
    let runner = runner_for(args.jobs);
    let (lib, status) = CharLib::load_or_build(&args.out, &kind, &base, grid, &runner)?;

    let mut out = String::new();
    let _ = writeln!(out, "characterization library: {}", args.out);
    let _ = writeln!(out, "  cell: {}", lib.kind().label());
    let _ = writeln!(out, "  status: {status:?}");
    let _ = writeln!(out, "  content hash: {:#018x}", lib.content_hash());
    let grid = lib.grid();
    let _ = writeln!(
        out,
        "  grid: {} points (slew {} x load {} x vddi {} x vddo {} x temp {})",
        grid.n_points(),
        grid.slew.len(),
        grid.load.len(),
        grid.vddi.len(),
        grid.vddo.len(),
        grid.temp.len()
    );
    let functional = (0..grid.n_points())
        .filter(|&i| lib.point_metrics(i).functional)
        .count();
    let _ = writeln!(out, "  functional points: {functional}/{}", grid.n_points());

    if let Some(prefix) = &args.liberty {
        for ti in 0..grid.temp.len() {
            for vi in 0..grid.vddi.len() {
                for vo in 0..grid.vddo.len() {
                    let corner = LibertyCorner {
                        vddi_idx: vi,
                        vddo_idx: vo,
                        temp_idx: ti,
                    };
                    let tag = format!(
                        "vddi{:.2}_vddo{:.2}_t{:.0}",
                        grid.vddi[vi], grid.vddo[vo], grid.temp[ti]
                    );
                    let name = format!("vls_{}_{tag}", args.cell);
                    match lib.to_liberty(&name, &corner) {
                        Ok(text) => {
                            let path = format!("{prefix}_{tag}.lib");
                            std::fs::write(&path, text)?;
                            let _ = writeln!(out, "  wrote {path}");
                        }
                        Err(e) => {
                            let _ = writeln!(out, "  skipped corner {tag}: {e}");
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Loads the artifact at `args.lib`, answers one query and returns the
/// report the binary prints. A stale or missing artifact is an error —
/// `query` never rebuilds (use `characterize` for that).
///
/// # Errors
///
/// Artifact load/verification failures and exact-fallback simulation
/// failures.
pub fn run_query(args: &QueryArgs) -> Result<String, CliError> {
    let kind = parse_cell(&args.cell)?;
    let base = CharacterizeOptions::default();
    let lib = CharLib::load(&args.lib, &kind, &base)?;
    let grid = lib.grid();
    let q = QueryPoint {
        slew: args.slew.unwrap_or(grid.slew[0]),
        load: args.load.unwrap_or(grid.load[0]),
        vddi: args.vddi,
        vddo: args.vddo,
        temp: args.temp.unwrap_or(grid.temp[0]),
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "query: VDDI {} VDDO {} slew {} load {} temp {} C",
        fmt_eng(q.vddi, "V"),
        fmt_eng(q.vddo, "V"),
        fmt_eng(q.slew, "s"),
        fmt_eng(q.load, "F"),
        q.temp
    );
    let (m, source) = if args.exact {
        (lib.eval_exact(&q)?, "exact (forced)".to_string())
    } else {
        let ev = lib.eval(&q)?;
        (ev.metrics, format!("{:?}", ev.source))
    };
    let _ = writeln!(out, "  source: {source}");
    let _ = writeln!(out, "  functional: {}", m.functional);
    let _ = writeln!(out, "  delay rise: {}", fmt_eng(m.delay_rise, "s"));
    let _ = writeln!(out, "  delay fall: {}", fmt_eng(m.delay_fall, "s"));
    let _ = writeln!(out, "  power rise: {}", fmt_eng(m.power_rise, "W"));
    let _ = writeln!(out, "  power fall: {}", fmt_eng(m.power_fall, "W"));
    let _ = writeln!(out, "  leakage high: {}", fmt_eng(m.leakage_high, "A"));
    let _ = writeln!(out, "  leakage low: {}", fmt_eng(m.leakage_low, "A"));
    let _ = writeln!(
        out,
        "  table hits/misses this call: {}/{}",
        lib.hit_count(),
        lib.miss_count()
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_names_parse() {
        assert!(parse_cell("sstvs").is_ok());
        assert!(parse_cell("combined").is_ok());
        assert!(matches!(parse_cell("ghost"), Err(CliError::Usage(_))));
    }

    #[test]
    fn smoke_and_rails_are_mutually_exclusive() {
        let args = CharacterizeArgs {
            smoke: true,
            rails: Some((0.8, 1.2, 0.2)),
            ..Default::default()
        };
        assert!(matches!(grid_for(&args), Err(CliError::Usage(_))));
        let smoke = CharacterizeArgs {
            smoke: true,
            ..Default::default()
        };
        assert_eq!(grid_for(&smoke).unwrap().n_points(), 4);
        // The default grid is the paper's 0.8-1.4 V range at 0.1 V.
        let default = grid_for(&CharacterizeArgs::default()).unwrap();
        assert_eq!(default.vddi.len(), 7);
    }
}
