//! The `serve` subcommand: boot the `vls-serve` query daemon over one
//! or more preloaded characterization artifacts. Everything is a
//! library function so the integration tests exercise the same code
//! path as the binary, and `--check-config` can validate a deployment
//! without binding a socket.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use vls_cells::ShifterKind;
use vls_charlib::CharLib;
use vls_core::CharacterizeOptions;
use vls_engine::FaultPlan;
use vls_serve::{ServeConfig, ServedCell, Server};

use crate::CliError;

/// Options of one `serve` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Artifact specs (`--lib [cell=]path`, repeatable). The optional
    /// `cell` prefix names the cell kind the artifact was built for
    /// (`sstvs`, the default, or `combined`) and doubles as the wire
    /// name clients put in query bodies.
    pub libs: Vec<String>,
    /// Bind host (`--host`, default loopback).
    pub host: String,
    /// Bind port (`--port`; 0 picks an ephemeral port).
    pub port: u16,
    /// Exact-fallback workers (`--jobs`; default: `VLS_JOBS`, then all
    /// cores).
    pub jobs: Option<usize>,
    /// Bounded exact-fallback queue slots (`--queue`).
    pub queue: usize,
    /// Per-request exact-path deadline, ms (`--deadline-ms`).
    pub deadline_ms: u64,
    /// Retry-ladder height for exact transients (`--retry`).
    pub retry: usize,
    /// Fault-injection plan text for soak runs (`--fault-plan`).
    pub fault_plan: Option<String>,
    /// Master seed for per-query fault arming (`--seed`).
    pub seed: u64,
    /// Request-body ceiling, bytes (`--max-body`).
    pub max_body: usize,
    /// Validate artifacts + configuration and exit without binding a
    /// socket (`--check-config`).
    pub check_config: bool,
}

impl Default for ServeArgs {
    fn default() -> Self {
        Self {
            libs: Vec::new(),
            host: "127.0.0.1".into(),
            port: 7450,
            jobs: None,
            queue: 64,
            deadline_ms: 30_000,
            retry: 2,
            fault_plan: None,
            seed: 0x5eed_cafe,
            max_body: 64 * 1024,
            check_config: false,
        }
    }
}

/// Splits a `--lib [cell=]path` spec into its cell kind, wire name and
/// artifact path.
fn parse_lib_spec(spec: &str) -> Result<(String, ShifterKind, &str), CliError> {
    let (cell, path) = match spec.split_once('=') {
        Some((cell, path)) => (cell, path),
        None => ("sstvs", spec),
    };
    let kind = match cell {
        "sstvs" => ShifterKind::sstvs(),
        "combined" => ShifterKind::combined(),
        other => {
            return Err(CliError::Usage(format!(
                "--lib: unknown cell '{other}' (expected sstvs or combined)"
            )))
        }
    };
    if path.is_empty() {
        return Err(CliError::Usage(format!("--lib: empty path in '{spec}'")));
    }
    Ok((cell.to_string(), kind, path))
}

/// Loads and verifies every artifact named by `--lib` flags.
///
/// # Errors
///
/// Usage errors for bad specs or duplicate cell names, and artifact
/// load/verification failures.
pub fn load_served_cells(args: &ServeArgs) -> Result<Vec<ServedCell>, CliError> {
    if args.libs.is_empty() {
        return Err(CliError::Usage("serve requires at least one --lib".into()));
    }
    // Validate every spec (including duplicates) before any load, so
    // flag mistakes stay usage errors even when files are missing.
    let mut specs = Vec::new();
    for spec in &args.libs {
        let (name, kind, path) = parse_lib_spec(spec)?;
        if specs
            .iter()
            .any(|(prev, _, _): &(String, _, _)| *prev == name)
        {
            return Err(CliError::Usage(format!(
                "--lib: cell '{name}' given more than once"
            )));
        }
        specs.push((name, kind, path));
    }
    let base = CharacterizeOptions::default();
    let mut cells = Vec::new();
    for (name, kind, path) in specs {
        let lib = CharLib::load(path, &kind, &base)?;
        cells.push(ServedCell::new(name, Arc::new(lib)));
    }
    Ok(cells)
}

/// Maps the flags onto a [`ServeConfig`].
///
/// # Errors
///
/// Usage errors for an unparsable fault plan or degenerate limits.
pub fn serve_config(args: &ServeArgs) -> Result<ServeConfig, CliError> {
    let fault_plan = args
        .fault_plan
        .as_deref()
        .map(FaultPlan::parse)
        .transpose()
        .map_err(|e| CliError::Usage(format!("--fault-plan: {e}")))?;
    if args.queue == 0 {
        return Err(CliError::Usage("--queue must be positive".into()));
    }
    if args.deadline_ms == 0 {
        return Err(CliError::Usage("--deadline-ms must be positive".into()));
    }
    Ok(ServeConfig {
        addr: format!("{}:{}", args.host, args.port),
        jobs: args.jobs,
        queue_depth: args.queue,
        deadline: Duration::from_millis(args.deadline_ms),
        retry: args.retry,
        fault_plan,
        seed: args.seed,
        max_body: args.max_body,
        ..ServeConfig::default()
    })
}

/// The `--check-config` dry run: load every artifact, validate the
/// configuration, report what *would* be served — and never bind a
/// socket. Exit-code contract: 0 when everything validates, 1 when an
/// artifact is missing/stale/corrupt, 2 for unusable flags.
///
/// # Errors
///
/// Everything [`load_served_cells`] and [`serve_config`] report.
pub fn run_serve_check(args: &ServeArgs) -> Result<String, CliError> {
    let cells = load_served_cells(args)?;
    let cfg = serve_config(args)?;
    let mut out = String::new();
    let _ = writeln!(out, "serve config: OK");
    let _ = writeln!(out, "  bind: {}", cfg.addr);
    for cell in &cells {
        let _ = writeln!(
            out,
            "  cell {}: {} grid points, content hash {:#018x}",
            cell.name,
            cell.lib.grid().n_points(),
            cell.lib.content_hash()
        );
    }
    let _ = writeln!(
        out,
        "  queue: {} slots, deadline {} ms, retry {}",
        cfg.queue_depth,
        cfg.deadline.as_millis(),
        cfg.retry
    );
    let _ = writeln!(
        out,
        "  fault plan: {}",
        cfg.fault_plan
            .as_ref()
            .map_or_else(|| "none".to_string(), |p| p.to_string())
    );
    Ok(out)
}

/// Loads the artifacts and boots the daemon.
///
/// # Errors
///
/// Everything [`load_served_cells`], [`serve_config`] and
/// [`Server::start`] report.
pub fn start_server(args: &ServeArgs) -> Result<Server, CliError> {
    let cells = load_served_cells(args)?;
    let cfg = serve_config(args)?;
    Ok(Server::start(cells, cfg)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lib_specs_parse() {
        let (name, _, path) = parse_lib_spec("/tmp/a.json").unwrap();
        assert_eq!((name.as_str(), path), ("sstvs", "/tmp/a.json"));
        let (name, _, path) = parse_lib_spec("combined=/tmp/b.json").unwrap();
        assert_eq!((name.as_str(), path), ("combined", "/tmp/b.json"));
        assert!(matches!(
            parse_lib_spec("ghost=/tmp/c.json"),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(parse_lib_spec("sstvs="), Err(CliError::Usage(_))));
    }

    #[test]
    fn config_maps_flags_and_validates() {
        let args = ServeArgs {
            port: 0,
            queue: 3,
            deadline_ms: 250,
            fault_plan: Some("pivot".into()),
            ..Default::default()
        };
        let cfg = serve_config(&args).unwrap();
        assert_eq!(cfg.addr, "127.0.0.1:0");
        assert_eq!(cfg.queue_depth, 3);
        assert_eq!(cfg.deadline, Duration::from_millis(250));
        assert!(cfg.fault_plan.is_some());

        let bad = ServeArgs {
            fault_plan: Some("gremlins".into()),
            ..Default::default()
        };
        assert!(matches!(serve_config(&bad), Err(CliError::Usage(_))));
        let zero = ServeArgs {
            queue: 0,
            ..Default::default()
        };
        assert!(matches!(serve_config(&zero), Err(CliError::Usage(_))));
    }

    #[test]
    fn check_config_contract_without_artifacts() {
        // No --lib at all: usage (exit 2 at the binary).
        let none = ServeArgs::default();
        assert!(matches!(run_serve_check(&none), Err(CliError::Usage(_))));
        // A missing artifact: runtime failure (exit 1 at the binary).
        let missing = ServeArgs {
            libs: vec!["/nonexistent/vls-serve-test.json".into()],
            ..Default::default()
        };
        assert!(matches!(
            run_serve_check(&missing),
            Err(CliError::CharLib(_))
        ));
        // Duplicate cell names are refused before any load.
        let dup = ServeArgs {
            libs: vec!["sstvs=/a.json".into(), "sstvs=/b.json".into()],
            ..Default::default()
        };
        assert!(matches!(run_serve_check(&dup), Err(CliError::Usage(_))));
    }
}
