//! `vls-spice` — run a SPICE-style deck through the vls engine.
//!
//! ```text
//! vls-spice deck.sp [--csv out.csv] [--plot node1,node2] [--op-report]
//! ```

use vls_cli::{run_deck_path, CliError, RunOptions};

fn usage() -> ! {
    eprintln!("usage: vls-spice <deck.sp> [--csv out.csv] [--plot node1,node2] [--op-report]");
    std::process::exit(2);
}

fn main() {
    let mut deck_path: Option<String> = None;
    let mut options = RunOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--csv" => options.csv = Some(args.next().unwrap_or_else(|| usage())),
            "--plot" => {
                let list = args.next().unwrap_or_else(|| usage());
                options.plot = list.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--op-report" => options.op_report = true,
            "--help" | "-h" => usage(),
            other if deck_path.is_none() && !other.starts_with('-') => {
                deck_path = Some(other.to_string())
            }
            _ => usage(),
        }
    }
    let Some(path) = deck_path else { usage() };
    match run_deck_path(&path, &options) {
        Ok(report) => print!("{report}"),
        Err(e @ CliError::Usage(_)) => {
            eprintln!("vls-spice: {e}");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("vls-spice: {e}");
            std::process::exit(1);
        }
    }
}
