//! `vls-spice` — run a SPICE-style deck through the vls engine.
//!
//! ```text
//! vls-spice deck.sp [--csv out.csv] [--plot node1,node2] [--op-report] [--jobs N]
//!           [--check off|conn|full]
//! vls-spice check deck.sp [--json]
//! ```

use vls_cli::{check_deck_path, run_deck_path, CheckLevel, CliError, RunOptions};

fn usage() -> ! {
    eprintln!(
        "usage: vls-spice <deck.sp> [--csv out.csv] [--plot node1,node2] [--op-report] \
         [--jobs N] [--check off|conn|full]\n       vls-spice check <deck.sp> [--json]"
    );
    std::process::exit(2);
}

/// `vls-spice check <deck.sp> [--json]`: full static ERC, no
/// simulation. Exit 0 when clean of errors, 1 otherwise — a CI gate.
fn check_main(args: &[String]) -> ! {
    let mut deck_path: Option<&str> = None;
    let mut json = false;
    for arg in args {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => usage(),
            other if deck_path.is_none() && !other.starts_with('-') => deck_path = Some(other),
            _ => usage(),
        }
    }
    let Some(path) = deck_path else { usage() };
    match check_deck_path(path) {
        Ok(report) => {
            if json {
                println!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            std::process::exit(i32::from(report.has_errors()));
        }
        Err(e) => {
            eprintln!("vls-spice: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("check") {
        check_main(&argv[1..]);
    }

    let mut deck_path: Option<String> = None;
    let mut options = RunOptions::default();
    let mut args = argv.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--csv" => options.csv = Some(args.next().unwrap_or_else(|| usage())),
            "--plot" => {
                let list = args.next().unwrap_or_else(|| usage());
                options.plot = list.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--op-report" => options.op_report = true,
            "--jobs" => {
                let n: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                if n == 0 {
                    usage();
                }
                options.jobs = Some(n);
            }
            "--check" => {
                options.check = match args.next().as_deref() {
                    Some("off") => CheckLevel::Off,
                    Some("conn") => CheckLevel::Connectivity,
                    Some("full") => CheckLevel::Full,
                    _ => usage(),
                }
            }
            "--help" | "-h" => usage(),
            other if deck_path.is_none() && !other.starts_with('-') => {
                deck_path = Some(other.to_string())
            }
            _ => usage(),
        }
    }
    let Some(path) = deck_path else { usage() };
    match run_deck_path(&path, &options) {
        Ok(report) => print!("{report}"),
        Err(e @ CliError::Usage(_)) => {
            eprintln!("vls-spice: {e}");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("vls-spice: {e}");
            if let CliError::Check(report) = e {
                eprint!("{}", report.render_text());
            }
            std::process::exit(1);
        }
    }
}
