//! `vls-spice` — run a SPICE-style deck through the vls engine.
//!
//! ```text
//! vls-spice deck.sp [--csv out.csv] [--plot node1,node2] [--op-report] [--jobs N]
//!           [--check off|conn|full]
//! vls-spice check deck.sp [--json] [--baseline FILE] [--record-baseline FILE]
//! vls-spice characterize --out lib.json [--smoke | --rails vmin:vmax:step]
//!           [--temp t1,t2] [--cell sstvs|combined] [--jobs N] [--liberty prefix]
//! vls-spice query --lib lib.json --vddi V --vddo V [--slew S] [--load C] [--temp T]
//!           [--cell sstvs|combined] [--exact]
//! ```

use vls_cli::{
    check_deck_path, parse_knobs, run_characterize, run_deck_path, run_optimize, run_query,
    run_serve_check, start_server, Baseline, CharacterizeArgs, CheckLevel, CliError, OptimizeArgs,
    QueryArgs, RunOptions, ServeArgs,
};

fn usage() -> ! {
    eprintln!(
        "usage: vls-spice <deck.sp> [--csv out.csv] [--plot node1,node2] [--op-report] \
         [--jobs N] [--check off|conn|full] [--fault-plan SPEC] [--seed N] [--retry N]\n       \
         vls-spice check <deck.sp> [--json] [--baseline FILE] [--record-baseline FILE]\n       \
         vls-spice characterize --out lib.json [--smoke | --rails vmin:vmax:step] \
         [--temp t1,t2] [--cell sstvs|combined] [--jobs N] [--liberty prefix]\n       \
         vls-spice query --lib lib.json --vddi V --vddo V [--slew S] [--load C] \
         [--temp T] [--cell sstvs|combined] [--exact]\n       \
         vls-spice serve --lib [cell=]lib.json [--lib ...] [--host H] [--port P] \
         [--jobs N] [--queue N] [--deadline-ms MS] [--retry N] [--fault-plan SPEC] \
         [--seed N] [--max-body BYTES] [--check-config]\n       \
         vls-spice optimize [--objective delay|edp|yield] [--knobs n:lo:hi:step,...] \
         [--vddi V] [--vddo V] [--leakage-cap A] [--budget N] [--restarts N] \
         [--samples N] [--trust-margin F] [--gap-tol F] [--seed N] [--jobs N] \
         [--trials N] [--delay-target S] [--leakage-target A] [--retry N] \
         [--out artifact.json]"
    );
    std::process::exit(2);
}

/// Prints a subcommand result per the exit-code contract: 0 success,
/// 1 runtime failure, 2 usage.
fn finish(result: Result<String, CliError>) -> ! {
    match result {
        Ok(report) => {
            print!("{report}");
            std::process::exit(0);
        }
        Err(e @ CliError::Usage(_)) => {
            eprintln!("vls-spice: {e}");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("vls-spice: {e}");
            std::process::exit(1);
        }
    }
}

/// Parses an `x` or `x,y,...` float list flag value.
fn parse_floats(value: &str) -> Option<Vec<f64>> {
    value
        .split(',')
        .map(|s| s.trim().parse::<f64>().ok())
        .collect()
}

/// `vls-spice characterize ...`: build or refresh a characterization
/// library artifact.
fn characterize_main(argv: &[String]) -> ! {
    let mut cargs = CharacterizeArgs::default();
    let mut args = argv.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => cargs.out = args.next().cloned().unwrap_or_else(|| usage()),
            "--smoke" => cargs.smoke = true,
            "--rails" => {
                let spec = args.next().unwrap_or_else(|| usage());
                let parts: Vec<f64> = spec
                    .split(':')
                    .map(|s| s.parse::<f64>().ok())
                    .collect::<Option<_>>()
                    .unwrap_or_else(|| usage());
                let [v_min, v_max, step] = parts[..] else {
                    usage()
                };
                cargs.rails = Some((v_min, v_max, step));
            }
            "--temp" => {
                cargs.temps = args
                    .next()
                    .and_then(|v| parse_floats(v))
                    .unwrap_or_else(|| usage());
            }
            "--cell" => cargs.cell = args.next().cloned().unwrap_or_else(|| usage()),
            "--jobs" => {
                let n: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                if n == 0 {
                    usage();
                }
                cargs.jobs = Some(n);
            }
            "--liberty" => cargs.liberty = Some(args.next().cloned().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    finish(run_characterize(&cargs));
}

/// `vls-spice query ...`: answer one operating-point query from a
/// prebuilt library (table fast path, exact fallback).
fn query_main(argv: &[String]) -> ! {
    let mut lib: Option<String> = None;
    let mut cell = "sstvs".to_string();
    let mut vddi: Option<f64> = None;
    let mut vddo: Option<f64> = None;
    let mut slew: Option<f64> = None;
    let mut load: Option<f64> = None;
    let mut temp: Option<f64> = None;
    let mut exact = false;
    let mut args = argv.iter();
    let float_flag = |args: &mut core::slice::Iter<String>| -> f64 {
        args.next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| usage())
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--lib" => lib = Some(args.next().cloned().unwrap_or_else(|| usage())),
            "--cell" => cell = args.next().cloned().unwrap_or_else(|| usage()),
            "--vddi" => vddi = Some(float_flag(&mut args)),
            "--vddo" => vddo = Some(float_flag(&mut args)),
            "--slew" => slew = Some(float_flag(&mut args)),
            "--load" => load = Some(float_flag(&mut args)),
            "--temp" => temp = Some(float_flag(&mut args)),
            "--exact" => exact = true,
            _ => usage(),
        }
    }
    let (Some(lib), Some(vddi), Some(vddo)) = (lib, vddi, vddo) else {
        usage()
    };
    finish(run_query(&QueryArgs {
        lib,
        cell,
        vddi,
        vddo,
        slew,
        load,
        temp,
        exact,
    }));
}

/// `vls-spice optimize ...`: automated sizing search over the charlib
/// surrogate. Flag-syntax problems exit 2 here; everything after the
/// flags parsed is a runtime failure (exit 1) via [`finish`].
fn optimize_main(argv: &[String]) -> ! {
    let mut oargs = OptimizeArgs::default();
    let mut args = argv.iter();
    let float_flag = |args: &mut core::slice::Iter<String>| -> f64 {
        args.next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| usage())
    };
    let count_flag = |args: &mut core::slice::Iter<String>| -> usize {
        args.next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| usage())
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--objective" => oargs.objective = args.next().cloned().unwrap_or_else(|| usage()),
            "--knobs" => {
                let spec = args.next().unwrap_or_else(|| usage());
                oargs.knobs = parse_knobs(spec).unwrap_or_else(|_| usage());
            }
            "--vddi" => oargs.vddi = float_flag(&mut args),
            "--vddo" => oargs.vddo = float_flag(&mut args),
            "--leakage-cap" => oargs.leakage_cap = Some(float_flag(&mut args)),
            "--budget" => {
                let n = count_flag(&mut args);
                if n == 0 {
                    usage();
                }
                oargs.budget = n;
            }
            "--restarts" => oargs.restarts = count_flag(&mut args),
            "--samples" => oargs.samples = count_flag(&mut args),
            "--trust-margin" => oargs.trust_margin = float_flag(&mut args),
            "--gap-tol" => oargs.gap_tolerance = float_flag(&mut args),
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                oargs.seed = v
                    .strip_prefix("0x")
                    .map_or_else(|| v.parse().ok(), |hex| u64::from_str_radix(hex, 16).ok())
                    .unwrap_or_else(|| usage());
            }
            "--jobs" => {
                let n = count_flag(&mut args);
                if n == 0 {
                    usage();
                }
                oargs.jobs = Some(n);
            }
            "--trials" => oargs.trials = count_flag(&mut args),
            "--delay-target" => oargs.delay_target = Some(float_flag(&mut args)),
            "--leakage-target" => oargs.leakage_target = Some(float_flag(&mut args)),
            "--retry" => oargs.retry = count_flag(&mut args),
            "--out" => oargs.out = Some(args.next().cloned().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    finish(run_optimize(&oargs));
}

/// `vls-spice serve ...`: boot the characterization query daemon (or
/// validate its configuration with `--check-config`).
fn serve_main(argv: &[String]) -> ! {
    let mut sargs = ServeArgs::default();
    let mut args = argv.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--lib" => sargs
                .libs
                .push(args.next().cloned().unwrap_or_else(|| usage())),
            "--host" => sargs.host = args.next().cloned().unwrap_or_else(|| usage()),
            "--port" => {
                sargs.port = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--jobs" => {
                let n: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                if n == 0 {
                    usage();
                }
                sargs.jobs = Some(n);
            }
            "--queue" => {
                sargs.queue = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--deadline-ms" => {
                sargs.deadline_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--retry" => {
                sargs.retry = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--fault-plan" => {
                sargs.fault_plan = Some(args.next().cloned().unwrap_or_else(|| usage()));
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                sargs.seed = v
                    .strip_prefix("0x")
                    .map_or_else(|| v.parse().ok(), |hex| u64::from_str_radix(hex, 16).ok())
                    .unwrap_or_else(|| usage());
            }
            "--max-body" => {
                sargs.max_body = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--check-config" => sargs.check_config = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if sargs.check_config {
        finish(run_serve_check(&sargs));
    }
    match start_server(&sargs) {
        Ok(server) => {
            use std::io::Write as _;
            println!("vls-serve listening on {}", server.addr());
            let _ = std::io::stdout().flush();
            server.wait();
            println!("clean shutdown");
            std::process::exit(0);
        }
        Err(e @ CliError::Usage(_)) => {
            eprintln!("vls-spice: {e}");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("vls-spice: {e}");
            std::process::exit(1);
        }
    }
}

/// `vls-spice check <deck.sp> [--json] [--baseline FILE]
/// [--record-baseline FILE]`: full static ERC, no simulation. Exit 0
/// when clean of (new) errors, 1 otherwise — a CI gate. A baseline
/// file suppresses previously recorded findings by fingerprint, so the
/// gate fails only on regressions.
fn check_main(args: &[String]) -> ! {
    let mut deck_path: Option<&str> = None;
    let mut json = false;
    let mut baseline: Option<&str> = None;
    let mut record: Option<&str> = None;
    let mut args = args.iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--baseline" => {
                baseline = Some(args.next().map(String::as_str).unwrap_or_else(|| usage()))
            }
            "--record-baseline" => {
                record = Some(args.next().map(String::as_str).unwrap_or_else(|| usage()));
            }
            "--help" | "-h" => usage(),
            other if deck_path.is_none() && !other.starts_with('-') => deck_path = Some(other),
            _ => usage(),
        }
    }
    let Some(path) = deck_path else { usage() };
    match check_deck_path(path) {
        Ok(mut report) => {
            if let Some(file) = record {
                let base = Baseline::from_report(&report);
                if let Err(e) = std::fs::write(file, base.render()) {
                    eprintln!("vls-spice: cannot write baseline {file}: {e}");
                    std::process::exit(1);
                }
            }
            if let Some(file) = baseline {
                let base = std::fs::read_to_string(file)
                    .map_err(|e| e.to_string())
                    .and_then(|text| Baseline::parse(&text))
                    .unwrap_or_else(|e| {
                        eprintln!("vls-spice: bad baseline {file}: {e}");
                        std::process::exit(1);
                    });
                report.apply_baseline(&base);
            }
            if json {
                println!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            std::process::exit(i32::from(report.has_errors()));
        }
        Err(e) => {
            eprintln!("vls-spice: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("check") => check_main(&argv[1..]),
        Some("characterize") => characterize_main(&argv[1..]),
        Some("query") => query_main(&argv[1..]),
        Some("serve") => serve_main(&argv[1..]),
        Some("optimize") => optimize_main(&argv[1..]),
        _ => {}
    }

    let mut deck_path: Option<String> = None;
    let mut options = RunOptions::default();
    let mut args = argv.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--csv" => options.csv = Some(args.next().unwrap_or_else(|| usage())),
            "--plot" => {
                let list = args.next().unwrap_or_else(|| usage());
                options.plot = list.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--op-report" => options.op_report = true,
            "--jobs" => {
                let n: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                if n == 0 {
                    usage();
                }
                options.jobs = Some(n);
            }
            "--check" => {
                options.check = match args.next().as_deref() {
                    Some("off") => CheckLevel::Off,
                    Some("conn") => CheckLevel::Connectivity,
                    Some("full") => CheckLevel::Full,
                    _ => usage(),
                }
            }
            "--fault-plan" => {
                options.fault_plan = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                options.seed = v
                    .strip_prefix("0x")
                    .map_or_else(|| v.parse().ok(), |hex| u64::from_str_radix(hex, 16).ok())
                    .unwrap_or_else(|| usage());
            }
            "--retry" => {
                options.retry = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--help" | "-h" => usage(),
            other if deck_path.is_none() && !other.starts_with('-') => {
                deck_path = Some(other.to_string())
            }
            _ => usage(),
        }
    }
    let Some(path) = deck_path else { usage() };
    match run_deck_path(&path, &options) {
        Ok(report) => print!("{report}"),
        Err(e @ CliError::Usage(_)) => {
            eprintln!("vls-spice: {e}");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("vls-spice: {e}");
            if let CliError::Check(report) = e {
                eprint!("{}", report.render_text());
            }
            std::process::exit(1);
        }
    }
}
