//! End-to-end exit-code contract of `vls-spice check` — the CI lint
//! gate. Spawns the real binary via `CARGO_BIN_EXE_vls-spice`.

use std::path::PathBuf;
use std::process::{Command, Output};

const CLEAN_DECK: &str = "\
clean inverter
Vdd vdd 0 1.2
Vin in 0 PULSE(0 1.2 0 50p 50p 1n 2n)
Mp out in vdd vdd ptm90_pmos W=0.4u L=0.1u
Mn out in 0 0 ptm90_nmos W=0.2u L=0.1u
Cl out 0 1fF
.tran 10p 2n
.end
";

const SINGULAR_DECK: &str = "\
parallel sources
V1 a 0 1.2
V2 a 0 1.0
R1 a 0 1k
.op
.end
";

fn deck_file(name: &str, text: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("vls_check_cli_{name}_{}.sp", std::process::id()));
    std::fs::write(&path, text).unwrap();
    path
}

fn vls_spice(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_vls-spice"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn check_clean_deck_exits_zero() {
    let path = deck_file("clean", CLEAN_DECK);
    let out = vls_spice(&["check", path.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("0 error(s)"), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn check_singular_deck_exits_one_and_names_the_rule() {
    let path = deck_file("singular", SINGULAR_DECK);
    let out = vls_spice(&["check", path.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("ERC003"), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn check_json_is_machine_readable() {
    let path = deck_file("json", SINGULAR_DECK);
    let out = vls_spice(&["check", "--json", path.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout.trim_start().starts_with("{\"errors\":"), "{stdout}");
    assert!(stdout.contains("\"code\":\"ERC003\""), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn run_mode_gate_refuses_singular_deck() {
    let path = deck_file("gate", SINGULAR_DECK);
    let out = vls_spice(&[path.to_str().unwrap()]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "{stderr}");
    assert!(stderr.contains("static check failed"), "{stderr}");
    assert!(stderr.contains("ERC003"), "{stderr}");
    let _ = std::fs::remove_file(path);
}

const HIER_DECK: &str = "\
hierarchical paths
Vdd vdd 0 1.2
Vin a 0 PULSE(0 1.2 0 50p 50p 1n 2n)
.subckt leaky in out vdd
Mp out floatg vdd vdd ptm90_pmos W=0.4u L=0.1u
Mn out in 0 0 ptm90_nmos W=0.2u L=0.1u
.ends
X1 a y vdd leaky
Cl y 0 1fF
.op
.end
";

#[test]
fn check_reports_hierarchical_paths() {
    let path = deck_file("hier", HIER_DECK);
    let out = vls_spice(&["check", path.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    // The undriven gate inside the subckt is named by its full path.
    assert!(stdout.contains("ERC006"), "{stdout}");
    assert!(stdout.contains("x1.floatg"), "{stdout}");
    let json = vls_spice(&["check", "--json", path.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&json.stdout);
    assert!(stdout.contains("\"x1.floatg\""), "{stdout}");
    assert!(stdout.contains("\"x1.mp\""), "{stdout}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn baseline_suppresses_known_findings_round_trip() {
    let deck = deck_file("baseline", SINGULAR_DECK);
    let base = std::env::temp_dir().join(format!("vls_check_cli_base_{}.json", std::process::id()));
    // Record: still exits 1 (the findings are real) but writes the file.
    let out = vls_spice(&[
        "check",
        deck.to_str().unwrap(),
        "--record-baseline",
        base.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let recorded = std::fs::read_to_string(&base).unwrap();
    assert!(recorded.trim_start().starts_with('['), "{recorded}");
    // Apply: the known finding is suppressed and the gate passes.
    let out = vls_spice(&[
        "check",
        deck.to_str().unwrap(),
        "--baseline",
        base.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("suppressed"), "{stdout}");
    assert!(!stdout.contains("ERC003"), "{stdout}");
    let _ = std::fs::remove_file(deck);
    let _ = std::fs::remove_file(base);
}

#[test]
fn missing_operands_exit_two() {
    assert_eq!(vls_spice(&[]).status.code(), Some(2));
    assert_eq!(vls_spice(&["check"]).status.code(), Some(2));
    assert_eq!(vls_spice(&["--check", "bogus"]).status.code(), Some(2));
}
