//! The `.ac` deck flow through the CLI runner.

use vls_cli::{run_deck_text, RunOptions};

#[test]
fn ac_deck_prints_a_bode_table_with_bandwidth() {
    let report = run_deck_text(
        "rc low pass\nVin in 0 0\nR1 in out 1k\nC1 out 0 1p\n.ac dec 10 1meg 10g Vin\n.end\n",
        &RunOptions {
            plot: vec!["out".into()],
            ..Default::default()
        },
    )
    .unwrap();
    assert!(report.contains(".ac sweep"));
    assert!(report.contains("V(out): freq / gain dB / phase deg"));
    assert!(report.contains("-3 dB bandwidth"));
    // The textbook corner of 1 kΩ · 1 pF is ~1.59e8 Hz.
    let bw_line = report.lines().find(|l| l.contains("bandwidth")).unwrap();
    let bw: f64 = bw_line
        .split_whitespace()
        .nth(3)
        .unwrap()
        .replace("Hz", "")
        .parse()
        .unwrap();
    assert!((bw - 1.59e8).abs() < 0.05e8, "bandwidth {bw:.3e}");
}
