//! Operating-point reporting: the SPICE `.op` printout.
//!
//! Given a solved DC operating point, reports every device's bias,
//! current, small-signal parameters and operating region — the first
//! thing an analog designer asks a simulator for when a cell
//! misbehaves.

use vls_netlist::{Circuit, Element, NodeId};
use vls_units::fmt_eng;

use crate::{DcSolution, SimOptions};

/// The conduction region of a MOSFET at its bias point (heuristic
/// classification for reporting; the model itself is continuous).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MosRegion {
    /// `|V_GS| < |V_T|`: subthreshold conduction.
    Subthreshold,
    /// Above threshold with `|V_DS|` below the overdrive: ohmic.
    Triode,
    /// Above threshold, pinched off.
    Saturation,
}

impl core::fmt::Display for MosRegion {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            MosRegion::Subthreshold => "subthreshold",
            MosRegion::Triode => "triode",
            MosRegion::Saturation => "saturation",
        })
    }
}

/// One device's operating point.
#[derive(Debug, Clone, PartialEq)]
pub enum OpEntry {
    /// A MOSFET bias point.
    Mosfet {
        /// Device name.
        name: String,
        /// Gate–source voltage, V (polarity-natural sign).
        vgs: f64,
        /// Drain–source voltage, V.
        vds: f64,
        /// Drain current, A.
        id: f64,
        /// Transconductance, S.
        gm: f64,
        /// Output conductance, S.
        gds: f64,
        /// Region classification.
        region: MosRegion,
    },
    /// A resistor's voltage and current.
    Resistor {
        /// Device name.
        name: String,
        /// Voltage across (a − b), V.
        voltage: f64,
        /// Current a → b, A.
        current: f64,
    },
    /// A voltage source's branch current (SPICE convention).
    Source {
        /// Device name.
        name: String,
        /// Branch current, A.
        current: f64,
    },
}

/// A full `.op` report.
#[derive(Debug, Clone, PartialEq)]
pub struct OpReport {
    entries: Vec<OpEntry>,
}

impl OpReport {
    /// All entries, in element order.
    pub fn entries(&self) -> &[OpEntry] {
        &self.entries
    }

    /// Looks up a device by name.
    pub fn entry(&self, name: &str) -> Option<&OpEntry> {
        self.entries.iter().find(|e| match e {
            OpEntry::Mosfet { name: n, .. }
            | OpEntry::Resistor { name: n, .. }
            | OpEntry::Source { name: n, .. } => n == name,
        })
    }

    /// Total current supplied by all voltage sources whose branch
    /// current is negative (delivering), A — a quick static-power
    /// scan.
    pub fn total_delivered_current(&self) -> f64 {
        self.entries
            .iter()
            .filter_map(|e| match e {
                OpEntry::Source { current, .. } if *current < 0.0 => Some(-current),
                _ => None,
            })
            .sum()
    }
}

impl core::fmt::Display for OpReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for e in &self.entries {
            match e {
                OpEntry::Mosfet { name, vgs, vds, id, gm, gds, region } => writeln!(
                    f,
                    "{name:<14} MOS   vgs={vgs:7.4} V vds={vds:7.4} V id={:>10} gm={:>10} gds={:>10} {region}",
                    fmt_eng(*id, "A"),
                    fmt_eng(*gm, "S"),
                    fmt_eng(*gds, "S"),
                )?,
                OpEntry::Resistor { name, voltage, current } => writeln!(
                    f,
                    "{name:<14} RES   v={voltage:9.4} V i={:>10}",
                    fmt_eng(*current, "A")
                )?,
                OpEntry::Source { name, current } => writeln!(
                    f,
                    "{name:<14} VSRC  i={:>10}",
                    fmt_eng(*current, "A")
                )?,
            }
        }
        Ok(())
    }
}

/// Builds the `.op` report for a solved circuit.
pub fn op_report(circuit: &Circuit, solution: &DcSolution, options: &SimOptions) -> OpReport {
    let volt = |n: NodeId| solution.voltage(n);
    let temp_k = options.temperature.as_kelvin();
    let mut entries = Vec::new();
    for e in circuit.elements() {
        match e {
            Element::Mosfet {
                name,
                drain,
                gate,
                source,
                bulk,
                model,
                geom,
            } => {
                let (vg, vd, vs, vb) = (volt(*gate), volt(*drain), volt(*source), volt(*bulk));
                let op = model.op(geom, vg, vd, vs, vb, temp_k);
                // Polarity-natural bias voltages.
                let sign = match model.polarity {
                    vls_device::MosPolarity::Nmos => 1.0,
                    vls_device::MosPolarity::Pmos => -1.0,
                };
                let vgs = vg - vs;
                let vds = vd - vs;
                let (mag_vgs, mag_vds) = (sign * vgs, (sign * vds).abs());
                let vov = mag_vgs - model.vt0;
                let region = if vov <= 0.0 {
                    MosRegion::Subthreshold
                } else if mag_vds < vov {
                    MosRegion::Triode
                } else {
                    MosRegion::Saturation
                };
                entries.push(OpEntry::Mosfet {
                    name: name.clone(),
                    vgs,
                    vds,
                    id: op.id,
                    gm: op.gm,
                    gds: op.gds,
                    region,
                });
            }
            Element::Resistor {
                name,
                a,
                b,
                resistor,
            } => {
                let v = volt(*a) - volt(*b);
                entries.push(OpEntry::Resistor {
                    name: name.clone(),
                    voltage: v,
                    current: v * resistor.conductance(),
                });
            }
            Element::VoltageSource { name, .. } => {
                entries.push(OpEntry::Source {
                    name: name.clone(),
                    current: solution.branch_current(name).expect("solved source"),
                });
            }
            _ => {}
        }
    }
    OpReport { entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve_dc;
    use vls_device::{MosGeometry, MosModel, SourceWaveform};

    fn amp() -> Circuit {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let g = c.node("g");
        let d = c.node("d");
        c.add_vsource("vdd", vdd, Circuit::GROUND, SourceWaveform::Dc(1.2));
        c.add_vsource("vg", g, Circuit::GROUND, SourceWaveform::Dc(0.7));
        c.add_resistor("rl", vdd, d, 5000.0);
        c.add_mosfet(
            "m1",
            d,
            g,
            Circuit::GROUND,
            Circuit::GROUND,
            MosModel::ptm90_nmos(),
            MosGeometry::from_microns(1.0, 0.1),
        );
        c
    }

    #[test]
    fn report_covers_all_devices_consistently() {
        let c = amp();
        let opts = SimOptions::default();
        let sol = solve_dc(&c, &opts).unwrap();
        let rep = op_report(&c, &sol, &opts);
        assert_eq!(rep.entries().len(), 4); // 2 sources, 1 R, 1 MOS

        // KCL at the drain: resistor current equals drain current.
        let (r_i, m_id) = match (rep.entry("rl").unwrap(), rep.entry("m1").unwrap()) {
            (OpEntry::Resistor { current, .. }, OpEntry::Mosfet { id, .. }) => (*current, *id),
            _ => panic!("wrong kinds"),
        };
        // Within Newton's convergence tolerance (reltol 1e-3 leaves
        // ~1e-6-relative residuals at worst).
        assert!(
            (r_i - m_id).abs() < 1e-5 * m_id.abs().max(1e-12),
            "{r_i} vs {m_id}"
        );

        // The transistor is on and saturated at this bias.
        match rep.entry("m1").unwrap() {
            OpEntry::Mosfet {
                region, gm, vgs, ..
            } => {
                assert_eq!(*region, MosRegion::Saturation);
                assert!(*gm > 0.0);
                assert!((vgs - 0.7).abs() < 1e-9);
            }
            _ => unreachable!(),
        }

        // VDD delivers the same current the resistor carries.
        assert!((rep.total_delivered_current() - r_i).abs() < 1e-9);

        // Display renders every row.
        let text = rep.to_string();
        assert!(text.contains("m1"));
        assert!(text.contains("saturation"));
        assert!(text.contains("VSRC"));
    }

    #[test]
    fn regions_classify_across_bias() {
        let opts = SimOptions::default();
        let region_at = |vg: f64, vd: f64| {
            let mut c = Circuit::new();
            let g = c.node("g");
            let d = c.node("d");
            c.add_vsource("vg", g, Circuit::GROUND, SourceWaveform::Dc(vg));
            c.add_vsource("vd", d, Circuit::GROUND, SourceWaveform::Dc(vd));
            c.add_mosfet(
                "m1",
                d,
                g,
                Circuit::GROUND,
                Circuit::GROUND,
                MosModel::ptm90_nmos(),
                MosGeometry::from_microns(1.0, 0.1),
            );
            let sol = solve_dc(&c, &opts).unwrap();
            match op_report(&c, &sol, &opts).entry("m1").unwrap() {
                OpEntry::Mosfet { region, .. } => *region,
                _ => unreachable!(),
            }
        };
        assert_eq!(region_at(0.2, 1.2), MosRegion::Subthreshold);
        assert_eq!(region_at(1.2, 0.1), MosRegion::Triode);
        assert_eq!(region_at(0.8, 1.2), MosRegion::Saturation);
    }

    #[test]
    fn missing_entry_lookup() {
        let c = amp();
        let opts = SimOptions::default();
        let sol = solve_dc(&c, &opts).unwrap();
        let rep = op_report(&c, &sol, &opts);
        assert!(rep.entry("zz").is_none());
    }
}
