//! AC small-signal analysis.
//!
//! Linearizes every device at the DC operating point (the same
//! conductance stamps the Newton iteration uses, plus the Meyer
//! capacitances), replaces the named source with a unit phasor, and
//! solves the complex system `(G + jωC)·x = b` at each requested
//! frequency. This is the analysis behind gain/bandwidth measurements
//! of the level-shifter cells and their feedback loops.

use vls_netlist::{Circuit, Element, NodeId};
use vls_num::{Complex, ComplexMatrix, TripletMatrix};

use crate::mna::{Mna, StampCtx};
use crate::{solve_dc, EngineError, SimOptions};

/// The frequency response of every unknown.
#[derive(Debug, Clone)]
pub struct AcResult {
    freqs: Vec<f64>,
    /// `phasors[k]` is the complex unknown vector at `freqs[k]`.
    phasors: Vec<Vec<Complex>>,
    n_node_unknowns: usize,
}

impl AcResult {
    /// The analysis frequencies, Hz.
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// The complex phasor of `node` across frequency.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to the analyzed circuit.
    pub fn phasor(&self, node: NodeId) -> Vec<Complex> {
        if node.is_ground() {
            return vec![Complex::ZERO; self.freqs.len()];
        }
        let i = node.index() - 1;
        assert!(i < self.n_node_unknowns, "node outside circuit");
        self.phasors.iter().map(|p| p[i]).collect()
    }

    /// Magnitude response `|V(node)|` (volts per volt of excitation).
    pub fn magnitude(&self, node: NodeId) -> Vec<f64> {
        self.phasor(node).into_iter().map(|z| z.abs()).collect()
    }

    /// Gain in dB relative to the unit excitation.
    pub fn gain_db(&self, node: NodeId) -> Vec<f64> {
        self.magnitude(node)
            .into_iter()
            .map(|m| 20.0 * m.max(1e-300).log10())
            .collect()
    }

    /// Phase response in degrees.
    pub fn phase_deg(&self, node: NodeId) -> Vec<f64> {
        self.phasor(node)
            .into_iter()
            .map(|z| z.arg().to_degrees())
            .collect()
    }

    /// The −3 dB bandwidth of `node` relative to its lowest-frequency
    /// gain: the first frequency where the magnitude falls below
    /// `1/√2` of the first point. `None` if it never does within the
    /// analyzed range.
    pub fn bandwidth(&self, node: NodeId) -> Option<f64> {
        let mag = self.magnitude(node);
        let reference = *mag.first()?;
        let corner = reference / core::f64::consts::SQRT_2;
        for (k, m) in mag.iter().enumerate() {
            if *m < corner {
                if k == 0 {
                    return Some(self.freqs[0]);
                }
                // Log-linear interpolation between the straddling points.
                let (f0, f1) = (self.freqs[k - 1], self.freqs[k]);
                let (m0, m1) = (mag[k - 1], mag[k]);
                let t = (m0 - corner) / (m0 - m1);
                return Some(f0 * (f1 / f0).powf(t));
            }
        }
        None
    }
}

/// Logarithmically spaced frequencies, `points_per_decade` per decade
/// from `f_start` to `f_stop` inclusive — the usual AC sweep grid.
///
/// # Panics
///
/// Panics if the range is degenerate or non-positive.
pub fn log_space(f_start: f64, f_stop: f64, points_per_decade: usize) -> Vec<f64> {
    assert!(
        f_start > 0.0 && f_stop > f_start && points_per_decade > 0,
        "bad frequency range {f_start}..{f_stop}"
    );
    let decades = (f_stop / f_start).log10();
    let n = (decades * points_per_decade as f64).ceil() as usize + 1;
    (0..n)
        .map(|k| f_start * 10f64.powf(decades * k as f64 / (n - 1) as f64))
        .collect()
}

/// Runs an AC analysis: unit excitation on the named source (voltage
/// or current), all other sources quieted, devices linearized at the
/// DC operating point.
///
/// # Errors
///
/// [`EngineError::BadNetlist`] if the source is unknown; otherwise
/// propagates DC failures and singular systems.
pub fn run_ac(
    circuit: &Circuit,
    ac_source: &str,
    freqs: &[f64],
    options: &SimOptions,
) -> Result<AcResult, EngineError> {
    let source_pos = circuit
        .elements()
        .iter()
        .position(|e| {
            matches!(
                e,
                Element::VoltageSource { .. } | Element::CurrentSource { .. }
            ) && e.name() == ac_source
        })
        .ok_or_else(|| EngineError::BadNetlist(format!("no source named {ac_source}")))?;

    // DC operating point and the small-signal conductance matrix G.
    let dc = solve_dc(circuit, options)?;
    let mna = Mna::new(circuit);
    let n = mna.n_unknowns;
    let mut g_trip = TripletMatrix::new(n);
    let mut b_unused = vec![0.0; n];
    let ctx = StampCtx {
        time: 0.0,
        source_scale: 1.0,
        gmin: options.gmin,
        temp_k: options.temperature.as_kelvin(),
        reactive: None,
    };
    mna.assemble(dc.unknowns(), &mut g_trip, &mut b_unused, &ctx);
    let mut csc_scratch: Vec<(usize, f64)> = Vec::new();
    let g = g_trip.to_csc_with(&mut csc_scratch);

    // Capacitance stamps: explicit caps plus Meyer caps at the op.
    let mut caps: Vec<(Option<usize>, Option<usize>, f64)> = Vec::new();
    for e in circuit.elements() {
        match e {
            Element::Capacitor {
                a, b, capacitor, ..
            } if capacitor.capacitance() > 0.0 => {
                caps.push((mna.idx(*a), mna.idx(*b), capacitor.capacitance()));
            }
            Element::Mosfet {
                drain,
                gate,
                source,
                bulk,
                model,
                geom,
                ..
            } => {
                let x = dc.unknowns();
                let vg = mna.voltage(x, *gate);
                let vd = mna.voltage(x, *drain);
                let vs = mna.voltage(x, *source);
                let vb = mna.voltage(x, *bulk);
                let mc = model.caps(geom, vg, vd, vs, vb, options.temperature.as_kelvin());
                let (d, gt, s, bk) = (
                    mna.idx(*drain),
                    mna.idx(*gate),
                    mna.idx(*source),
                    mna.idx(*bulk),
                );
                for (na, nb, c) in [
                    (gt, s, mc.cgs),
                    (gt, d, mc.cgd),
                    (gt, bk, mc.cgb),
                    (d, bk, mc.cdb),
                    (s, bk, mc.csb),
                ] {
                    if c > 0.0 {
                        caps.push((na, nb, c));
                    }
                }
            }
            _ => {}
        }
    }

    // Excitation vector.
    let mut b = vec![Complex::ZERO; n];
    match &circuit.elements()[source_pos] {
        Element::VoltageSource { .. } => {
            let br = mna.branch_index(source_pos).expect("vsource has a branch");
            b[br] = Complex::ONE;
        }
        Element::CurrentSource { pos, neg, .. } => {
            if let Some(i) = mna.idx(*pos) {
                b[i] = Complex::ONE;
            }
            if let Some(j) = mna.idx(*neg) {
                b[j] = b[j] - Complex::ONE;
            }
        }
        _ => unreachable!("position filtered to sources"),
    }

    // Per-frequency solve.
    let mut phasors = Vec::with_capacity(freqs.len());
    let mut a = ComplexMatrix::zeros(n);
    for &f in freqs {
        assert!(f > 0.0 && f.is_finite(), "invalid AC frequency {f}");
        let omega = 2.0 * core::f64::consts::PI * f;
        a.clear();
        for (j, (&start, &end)) in g.col_ptr().iter().zip(&g.col_ptr()[1..]).enumerate() {
            for k in start..end {
                a.add(g.row_indices()[k], j, Complex::from_real(g.values()[k]));
            }
        }
        let mut stamp_jwc = |na: Option<usize>, nb: Option<usize>, c: f64| {
            let y = Complex::new(0.0, omega * c);
            if let Some(i) = na {
                a.add(i, i, y);
                if let Some(j) = nb {
                    a.add(i, j, -y);
                }
            }
            if let Some(j) = nb {
                a.add(j, j, y);
                if let Some(i) = na {
                    a.add(j, i, -y);
                }
            }
        };
        for &(na, nb, c) in &caps {
            stamp_jwc(na, nb, c);
        }
        let x = a.solve(&b).map_err(|_| EngineError::Singular {
            context: format!("AC at {f:.3e} Hz"),
        })?;
        phasors.push(x);
    }
    Ok(AcResult {
        freqs: freqs.to_vec(),
        phasors,
        n_node_unknowns: mna.node_unknowns(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vls_device::{MosGeometry, MosModel, SourceWaveform};

    #[test]
    fn log_space_spans_the_range() {
        let f = log_space(1e3, 1e6, 10);
        assert!((f[0] - 1e3).abs() < 1e-9);
        assert!((f.last().unwrap() - 1e6).abs() < 1.0);
        assert_eq!(f.len(), 31);
        for w in f.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn rc_low_pass_has_the_textbook_corner() {
        // R = 1 kΩ, C = 1 pF → f_c = 1/(2πRC) ≈ 159.2 MHz.
        let mut c = Circuit::new();
        let inp = c.node("in");
        let out = c.node("out");
        c.add_vsource("vin", inp, Circuit::GROUND, SourceWaveform::Dc(0.0));
        c.add_resistor("r1", inp, out, 1000.0);
        c.add_capacitor("c1", out, Circuit::GROUND, 1e-12);
        let freqs = log_space(1e6, 1e10, 40);
        let ac = run_ac(&c, "vin", &freqs, &SimOptions::default()).unwrap();

        // Low-frequency gain ≈ 1, high-frequency rolls off.
        let mag = ac.magnitude(out);
        assert!((mag[0] - 1.0).abs() < 1e-3, "LF gain {}", mag[0]);
        assert!(
            *mag.last().unwrap() < 0.05,
            "HF gain {}",
            mag.last().unwrap()
        );

        // −3 dB corner within 2 % of 1/(2πRC).
        let fc = ac.bandwidth(out).expect("corner inside range");
        let expect = 1.0 / (2.0 * core::f64::consts::PI * 1000.0 * 1e-12);
        assert!(
            (fc - expect).abs() < 0.02 * expect,
            "fc {fc:.3e} vs {expect:.3e}"
        );

        // Phase approaches −90° well above the corner.
        let ph = ac.phase_deg(out);
        assert!(
            (ph.last().unwrap() + 90.0).abs() < 3.0,
            "phase {}",
            ph.last().unwrap()
        );

        // At exactly the corner |H| = 1/√2 and phase −45°.
        let k = freqs.iter().position(|&f| f > expect).unwrap();
        assert!((mag[k] - core::f64::consts::FRAC_1_SQRT_2).abs() < 0.05);
        assert!((ph[k] + 45.0).abs() < 5.0);
    }

    #[test]
    fn common_source_amplifier_gain_matches_gm_ro() {
        // NMOS with a resistive load: |A_v| ≈ gm·(R ∥ ro) at low f.
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let gate = c.node("g");
        let drain = c.node("d");
        c.add_vsource("vdd", vdd, Circuit::GROUND, SourceWaveform::Dc(1.2));
        c.add_vsource("vg", gate, Circuit::GROUND, SourceWaveform::Dc(0.6));
        c.add_resistor("rl", vdd, drain, 10_000.0);
        let model = MosModel::ptm90_nmos();
        let geom = MosGeometry::from_microns(1.0, 0.1);
        c.add_mosfet(
            "m1",
            drain,
            gate,
            Circuit::GROUND,
            Circuit::GROUND,
            model.clone(),
            geom,
        );

        let opts = SimOptions::default();
        let dc = solve_dc(&c, &opts).unwrap();
        let vd = dc.voltage(drain);
        let op = model.op(&geom, 0.6, vd, 0.0, 0.0, 300.15);
        let expected_gain = op.gm * (1.0 / (1.0 / 10_000.0 + op.gds));

        let ac = run_ac(&c, "vg", &[1e3], &opts).unwrap();
        let gain = ac.magnitude(drain)[0];
        assert!(
            (gain - expected_gain).abs() < 0.05 * expected_gain,
            "AC gain {gain:.3} vs small-signal prediction {expected_gain:.3}"
        );
        // Inverting stage: phase near 180°.
        let ph = ac.phase_deg(drain)[0].abs();
        assert!((ph - 180.0).abs() < 2.0, "phase {ph}");
    }

    #[test]
    fn current_source_excitation_sees_the_impedance() {
        // 1 A phasor into R ∥ C reads the impedance directly.
        let mut c = Circuit::new();
        let node = c.node("n");
        c.add_isource("iin", node, Circuit::GROUND, SourceWaveform::Dc(0.0));
        c.add_resistor("r1", node, Circuit::GROUND, 500.0);
        c.add_capacitor("c1", node, Circuit::GROUND, 2e-12);
        let ac = run_ac(&c, "iin", &[1e3], &SimOptions::default()).unwrap();
        // At 1 kHz the capacitor is negligible: |Z| ≈ R.
        assert!((ac.magnitude(node)[0] - 500.0).abs() < 0.5);
    }

    #[test]
    fn unknown_source_is_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("v1", a, Circuit::GROUND, SourceWaveform::Dc(1.0));
        c.add_resistor("r1", a, Circuit::GROUND, 100.0);
        assert!(matches!(
            run_ac(&c, "nope", &[1e3], &SimOptions::default()),
            Err(EngineError::BadNetlist(_))
        ));
    }

    #[test]
    fn ground_phasor_is_zero() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("v1", a, Circuit::GROUND, SourceWaveform::Dc(1.0));
        c.add_resistor("r1", a, Circuit::GROUND, 100.0);
        let ac = run_ac(&c, "v1", &[1e3, 1e4], &SimOptions::default()).unwrap();
        assert_eq!(ac.phasor(Circuit::GROUND), vec![Complex::ZERO; 2]);
        assert_eq!(ac.freqs().len(), 2);
        // The driven node follows the unit excitation exactly.
        assert!((ac.magnitude(a)[0] - 1.0).abs() < 1e-9);
    }
}
