//! DC operating point: Newton–Raphson with gmin and source stepping.

use vls_fault::{FaultSession, LadderStage};
use vls_netlist::{Circuit, NodeId};
use vls_num::{weighted_converged, DenseMatrix, SolverStats, SparseLu, TripletMatrix};

use crate::kernel::NewtonKernel;
use crate::mna::{Mna, StampCtx};
use crate::options::KernelMode;
use crate::{EngineError, SimOptions};

/// A DC solution: node voltages plus voltage-source branch currents.
#[derive(Debug, Clone)]
pub struct DcSolution {
    x: Vec<f64>,
    n_node_unknowns: usize,
    branch_names: Vec<String>,
    pub(crate) stats: SolverStats,
}

impl DcSolution {
    pub(crate) fn new(circuit: &Circuit, x: Vec<f64>) -> Self {
        let branch_names = circuit
            .elements()
            .iter()
            .filter(|e| e.needs_branch_current())
            .map(|e| e.name().to_string())
            .collect();
        Self {
            x,
            n_node_unknowns: circuit.node_count() - 1,
            branch_names,
            stats: SolverStats::default(),
        }
    }

    /// The voltage at `node`, in volts. Ground reads 0.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to the solved circuit.
    pub fn voltage(&self, node: NodeId) -> f64 {
        if node.is_ground() {
            0.0
        } else {
            self.x[node.index() - 1]
        }
    }

    /// The branch current of the named voltage source, in amperes,
    /// using the SPICE convention (positive current flows from the `+`
    /// terminal through the source to `−`; a delivering supply reads
    /// negative).
    pub fn branch_current(&self, source_name: &str) -> Option<f64> {
        let pos = self.branch_names.iter().position(|n| n == source_name)?;
        Some(self.x[self.n_node_unknowns + pos])
    }

    /// The raw unknown vector (node voltages then branch currents) —
    /// the transient engine warm-starts from this.
    pub fn unknowns(&self) -> &[f64] {
        &self.x
    }

    /// Work counters of the Newton solve(s) that produced this
    /// solution. The legacy path reports iteration, linear-solve and
    /// full-factorization counts; the symbolic kernel additionally
    /// reports device-eval, refactorization and bypass counters.
    pub fn solver_stats(&self) -> SolverStats {
        self.stats
    }
}

/// Why a Newton attempt gave up; drives the homotopy fallbacks. A
/// singular system carries the offending unknown's name (node or
/// `I(source)`) when the factorization could localize it — mapped back
/// through any fill-reducing/block permutation the solver applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum NewtonFailure {
    Singular(Option<String>),
    NoConvergence,
}

/// Maps a numeric singularity at permuted column `col` back to the
/// original unknown (`perm[new] = old`; `None` = natural order) and
/// names it.
pub(crate) fn singular_failure(
    mna: &Mna<'_>,
    perm: Option<&[usize]>,
    err: &vls_num::NumError,
) -> NewtonFailure {
    match err {
        vls_num::NumError::Singular(col) => {
            let original = perm.map_or(*col, |p| p[*col]);
            NewtonFailure::Singular(Some(mna.unknown_name(original)))
        }
        _ => NewtonFailure::Singular(None),
    }
}

/// Solves one Newton iteration sequence at fixed context, rebuilding
/// the linear system from scratch every iteration (the legacy hot
/// path; [`NewtonKernel`] is the symbolic-reuse rewrite). Returns the
/// converged unknown vector and the iterations spent; accumulates
/// iteration/factorization counters into `stats`.
pub(crate) fn newton_solve(
    mna: &Mna<'_>,
    x0: &[f64],
    ctx: &StampCtx<'_>,
    options: &SimOptions,
    stats: &mut SolverStats,
) -> Result<(Vec<f64>, usize), NewtonFailure> {
    let n = mna.n_unknowns;
    let nvu = mna.node_unknowns();
    debug_assert_eq!(x0.len(), n);
    let mut x = x0.to_vec();
    let mut b = vec![0.0; n];
    let use_sparse = n > options.sparse_threshold;
    let mut dense = if use_sparse {
        None
    } else {
        Some(DenseMatrix::zeros(n))
    };
    // Compression scratch hoisted out of the iteration loop.
    let mut csc_scratch: Vec<(usize, f64)> = Vec::new();

    for iter in 1..=options.max_newton_iters {
        b.fill(0.0);
        stats.newton_iters += 1;
        let x_new = if let Some(a) = dense.as_mut() {
            a.clear();
            mna.assemble(&x, a, &mut b, ctx);
            match a.factorize() {
                Ok(lu) => lu.solve(&b),
                Err(e) => return Err(singular_failure(mna, None, &e)),
            }
        } else {
            let mut t = TripletMatrix::new(n);
            mna.assemble(&x, &mut t, &mut b, ctx);
            let csc = t.to_csc_with(&mut csc_scratch);
            match SparseLu::factorize_with_tolerance(&csc, options.sparse_pivot_tol)
                .and_then(|lu| lu.solve(&b))
            {
                Ok(sol) => sol,
                Err(e) => return Err(singular_failure(mna, None, &e)),
            }
        };
        stats.full_factorizations += 1;
        stats.linear_solves += 1;
        // Damped update: clamp voltage moves to tame the exponential
        // device characteristics.
        let mut clamped = false;
        let mut delta = vec![0.0; n];
        for i in 0..n {
            let mut d = x_new[i] - x[i];
            if !d.is_finite() {
                return Err(NewtonFailure::Singular(None));
            }
            if i < nvu && d.abs() > options.max_voltage_step {
                d = d.signum() * options.max_voltage_step;
                clamped = true;
            }
            delta[i] = d;
            x[i] += d;
        }
        if clamped {
            continue;
        }
        let (dv, di) = delta.split_at(nvu);
        let (xv, xi) = x.split_at(nvu);
        if weighted_converged(dv, xv, options.vabstol, options.reltol)
            && weighted_converged(di, xi, options.iabstol, options.reltol)
        {
            return Ok((x, iter));
        }
    }
    Err(NewtonFailure::NoConvergence)
}

/// How a DC operating point was obtained — the instrumentation behind
/// the runner's warm/cold accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DcSolveStats {
    /// `true` when Newton converged directly from a caller-supplied
    /// initial guess, skipping the cold-start homotopy ladder.
    pub warm: bool,
    /// Newton iterations spent, summed over every ladder stage
    /// attempted (a failed warm attempt contributes its full budget).
    pub newton_iters: usize,
}

/// One ladder attempt: consumes an injected-failure charge for `stage`
/// if one is armed (reporting non-convergence without running Newton,
/// exactly like a real failed attempt), otherwise runs the solver.
fn attempt<F>(
    solve: &mut F,
    faults: &mut FaultSession,
    stage: LadderStage,
    x0: &[f64],
    gmin: f64,
    scale: f64,
) -> Result<(Vec<f64>, usize), NewtonFailure>
where
    F: FnMut(&[f64], f64, f64, &mut FaultSession) -> Result<(Vec<f64>, usize), NewtonFailure>,
{
    if faults.fire_newton(stage) {
        return Err(NewtonFailure::NoConvergence);
    }
    solve(x0, gmin, scale, faults)
}

/// The deterministic iteration timeout: trips once the ladder's summed
/// Newton iterations cross [`SimOptions::newton_budget`].
fn check_budget(
    options: &SimOptions,
    stats: &DcSolveStats,
    stage: LadderStage,
) -> Result<(), EngineError> {
    if let Some(budget) = options.newton_budget {
        let spent = stats.newton_iters as u64;
        if spent > budget {
            return Err(EngineError::BudgetExhausted {
                context: format!("dc ladder, {stage} stage"),
                spent,
                budget,
            });
        }
    }
    Ok(())
}

/// The DC homotopy ladder, generic over the Newton implementation:
/// `solve(x0, gmin, source_scale, faults)` runs one Newton sequence.
/// Shared by the legacy path and the symbolic kernel so both climb the
/// exact same warm → plain → gmin-stepping → source-stepping
/// escalation. The fault session covers the whole ladder: stage
/// charges force attempts to fail, and the session is also handed to
/// the solver for its own (pivot, bypass) hooks.
fn run_ladder<F>(
    options: &SimOptions,
    n: usize,
    guess: Option<&[f64]>,
    faults: &mut FaultSession,
    solve: &mut F,
) -> Result<(Vec<f64>, DcSolveStats), EngineError>
where
    F: FnMut(&[f64], f64, f64, &mut FaultSession) -> Result<(Vec<f64>, usize), NewtonFailure>,
{
    let zero = vec![0.0; n];
    let mut stats = DcSolveStats::default();

    // 0. Warm start from the caller's guess.
    if let Some(g) = guess.filter(|g| g.len() == n) {
        match attempt(solve, faults, LadderStage::Warm, g, options.gmin, 1.0) {
            Ok((x, iters)) => {
                stats.warm = true;
                stats.newton_iters += iters;
                return Ok((x, stats));
            }
            // Fall back to the cold ladder; bill the wasted attempt.
            Err(_) => {
                stats.newton_iters += options.max_newton_iters;
                check_budget(options, &stats, LadderStage::Warm)?;
            }
        }
    }

    // 1. Plain Newton.
    match attempt(solve, faults, LadderStage::Plain, &zero, options.gmin, 1.0) {
        Ok((x, iters)) => {
            stats.newton_iters += iters;
            return Ok((x, stats));
        }
        Err(_) => {
            stats.newton_iters += options.max_newton_iters;
            check_budget(options, &stats, LadderStage::Plain)?;
        }
    }

    // 2. Gmin stepping: start heavily regularized, relax geometrically.
    let mut x = zero.clone();
    let mut gmin = 1e-3;
    let mut gmin_ok = true;
    while gmin >= options.gmin {
        match attempt(solve, faults, LadderStage::Gmin, &x, gmin, 1.0) {
            Ok((next, iters)) => {
                x = next;
                stats.newton_iters += iters;
                check_budget(options, &stats, LadderStage::Gmin)?;
            }
            Err(_) => {
                gmin_ok = false;
                break;
            }
        }
        if gmin == options.gmin {
            return Ok((x, stats));
        }
        gmin = (gmin / 10.0).max(options.gmin);
    }
    if gmin_ok {
        // Loop exited after solving at exactly options.gmin.
        return Ok((x, stats));
    }

    // 3. Source stepping from a dead circuit.
    let mut x = zero;
    let steps = 40;
    for k in 1..=steps {
        let scale = k as f64 / steps as f64;
        match attempt(solve, faults, LadderStage::Source, &x, options.gmin, scale) {
            Ok((next, iters)) => {
                x = next;
                stats.newton_iters += iters;
                check_budget(options, &stats, LadderStage::Source)?;
            }
            Err(NewtonFailure::Singular(name)) => {
                let at = name
                    .map(|n| format!(" at unknown '{n}'"))
                    .unwrap_or_default();
                return Err(EngineError::Singular {
                    context: format!("source stepping at scale {scale:.2}{at}"),
                });
            }
            Err(NewtonFailure::NoConvergence) => {
                return Err(EngineError::NoConvergence {
                    context: format!("source stepping at scale {scale:.2}"),
                })
            }
        }
    }
    Ok((x, stats))
}

/// Solves the DC operating point at `time` (sources evaluated there),
/// optionally warm-starting Newton from `guess` (a previous solution's
/// unknown vector). A guess of the wrong length is ignored; a guess
/// from which Newton fails falls back to the cold-start ladder.
pub(crate) fn solve_dc_at_guess(
    circuit: &Circuit,
    options: &SimOptions,
    time: f64,
    guess: Option<&[f64]>,
) -> Result<(DcSolution, DcSolveStats), EngineError> {
    crate::preflight(circuit, options)?;
    let mna = Mna::new(circuit);
    let n = mna.n_unknowns;
    let ctx = |gmin: f64, scale: f64| StampCtx {
        time,
        source_scale: scale,
        gmin,
        temp_k: options.temperature.as_kelvin(),
        reactive: None,
    };

    // One fault session per DC ladder: stage charges and solver hooks
    // draw from the same ledger, so a plan's counts mean "per phase".
    let mut faults = FaultSession::new(&options.fault);
    let (x, stats, solver) = match options.kernel {
        KernelMode::Legacy => {
            let mut solver = SolverStats::default();
            let (x, stats) = run_ladder(
                options,
                n,
                guess,
                &mut faults,
                &mut |x0, gmin, scale, _faults| {
                    newton_solve(&mna, x0, &ctx(gmin, scale), options, &mut solver)
                },
            )?;
            (x, stats, solver)
        }
        // A scalar DC solve under `Batched` is just the symbolic kernel:
        // lane batching only exists across MC trials, never within one
        // circuit's ladder.
        KernelMode::Symbolic | KernelMode::Batched => {
            // One kernel for the whole ladder: the symbolic pattern,
            // LU storage, workspaces and bypass caches carry across
            // every homotopy stage.
            let mut kernel = NewtonKernel::new(&mna, options, None);
            let (x, stats) = run_ladder(
                options,
                n,
                guess,
                &mut faults,
                &mut |x0, gmin, scale, faults| kernel.solve(x0, &ctx(gmin, scale), options, faults),
            )?;
            let solver = kernel.stats();
            (x, stats, solver)
        }
    };
    let mut sol = DcSolution::new(circuit, x);
    sol.stats = solver;
    sol.stats.injected_faults += faults.fired();
    Ok((sol, stats))
}

/// Solves the DC operating point at `time` (sources evaluated there).
pub(crate) fn solve_dc_at(
    circuit: &Circuit,
    options: &SimOptions,
    time: f64,
) -> Result<DcSolution, EngineError> {
    solve_dc_at_guess(circuit, options, time, None).map(|(sol, _)| sol)
}

/// Solves the DC operating point with sources evaluated at `t = 0`.
///
/// The solver escalates automatically: plain Newton–Raphson, then gmin
/// stepping, then source stepping — the same ladder SPICE climbs.
///
/// # Errors
///
/// [`EngineError::BadNetlist`] for an invalid circuit, or
/// [`EngineError::NoConvergence`]/[`EngineError::Singular`] when every
/// fallback fails.
pub fn solve_dc(circuit: &Circuit, options: &SimOptions) -> Result<DcSolution, EngineError> {
    solve_dc_at(circuit, options, 0.0)
}

/// [`solve_dc`] with an optional warm-start guess — typically the
/// [`DcSolution::unknowns`] of a neighbouring sweep point — and solve
/// statistics. Newton is attempted from the guess first; if it fails
/// (or no guess is given), the cold-start ladder of [`solve_dc`] runs
/// unchanged, so a warm start can never *lose* a solution, only find
/// it in fewer iterations. A guess whose length does not match the
/// circuit's unknown count is ignored.
///
/// # Errors
///
/// As [`solve_dc`].
pub fn solve_dc_warm(
    circuit: &Circuit,
    options: &SimOptions,
    guess: Option<&[f64]>,
) -> Result<(DcSolution, DcSolveStats), EngineError> {
    solve_dc_at_guess(circuit, options, 0.0, guess)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vls_device::{MosGeometry, MosModel, SourceWaveform};

    fn opts() -> SimOptions {
        SimOptions::default()
    }

    #[test]
    fn divider_operating_point() {
        let mut c = Circuit::new();
        let top = c.node("top");
        let mid = c.node("mid");
        c.add_vsource("v1", top, Circuit::GROUND, SourceWaveform::Dc(2.0));
        c.add_resistor("r1", top, mid, 1000.0);
        c.add_resistor("r2", mid, Circuit::GROUND, 1000.0);
        let sol = solve_dc(&c, &opts()).unwrap();
        assert!((sol.voltage(top) - 2.0).abs() < 1e-6);
        assert!((sol.voltage(mid) - 1.0).abs() < 1e-6);
        assert!((sol.branch_current("v1").unwrap() + 1e-3).abs() < 1e-9);
        assert_eq!(sol.voltage(Circuit::GROUND), 0.0);
        assert!(sol.branch_current("nope").is_none());
    }

    #[test]
    fn inverter_transfer_points() {
        // CMOS inverter: in low → out at VDD; in high → out at 0.
        let build = |vin: f64| {
            let mut c = Circuit::new();
            let vdd = c.node("vdd");
            let inp = c.node("in");
            let out = c.node("out");
            c.add_vsource("vdd", vdd, Circuit::GROUND, SourceWaveform::Dc(1.2));
            c.add_vsource("vin", inp, Circuit::GROUND, SourceWaveform::Dc(vin));
            c.add_mosfet(
                "mp",
                out,
                inp,
                vdd,
                vdd,
                MosModel::ptm90_pmos(),
                MosGeometry::from_microns(0.4, 0.1),
            );
            c.add_mosfet(
                "mn",
                out,
                inp,
                Circuit::GROUND,
                Circuit::GROUND,
                MosModel::ptm90_nmos(),
                MosGeometry::from_microns(0.2, 0.1),
            );
            c
        };
        let low_in = solve_dc(&build(0.0), &opts()).unwrap();
        let c = build(0.0);
        let out = c.find_node("out").unwrap();
        assert!(
            (low_in.voltage(out) - 1.2).abs() < 0.01,
            "out = {} for low input",
            low_in.voltage(out)
        );
        let high_in = solve_dc(&build(1.2), &opts()).unwrap();
        assert!(
            high_in.voltage(out).abs() < 0.01,
            "out = {}",
            high_in.voltage(out)
        );
        // Near the switching threshold the output sits between rails.
        let mid_in = solve_dc(&build(0.55), &opts()).unwrap();
        let v = mid_in.voltage(out);
        assert!(v > 0.1 && v < 1.1, "transition output {v}");
    }

    #[test]
    fn supply_current_of_off_inverter_is_leakage_sized() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.add_vsource("vdd", vdd, Circuit::GROUND, SourceWaveform::Dc(1.2));
        c.add_vsource("vin", inp, Circuit::GROUND, SourceWaveform::Dc(0.0));
        c.add_mosfet(
            "mp",
            out,
            inp,
            vdd,
            vdd,
            MosModel::ptm90_pmos(),
            MosGeometry::from_microns(0.4, 0.1),
        );
        c.add_mosfet(
            "mn",
            out,
            inp,
            Circuit::GROUND,
            Circuit::GROUND,
            MosModel::ptm90_nmos(),
            MosGeometry::from_microns(0.2, 0.1),
        );
        let sol = solve_dc(&c, &opts()).unwrap();
        // Input low ⇒ NMOS off ⇒ supply only sees the NMOS leakage.
        let i = -sol.branch_current("vdd").unwrap();
        assert!(i > 0.0 && i < 1e-7, "leakage {i:.3e} A");
    }

    #[test]
    fn diode_connected_nmos_settles_near_vt() {
        // Current forced into a diode-connected NMOS: V ≈ VT + overdrive.
        let mut c = Circuit::new();
        let d = c.node("d");
        c.add_isource("ib", d, Circuit::GROUND, SourceWaveform::Dc(10e-6));
        c.add_mosfet(
            "m1",
            d,
            d,
            Circuit::GROUND,
            Circuit::GROUND,
            MosModel::ptm90_nmos(),
            MosGeometry::from_microns(1.0, 0.1),
        );
        // Wait: the current source pushes current out of `d`… flip it.
        let mut c2 = Circuit::new();
        let d2 = c2.node("d");
        c2.add_isource("ib", Circuit::GROUND, d2, SourceWaveform::Dc(-10e-6));
        c2.add_mosfet(
            "m1",
            d2,
            d2,
            Circuit::GROUND,
            Circuit::GROUND,
            MosModel::ptm90_nmos(),
            MosGeometry::from_microns(1.0, 0.1),
        );
        for ckt in [&c, &c2] {
            let sol = solve_dc(ckt, &opts()).unwrap();
            let node = ckt.find_node("d").unwrap();
            let v = sol.voltage(node);
            assert!(v > 0.3 && v < 0.7, "diode voltage {v}");
        }
    }

    #[test]
    fn warm_start_reuses_a_neighbouring_solution() {
        // Solve a divider, nudge the source, re-solve warm: fewer
        // Newton iterations and the same answer as a cold solve.
        let build = |v: f64| {
            let mut c = Circuit::new();
            let top = c.node("top");
            let mid = c.node("mid");
            c.add_vsource("v1", top, Circuit::GROUND, SourceWaveform::Dc(v));
            c.add_resistor("r1", top, mid, 1000.0);
            c.add_resistor("r2", mid, Circuit::GROUND, 1000.0);
            c
        };
        let (first, cold) = solve_dc_warm(&build(2.0), &opts(), None).unwrap();
        assert!(!cold.warm);
        assert!(cold.newton_iters >= 1);
        let (warm_sol, warm) =
            solve_dc_warm(&build(2.01), &opts(), Some(first.unknowns())).unwrap();
        assert!(warm.warm, "guess of matching size must be attempted");
        assert!(
            warm.newton_iters <= cold.newton_iters,
            "warm {} vs cold {}",
            warm.newton_iters,
            cold.newton_iters
        );
        let (cold_sol, _) = solve_dc_warm(&build(2.01), &opts(), None).unwrap();
        let mid = build(2.01).find_node("mid").unwrap();
        assert!((warm_sol.voltage(mid) - cold_sol.voltage(mid)).abs() < 1e-6);
    }

    #[test]
    fn mismatched_guess_is_ignored() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("v1", a, Circuit::GROUND, SourceWaveform::Dc(1.0));
        c.add_resistor("r1", a, Circuit::GROUND, 100.0);
        let (_, stats) = solve_dc_warm(&c, &opts(), Some(&[0.0; 99])).unwrap();
        assert!(!stats.warm, "wrong-length guess must not be used");
    }

    #[test]
    fn nonsense_guess_falls_back_to_the_cold_ladder() {
        // A wild guess must not prevent convergence — the ladder runs
        // after the failed warm attempt.
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.add_vsource("vdd", vdd, Circuit::GROUND, SourceWaveform::Dc(1.2));
        c.add_vsource("vin", inp, Circuit::GROUND, SourceWaveform::Dc(0.0));
        c.add_mosfet(
            "mp",
            out,
            inp,
            vdd,
            vdd,
            MosModel::ptm90_pmos(),
            MosGeometry::from_microns(0.4, 0.1),
        );
        c.add_mosfet(
            "mn",
            out,
            inp,
            Circuit::GROUND,
            Circuit::GROUND,
            MosModel::ptm90_nmos(),
            MosGeometry::from_microns(0.2, 0.1),
        );
        let n = crate::unknown_count(&c);
        let wild = vec![1e6; n];
        let (sol, _) = solve_dc_warm(&c, &opts(), Some(&wild)).unwrap();
        let out_n = c.find_node("out").unwrap();
        assert!((sol.voltage(out_n) - 1.2).abs() < 0.01);
    }

    #[test]
    fn bad_netlist_is_rejected() {
        let c = Circuit::new();
        assert!(matches!(
            solve_dc(&c, &opts()),
            Err(EngineError::BadNetlist(_))
        ));
    }

    #[test]
    fn preflight_check_gates_the_solve() {
        // An unmediated 0.7 V -> 1.3 V up-shift: numerically solvable
        // (Newton converges to the leaky operating point), but ERC007
        // must refuse it when the static check is enabled.
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.add_vsource("vdd", vdd, Circuit::GROUND, SourceWaveform::Dc(1.3));
        c.add_vsource(
            "vin",
            inp,
            Circuit::GROUND,
            SourceWaveform::Pulse {
                v1: 0.0,
                v2: 0.7,
                delay: 0.0,
                rise: 50e-12,
                fall: 50e-12,
                width: 1e-9,
                period: 2e-9,
            },
        );
        c.add_mosfet(
            "mp",
            out,
            inp,
            vdd,
            vdd,
            MosModel::ptm90_pmos(),
            MosGeometry::from_microns(0.4, 0.1),
        );
        c.add_mosfet(
            "mn",
            out,
            inp,
            Circuit::GROUND,
            Circuit::GROUND,
            MosModel::ptm90_nmos(),
            MosGeometry::from_microns(0.2, 0.1),
        );

        // Default options: no static check, the solve succeeds.
        assert!(solve_dc(&c, &opts()).is_ok());

        // Full check: the ERC007 error becomes a BadNetlist refusal
        // that names the rule.
        let mut checked = opts();
        checked.check = crate::CheckLevel::Full;
        match solve_dc(&c, &checked) {
            Err(EngineError::BadNetlist(msg)) => {
                assert!(msg.contains("ERC007"), "unexpected message: {msg}");
            }
            other => panic!("expected a BadNetlist refusal, got {other:?}"),
        }

        // Connectivity-only check: the domain rules do not run, so the
        // leaky-but-connected circuit passes.
        let mut conn = opts();
        conn.check = crate::CheckLevel::Connectivity;
        assert!(solve_dc(&c, &conn).is_ok());
    }

    #[test]
    fn cross_coupled_latch_converges_via_homotopy() {
        // Two cross-coupled inverters with no input: a bistable circuit
        // that plain Newton from zero may struggle with.
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let q = c.node("q");
        let qb = c.node("qb");
        c.add_vsource("vdd", vdd, Circuit::GROUND, SourceWaveform::Dc(1.2));
        for (i, (inp, out)) in [(q, qb), (qb, q)].into_iter().enumerate() {
            c.add_mosfet(
                &format!("mp{i}"),
                out,
                inp,
                vdd,
                vdd,
                MosModel::ptm90_pmos(),
                MosGeometry::from_microns(0.4, 0.1),
            );
            c.add_mosfet(
                &format!("mn{i}"),
                out,
                inp,
                Circuit::GROUND,
                Circuit::GROUND,
                MosModel::ptm90_nmos(),
                MosGeometry::from_microns(0.2, 0.1),
            );
        }
        let sol = solve_dc(&c, &opts()).unwrap();
        // Symmetric circuit solved from a symmetric start lands on the
        // metastable point or a rail pair; all are valid solutions of
        // f(x) = 0. Check KCL health instead: voltages within rails.
        for node in [q, qb] {
            let v = sol.voltage(node);
            assert!((-0.01..=1.21).contains(&v), "latch node at {v}");
        }
    }

    #[test]
    fn capacitors_are_open_in_dc() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("v1", a, Circuit::GROUND, SourceWaveform::Dc(1.0));
        c.add_resistor("r1", a, b, 1000.0);
        c.add_capacitor("c1", b, Circuit::GROUND, 1e-12);
        let sol = solve_dc(&c, &opts()).unwrap();
        // No DC path through the cap: b floats up to a's potential.
        assert!((sol.voltage(b) - 1.0).abs() < 1e-3);
    }
}
