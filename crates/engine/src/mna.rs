//! Modified nodal analysis: unknown numbering and system assembly.
//!
//! Unknowns are the non-ground node voltages (in node order) followed by
//! one branch current per voltage source (in element order). Assembly
//! produces the *linearized* system `A·x_new = b` for a Newton iterate:
//! each nonlinear device is replaced by its tangent conductances plus an
//! equivalent current source evaluated at the current iterate, exactly
//! the companion-model formulation SPICE uses. The KCL residual at the
//! iterate is then simply `A·x − b`.

use vls_device::{MosBias, MosGeometry, MosModel, MosStamp};
use vls_netlist::{Circuit, Element, NodeId};
use vls_num::{DenseMatrix, TripletMatrix};

/// The number of MNA unknowns for a circuit: non-ground nodes plus one
/// branch current per voltage source.
pub fn unknown_count(circuit: &Circuit) -> usize {
    let branches = circuit
        .elements()
        .iter()
        .filter(|e| e.needs_branch_current())
        .count();
    circuit.node_count() - 1 + branches
}

/// Anything stamps can accumulate into (dense or sparse).
pub(crate) trait MatrixSink {
    fn stamp(&mut self, row: usize, col: usize, value: f64);
}

impl MatrixSink for DenseMatrix {
    fn stamp(&mut self, row: usize, col: usize, value: f64) {
        self.add(row, col, value);
    }
}

impl MatrixSink for TripletMatrix {
    fn stamp(&mut self, row: usize, col: usize, value: f64) {
        self.add(row, col, value);
    }
}

/// A linearized capacitor for one transient step:
/// `i(t_new) = geq·v(t_new) − ieq` across nodes `a` → `b`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompanionCap {
    pub a: Option<usize>,
    pub b: Option<usize>,
    pub geq: f64,
    pub ieq: f64,
}

/// Assembly context: what varies between calls.
pub(crate) struct StampCtx<'a> {
    /// Simulation time for source evaluation, s.
    pub time: f64,
    /// Source homotopy scale in `[0, 1]` (1 = full sources).
    pub source_scale: f64,
    /// Node-to-ground conductance floor.
    pub gmin: f64,
    /// Device temperature, K.
    pub temp_k: f64,
    /// Companion models for this step; `None` means DC (capacitors
    /// open, MOS capacitances ignored).
    pub reactive: Option<&'a [CompanionCap]>,
}

/// Precomputed unknown numbering for one circuit.
pub(crate) struct Mna<'c> {
    circuit: &'c Circuit,
    n_node_unknowns: usize,
    /// Branch unknown per element index (voltage sources only).
    branch_of: Vec<Option<usize>>,
    pub n_unknowns: usize,
}

impl<'c> Mna<'c> {
    pub fn new(circuit: &'c Circuit) -> Self {
        let n_node_unknowns = circuit.node_count() - 1;
        let mut branch_of = Vec::with_capacity(circuit.elements().len());
        let mut next = n_node_unknowns;
        for e in circuit.elements() {
            if e.needs_branch_current() {
                branch_of.push(Some(next));
                next += 1;
            } else {
                branch_of.push(None);
            }
        }
        Self {
            circuit,
            n_node_unknowns,
            branch_of,
            n_unknowns: next,
        }
    }

    /// Maps a node to its unknown index (`None` for ground).
    pub fn idx(&self, n: NodeId) -> Option<usize> {
        if n.is_ground() {
            None
        } else {
            Some(n.index() - 1)
        }
    }

    /// The branch-current unknown of element `elem_idx`, if any (the
    /// AC analysis uses this to place the unit excitation).
    pub fn branch_index(&self, elem_idx: usize) -> Option<usize> {
        self.branch_of[elem_idx]
    }

    /// The number of node-voltage unknowns (they occupy the front of
    /// the unknown vector; branch currents follow).
    pub fn node_unknowns(&self) -> usize {
        self.n_node_unknowns
    }

    /// The number of circuit elements (the symbolic kernel sizes its
    /// per-element bypass caches from this).
    pub fn element_count(&self) -> usize {
        self.branch_of.len()
    }

    /// The human name of unknown `i`: the circuit node name for voltage
    /// unknowns, `I(<element>)` for branch-current unknowns. This is
    /// what singular-matrix diagnostics print instead of a bare index.
    pub fn unknown_name(&self, i: usize) -> String {
        if i < self.n_node_unknowns {
            // Node unknown i is node index i + 1 (ground is index 0).
            let id = self
                .circuit
                .node_ids()
                .nth(i + 1)
                .expect("node unknown maps to a node");
            self.circuit.node_name(id).to_string()
        } else {
            self.branch_of
                .iter()
                .position(|&b| b == Some(i))
                .map(|elem_idx| format!("I({})", self.circuit.elements()[elem_idx].name()))
                .unwrap_or_else(|| format!("unknown {i}"))
        }
    }

    /// The boundary set for island tearing: every non-ground node
    /// incident to a voltage source plus every branch-current unknown,
    /// sorted and deduplicated.
    ///
    /// Branch unknowns must always be boundary — a voltage-source row
    /// has a zero diagonal, so a branch torn out alone would be a
    /// structurally singular singleton island. Source-incident nodes
    /// are the shared nets (rails, stimulus) that couple otherwise
    /// independent cell instances; removing them is what makes the
    /// remaining components small.
    pub fn boundary_unknowns(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for (elem_idx, e) in self.circuit.elements().iter().enumerate() {
            if let Element::VoltageSource { pos, neg, .. } = e {
                if let Some(i) = self.idx(*pos) {
                    out.push(i);
                }
                if let Some(j) = self.idx(*neg) {
                    out.push(j);
                }
            }
            if let Some(br) = self.branch_of[elem_idx] {
                out.push(br);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The node voltage at `n` in an unknown vector.
    pub fn voltage(&self, x: &[f64], n: NodeId) -> f64 {
        match self.idx(n) {
            Some(i) => x[i],
            None => 0.0,
        }
    }

    /// Assembles the linearized MNA system at iterate `x` into `a`
    /// (pre-cleared by the caller) and `b` (pre-zeroed), evaluating
    /// every MOSFET directly.
    pub fn assemble<M: MatrixSink>(&self, x: &[f64], a: &mut M, b: &mut [f64], ctx: &StampCtx) {
        let temp_k = ctx.temp_k;
        self.assemble_with_eval(x, a, b, ctx, &mut |_, model, geom, bias| {
            let op = model.op(geom, bias.vg, bias.vd, bias.vs, bias.vb, temp_k);
            MosStamp::from_op(&op, &bias)
        });
    }

    /// [`Mna::assemble`] with the MOSFET evaluation factored out: `eval`
    /// receives `(element index, model, geometry, bias)` and returns the
    /// stamp values. This is the hook the symbolic kernel uses for
    /// SPICE3-style device bypass — the caller decides per device
    /// whether to evaluate the model or replay a cached linearization.
    /// The stamp *positions* are independent of `eval`.
    pub fn assemble_with_eval<M, F>(
        &self,
        x: &[f64],
        a: &mut M,
        b: &mut [f64],
        ctx: &StampCtx,
        eval: &mut F,
    ) where
        M: MatrixSink,
        F: FnMut(usize, &MosModel, &MosGeometry, MosBias) -> MosStamp,
    {
        debug_assert_eq!(x.len(), self.n_unknowns);
        debug_assert_eq!(b.len(), self.n_unknowns);

        // gmin from every node unknown to ground keeps the matrix
        // nonsingular when devices are cut off.
        for i in 0..self.n_node_unknowns {
            a.stamp(i, i, ctx.gmin);
        }

        let stamp_conductance = |a: &mut M, na: Option<usize>, nb: Option<usize>, g: f64| {
            if let Some(i) = na {
                a.stamp(i, i, g);
                if let Some(j) = nb {
                    a.stamp(i, j, -g);
                }
            }
            if let Some(j) = nb {
                a.stamp(j, j, g);
                if let Some(i) = na {
                    a.stamp(j, i, -g);
                }
            }
        };

        for (elem_idx, e) in self.circuit.elements().iter().enumerate() {
            match e {
                Element::Resistor {
                    a: na,
                    b: nb,
                    resistor,
                    ..
                } => {
                    stamp_conductance(a, self.idx(*na), self.idx(*nb), resistor.conductance());
                }
                Element::Capacitor { .. } => {
                    // Fixed capacitors are handled through ctx.reactive
                    // companion models (open in DC).
                }
                Element::VoltageSource { pos, neg, wave, .. } => {
                    let br = self.branch_of[elem_idx].expect("vsource has a branch");
                    let (ip, in_) = (self.idx(*pos), self.idx(*neg));
                    if let Some(i) = ip {
                        a.stamp(i, br, 1.0);
                        a.stamp(br, i, 1.0);
                    }
                    if let Some(j) = in_ {
                        a.stamp(j, br, -1.0);
                        a.stamp(br, j, -1.0);
                    }
                    b[br] = wave.value_at(ctx.time) * ctx.source_scale;
                }
                Element::CurrentSource { pos, neg, wave, .. } => {
                    let i_val = wave.value_at(ctx.time) * ctx.source_scale;
                    if let Some(i) = self.idx(*pos) {
                        b[i] += i_val;
                    }
                    if let Some(j) = self.idx(*neg) {
                        b[j] -= i_val;
                    }
                }
                Element::Mosfet {
                    drain,
                    gate,
                    source,
                    bulk,
                    model,
                    geom,
                    ..
                } => {
                    let (nd, ng, ns, nb) = (
                        self.idx(*drain),
                        self.idx(*gate),
                        self.idx(*source),
                        self.idx(*bulk),
                    );
                    let bias = MosBias::new(
                        self.voltage(x, *gate),
                        self.voltage(x, *drain),
                        self.voltage(x, *source),
                        self.voltage(x, *bulk),
                    );
                    let s = eval(elem_idx, model, geom, bias);
                    // Drain row: current I_D leaves the drain node into
                    // the channel.
                    if let Some(rd) = nd {
                        if let Some(c) = ng {
                            a.stamp(rd, c, s.gm);
                        }
                        if let Some(c) = nd {
                            a.stamp(rd, c, s.gds);
                        }
                        if let Some(c) = ns {
                            a.stamp(rd, c, s.gss);
                        }
                        if let Some(c) = nb {
                            a.stamp(rd, c, s.gmb);
                        }
                        b[rd] -= s.ieq;
                    }
                    // Source row: the same current arrives.
                    if let Some(rs) = ns {
                        if let Some(c) = ng {
                            a.stamp(rs, c, -s.gm);
                        }
                        if let Some(c) = nd {
                            a.stamp(rs, c, -s.gds);
                        }
                        if let Some(c) = ns {
                            a.stamp(rs, c, -s.gss);
                        }
                        if let Some(c) = nb {
                            a.stamp(rs, c, -s.gmb);
                        }
                        b[rs] += s.ieq;
                    }
                }
            }
        }

        if let Some(caps) = ctx.reactive {
            for c in caps {
                stamp_conductance(a, c.a, c.b, c.geq);
                if let Some(i) = c.a {
                    b[i] += c.ieq;
                }
                if let Some(j) = c.b {
                    b[j] -= c.ieq;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vls_device::SourceWaveform;

    #[test]
    fn unknown_count_counts_nodes_and_branches() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("v1", a, Circuit::GROUND, SourceWaveform::Dc(1.0));
        c.add_vsource("v2", b, Circuit::GROUND, SourceWaveform::Dc(2.0));
        c.add_resistor("r1", a, b, 100.0);
        assert_eq!(unknown_count(&c), 4); // 2 nodes + 2 branches
        let mna = Mna::new(&c);
        assert_eq!(mna.n_unknowns, 4);
        assert_eq!(mna.idx(Circuit::GROUND), None);
        assert_eq!(mna.idx(a), Some(0));
        assert_eq!(mna.branch_index(0), Some(2));
        assert_eq!(mna.branch_index(2), None);
    }

    #[test]
    fn unknown_names_and_boundary_cover_nodes_and_branches() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let mid = c.node("mid");
        let out = c.node("out");
        c.add_vsource("vsup", vdd, Circuit::GROUND, SourceWaveform::Dc(1.2));
        c.add_resistor("r1", vdd, mid, 1000.0);
        c.add_resistor("r2", mid, out, 1000.0);
        c.add_resistor("r3", out, Circuit::GROUND, 1000.0);
        let mna = Mna::new(&c);
        assert_eq!(mna.unknown_name(0), "vdd");
        assert_eq!(mna.unknown_name(1), "mid");
        assert_eq!(mna.unknown_name(2), "out");
        assert_eq!(mna.unknown_name(3), "I(vsup)");
        // Boundary = the source-incident node plus its branch current;
        // mid/out stay interior.
        assert_eq!(mna.boundary_unknowns(), vec![0, 3]);
    }

    #[test]
    fn divider_assembles_to_the_textbook_system() {
        let mut c = Circuit::new();
        let top = c.node("top");
        let mid = c.node("mid");
        c.add_vsource("v1", top, Circuit::GROUND, SourceWaveform::Dc(2.0));
        c.add_resistor("r1", top, mid, 1000.0);
        c.add_resistor("r2", mid, Circuit::GROUND, 1000.0);
        let mna = Mna::new(&c);
        let n = mna.n_unknowns;
        let mut a = DenseMatrix::zeros(n);
        let mut b = vec![0.0; n];
        let x = vec![0.0; n];
        let ctx = StampCtx {
            time: 0.0,
            source_scale: 1.0,
            gmin: 0.0,
            temp_k: 300.15,
            reactive: None,
        };
        mna.assemble(&x, &mut a, &mut b, &ctx);
        let g = 1e-3;
        assert!((a.get(0, 0) - g).abs() < 1e-15); // top: r1 only
        assert!((a.get(1, 1) - 2.0 * g).abs() < 1e-15); // mid: r1 + r2
        assert!((a.get(0, 1) + g).abs() < 1e-15);
        assert_eq!(a.get(0, 2), 1.0); // vsource column
        assert_eq!(a.get(2, 0), 1.0); // vsource row
        assert_eq!(b[2], 2.0);
        // Solving it gives the divider voltages.
        let sol = a.solve(&b).unwrap();
        assert!((sol[0] - 2.0).abs() < 1e-9);
        assert!((sol[1] - 1.0).abs() < 1e-9);
        // Branch current: 2 V across 2 kΩ delivered by the source ⇒
        // −1 mA in the + → − convention.
        assert!((sol[2] + 1e-3).abs() < 1e-9);
    }

    #[test]
    fn current_source_injects_at_pos() {
        let mut c = Circuit::new();
        let a_node = c.node("a");
        c.add_isource("i1", a_node, Circuit::GROUND, SourceWaveform::Dc(1e-3));
        c.add_resistor("r1", a_node, Circuit::GROUND, 1000.0);
        let mna = Mna::new(&c);
        let mut a = DenseMatrix::zeros(1);
        let mut b = vec![0.0];
        let ctx = StampCtx {
            time: 0.0,
            source_scale: 1.0,
            gmin: 0.0,
            temp_k: 300.15,
            reactive: None,
        };
        mna.assemble(&[0.0], &mut a, &mut b, &ctx);
        let sol = a.solve(&b).unwrap();
        // 1 mA into 1 kΩ ⇒ +1 V.
        assert!((sol[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn companion_caps_stamp_like_conductances() {
        let mut c = Circuit::new();
        let a_node = c.node("a");
        c.add_resistor("r1", a_node, Circuit::GROUND, 1000.0);
        let mna = Mna::new(&c);
        let caps = [CompanionCap {
            a: Some(0),
            b: None,
            geq: 1e-3,
            ieq: 2e-3,
        }];
        let mut a = DenseMatrix::zeros(1);
        let mut b = vec![0.0];
        let ctx = StampCtx {
            time: 0.0,
            source_scale: 1.0,
            gmin: 0.0,
            temp_k: 300.15,
            reactive: Some(&caps),
        };
        mna.assemble(&[0.0], &mut a, &mut b, &ctx);
        assert!((a.get(0, 0) - 2e-3).abs() < 1e-15); // r + geq
        assert!((b[0] - 2e-3).abs() < 1e-15);
    }

    #[test]
    fn source_scale_scales_sources_only() {
        let mut c = Circuit::new();
        let a_node = c.node("a");
        c.add_vsource("v1", a_node, Circuit::GROUND, SourceWaveform::Dc(2.0));
        c.add_resistor("r1", a_node, Circuit::GROUND, 100.0);
        let mna = Mna::new(&c);
        let mut a = DenseMatrix::zeros(2);
        let mut b = vec![0.0; 2];
        let ctx = StampCtx {
            time: 0.0,
            source_scale: 0.25,
            gmin: 0.0,
            temp_k: 300.15,
            reactive: None,
        };
        mna.assemble(&[0.0, 0.0], &mut a, &mut b, &ctx);
        assert_eq!(b[1], 0.5);
    }
}
