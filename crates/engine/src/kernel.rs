//! The symbolic-reuse Newton kernel.
//!
//! The legacy hot path rebuilds its linear system from scratch on every
//! Newton iteration: a fresh `TripletMatrix` (or zeroed `DenseMatrix`),
//! a sort-and-dedup compression to CSC, and a full LU factorization
//! with pivot search. For a fixed circuit all of that structure is
//! invariant — only the *values* change between iterations. This module
//! hoists the invariant work to construction time:
//!
//! * **Symbolic phase (once per circuit):** one probe assembly records
//!   the stamp sequence; [`TripletMatrix::compile`] turns it into a
//!   frozen CSC pattern plus a stamp-pointer map. Every subsequent
//!   assembly is a branch-light scatter `values[map[cursor]] += v` —
//!   no sort, no dedup, no allocation.
//! * **Numeric-only refactorization:** the pivot order found by the
//!   first full factorization is replayed by [`SparseLu::refactorize`];
//!   a pivot-health check falls back to a full re-pivoting
//!   factorization when values drift. Dense circuits reuse the `n²`
//!   factor storage through [`DenseMatrix::factorize_into`].
//! * **Reusable workspaces:** the iterate, right-hand side, solution
//!   and delta vectors live in the kernel, so steady-state transient
//!   stepping performs no per-iteration allocation.
//! * **Device bypass (SPICE3 style):** with a positive
//!   [`SimOptions::bypass_vtol`], each MOSFET's linearization is cached
//!   and replayed while its terminal voltages stay within tolerance —
//!   but a bypassed evaluation is never allowed to decide convergence:
//!   the kernel always confirms with one full-evaluation iteration.
//!
//! With bypass disabled (the default) the kernel performs arithmetic
//! identical to the legacy path, so results match to the last bit; the
//! equivalence suite in `tests/newton_kernel.rs` pins this.

use vls_device::{MosBias, MosCaps, MosCapsCache, MosGeometry, MosModel, MosStamp, MosStampCache};
use vls_fault::FaultSession;
use vls_num::{
    weighted_converged, CscMatrix, DenseLu, DenseMatrix, SolverStats, SparseLu, TripletMatrix,
};

use crate::dc::NewtonFailure;
use crate::mna::{CompanionCap, MatrixSink, Mna, StampCtx};
use crate::SimOptions;

/// Scatter sink: replays a recorded stamp sequence into the frozen CSC
/// value array through the stamp-pointer map. Positions are ignored —
/// the map already encodes them. Shared with the batched lockstep
/// kernel (`batch.rs`), which scatters one value array per lane.
pub(crate) struct PatternScatter<'a> {
    pub(crate) values: &'a mut [f64],
    pub(crate) map: &'a [usize],
    pub(crate) cursor: usize,
}

impl MatrixSink for PatternScatter<'_> {
    #[inline]
    fn stamp(&mut self, _row: usize, _col: usize, value: f64) {
        self.values[self.map[self.cursor]] += value;
        self.cursor += 1;
    }
}

/// The factorization backend chosen at construction time from
/// `SimOptions::sparse_threshold` (same rule as the legacy path).
// One instance lives per kernel (per circuit), never in a collection,
// so the variant size difference costs nothing.
#[allow(clippy::large_enum_variant)]
enum LinearPath {
    Dense {
        a: DenseMatrix,
        lu: DenseLu,
    },
    Sparse {
        pattern: CscMatrix,
        map: Vec<usize>,
        lu: Option<SparseLu>,
    },
}

/// A per-circuit Newton solver with one-time symbolic analysis,
/// reusable numeric workspaces, and optional device bypass. Build it
/// once per circuit (and per analysis kind — DC and transient stamp
/// different patterns) and call [`NewtonKernel::solve`] as many times
/// as needed; caches and factors persist across calls, which is where
/// the speedup on homotopy ladders and transient stepping comes from.
pub(crate) struct NewtonKernel<'m, 'c> {
    mna: &'m Mna<'c>,
    path: LinearPath,
    /// Right-hand side workspace.
    b: Vec<f64>,
    /// Newton iterate workspace; holds the solution after a successful
    /// solve.
    x: Vec<f64>,
    /// Linear-solve output workspace.
    x_new: Vec<f64>,
    /// Damped-update workspace for the convergence test.
    delta: Vec<f64>,
    /// Per-element MOSFET linearization caches (indexed by element).
    stamp_caches: Vec<MosStampCache>,
    /// Per-element Meyer capacitance caches (indexed by element).
    cap_caches: Vec<MosCapsCache>,
    stats: SolverStats,
}

impl<'m, 'c> NewtonKernel<'m, 'c> {
    /// Builds the kernel, running the symbolic phase when the circuit
    /// is above the sparse threshold. `reactive_probe` must carry the
    /// same companion-branch node pairs that later `solve` calls will
    /// stamp (values are irrelevant — stamp positions depend only on
    /// topology); pass `None` for DC.
    pub fn new(
        mna: &'m Mna<'c>,
        options: &SimOptions,
        reactive_probe: Option<&[CompanionCap]>,
    ) -> Self {
        let n = mna.n_unknowns;
        let path = if n > options.sparse_threshold {
            // Record the stamp sequence once. The dummy evaluator keeps
            // the probe free of model evaluations: positions and stamp
            // order are value-independent.
            let mut t = TripletMatrix::new(n);
            let mut b = vec![0.0; n];
            let x0 = vec![0.0; n];
            let probe_ctx = StampCtx {
                time: 0.0,
                source_scale: 0.0,
                gmin: options.gmin,
                temp_k: options.temperature.as_kelvin(),
                reactive: reactive_probe,
            };
            mna.assemble_with_eval(&x0, &mut t, &mut b, &probe_ctx, &mut |_, _, _, _| {
                MosStamp::default()
            });
            let (pattern, map) = t.compile();
            LinearPath::Sparse {
                pattern,
                map,
                lu: None,
            }
        } else {
            LinearPath::Dense {
                a: DenseMatrix::zeros(n),
                lu: DenseLu::empty(),
            }
        };
        let n_elems = mna.element_count();
        Self {
            mna,
            path,
            b: vec![0.0; n],
            x: Vec::with_capacity(n),
            x_new: vec![0.0; n],
            delta: vec![0.0; n],
            stamp_caches: vec![MosStampCache::new(); n_elems],
            cap_caches: vec![MosCapsCache::new(); n_elems],
            stats: SolverStats::default(),
        }
    }

    /// The counters accumulated since construction.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Meyer capacitance evaluation through the bypass cache (the
    /// transient loop's analogue of device bypass). `bypass_tol ≤ 0`
    /// always evaluates.
    pub fn eval_caps(
        &mut self,
        elem_idx: usize,
        model: &MosModel,
        geom: &MosGeometry,
        bias: MosBias,
        temp_k: f64,
        bypass_tol: f64,
    ) -> MosCaps {
        if let Some(c) = self.cap_caches[elem_idx].lookup(&bias, bypass_tol) {
            self.stats.cap_bypasses += 1;
            return c;
        }
        let c = model.caps(geom, bias.vg, bias.vd, bias.vs, bias.vb, temp_k);
        if bypass_tol > 0.0 {
            self.cap_caches[elem_idx].store(bias, c);
        }
        self.stats.cap_evals += 1;
        c
    }

    /// One Newton solve from `x0` under `ctx`: damping, convergence and
    /// failure semantics identical to the legacy `newton_solve`.
    /// Returns the converged unknown vector and the iterations spent.
    pub fn solve(
        &mut self,
        x0: &[f64],
        ctx: &StampCtx<'_>,
        options: &SimOptions,
        faults: &mut FaultSession,
    ) -> Result<(Vec<f64>, usize), NewtonFailure> {
        let iters = self.solve_in_place(x0, ctx, options, faults)?;
        Ok((self.x.clone(), iters))
    }

    /// [`NewtonKernel::solve`] leaving the solution in the internal
    /// workspace (read it with [`NewtonKernel::solution`]) — no
    /// allocation at all.
    pub fn solve_in_place(
        &mut self,
        x0: &[f64],
        ctx: &StampCtx<'_>,
        options: &SimOptions,
        faults: &mut FaultSession,
    ) -> Result<usize, NewtonFailure> {
        let n = self.mna.n_unknowns;
        let nvu = self.mna.node_unknowns();
        debug_assert_eq!(x0.len(), n);
        self.x.clear();
        self.x.extend_from_slice(x0);
        let bypass_tol = options.bypass_vtol.max(0.0);
        let mut allow_bypass = bypass_tol > 0.0;
        if bypass_tol > 0.0 && faults.fire_bypass() {
            // Plant a garbage linearization (an all-zero stamp tagged at
            // the zero bias) in every device cache, armed to hit once
            // regardless of how far the solver is from that bias. The
            // confirm-iteration rule below is what must absorb it.
            for cache in &mut self.stamp_caches {
                cache.poison(MosBias::default(), MosStamp::default());
            }
        }

        for iter in 1..=options.max_newton_iters {
            self.stats.newton_iters += 1;
            let Self {
                mna,
                path,
                b,
                x,
                x_new,
                stamp_caches,
                stats,
                ..
            } = self;
            b.fill(0.0);
            let mut bypassed = false;
            let temp_k = ctx.temp_k;
            let mut eval =
                |elem_idx: usize, model: &MosModel, geom: &MosGeometry, bias: MosBias| {
                    if allow_bypass {
                        if let Some(s) = stamp_caches[elem_idx].lookup(&bias, bypass_tol) {
                            stats.device_bypasses += 1;
                            bypassed = true;
                            return s;
                        }
                    }
                    let op = model.op(geom, bias.vg, bias.vd, bias.vs, bias.vb, temp_k);
                    let s = MosStamp::from_op(&op, &bias);
                    if bypass_tol > 0.0 {
                        stamp_caches[elem_idx].store(bias, s);
                    }
                    stats.device_evals += 1;
                    s
                };
            match path {
                LinearPath::Dense { a, lu } => {
                    a.clear();
                    mna.assemble_with_eval(x, a, b, ctx, &mut eval);
                    // Ends the closure's borrow of `stats`.
                    #[allow(clippy::drop_non_drop)]
                    drop(eval);
                    if a.factorize_into(lu).is_err() {
                        return Err(NewtonFailure::Singular);
                    }
                    stats.full_factorizations += 1;
                    lu.solve_into(b, x_new);
                }
                LinearPath::Sparse { pattern, map, lu } => {
                    pattern.reset_values();
                    {
                        let mut sink = PatternScatter {
                            values: pattern.values_mut(),
                            map,
                            cursor: 0,
                        };
                        mna.assemble_with_eval(x, &mut sink, b, ctx, &mut eval);
                        // Pattern-drift tripwire: the stamp sequence must
                        // replay the recorded one stamp for stamp.
                        assert_eq!(
                            sink.cursor,
                            map.len(),
                            "assembly stamped a different sequence than the symbolic phase"
                        );
                    }
                    // Ends the closure's borrow of `stats`.
                    #[allow(clippy::drop_non_drop)]
                    drop(eval);
                    let tol = options.sparse_pivot_tol;
                    let factor_ok = match lu {
                        Some(f) => {
                            if faults.fire_pivot() {
                                // Injected drift: the next refactorize
                                // reports a pivot-health failure, driving
                                // the fallback arm below.
                                f.degrade_pivot_health();
                            }
                            match f.refactorize(pattern, tol) {
                                Ok(()) => {
                                    stats.refactorizations += 1;
                                    true
                                }
                                Err(_) => {
                                    // Pivot health degraded: full re-pivoting
                                    // factorization.
                                    stats.refactor_fallbacks += 1;
                                    match SparseLu::factorize_with_tolerance(pattern, tol) {
                                        Ok(nf) => {
                                            stats.full_factorizations += 1;
                                            *f = nf;
                                            true
                                        }
                                        Err(_) => false,
                                    }
                                }
                            }
                        }
                        None => match SparseLu::factorize_with_tolerance(pattern, tol) {
                            Ok(nf) => {
                                stats.full_factorizations += 1;
                                *lu = Some(nf);
                                true
                            }
                            Err(_) => false,
                        },
                    };
                    if !factor_ok {
                        return Err(NewtonFailure::Singular);
                    }
                    let f = lu.as_ref().expect("factorized above");
                    if f.solve_into(b, x_new).is_err() {
                        return Err(NewtonFailure::Singular);
                    }
                }
            }
            stats.linear_solves += 1;

            // Damped update: clamp voltage moves to tame the exponential
            // device characteristics (identical to the legacy path).
            let delta = &mut self.delta;
            let x = &mut self.x;
            let x_new = &self.x_new;
            let mut clamped = false;
            for i in 0..n {
                let mut d = x_new[i] - x[i];
                if !d.is_finite() {
                    return Err(NewtonFailure::Singular);
                }
                if i < nvu && d.abs() > options.max_voltage_step {
                    d = d.signum() * options.max_voltage_step;
                    clamped = true;
                }
                delta[i] = d;
                x[i] += d;
            }
            if clamped {
                allow_bypass = bypass_tol > 0.0;
                continue;
            }
            let (dv, di) = delta.split_at(nvu);
            let (xv, xi) = x.split_at(nvu);
            if weighted_converged(dv, xv, options.vabstol, options.reltol)
                && weighted_converged(di, xi, options.iabstol, options.reltol)
            {
                if bypassed {
                    // A bypassed evaluation must never decide
                    // convergence: confirm with one full-evaluation
                    // iteration before accepting.
                    allow_bypass = false;
                    continue;
                }
                return Ok(iter);
            }
            allow_bypass = bypass_tol > 0.0;
        }
        Err(NewtonFailure::NoConvergence)
    }
}
