//! The symbolic-reuse Newton kernel.
//!
//! The legacy hot path rebuilds its linear system from scratch on every
//! Newton iteration: a fresh `TripletMatrix` (or zeroed `DenseMatrix`),
//! a sort-and-dedup compression to CSC, and a full LU factorization
//! with pivot search. For a fixed circuit all of that structure is
//! invariant — only the *values* change between iterations. This module
//! hoists the invariant work to construction time:
//!
//! * **Symbolic phase (once per circuit):** one probe assembly records
//!   the stamp sequence; [`TripletMatrix::compile`] turns it into a
//!   frozen CSC pattern plus a stamp-pointer map. Every subsequent
//!   assembly is a branch-light scatter `values[map[cursor]] += v` —
//!   no sort, no dedup, no allocation.
//! * **Numeric-only refactorization:** the pivot order found by the
//!   first full factorization is replayed by [`SparseLu::refactorize`];
//!   a pivot-health check falls back to a full re-pivoting
//!   factorization when values drift. Dense circuits reuse the `n²`
//!   factor storage through [`DenseMatrix::factorize_into`].
//! * **Reusable workspaces:** the iterate, right-hand side, solution
//!   and delta vectors live in the kernel, so steady-state transient
//!   stepping performs no per-iteration allocation.
//! * **Device bypass (SPICE3 style):** with a positive
//!   [`SimOptions::bypass_vtol`], each MOSFET's linearization is cached
//!   and replayed while its terminal voltages stay within tolerance —
//!   but a bypassed evaluation is never allowed to decide convergence:
//!   the kernel always confirms with one full-evaluation iteration.
//!
//! With bypass disabled (the default) the kernel performs arithmetic
//! identical to the legacy path, so results match to the last bit; the
//! equivalence suite in `tests/newton_kernel.rs` pins this.

use vls_device::{MosBias, MosCaps, MosCapsCache, MosGeometry, MosModel, MosStamp, MosStampCache};
use vls_fault::FaultSession;
use vls_num::{
    invert_permutation, is_identity, weighted_converged, CscMatrix, DenseLu, DenseMatrix,
    IslandFactor, IslandOutcome, IslandPartition, NumError, SchurStructure, SolverStats, SparseLu,
    TripletMatrix,
};
use vls_runner::{run_indexed_mut, RunnerOptions};

use crate::dc::{singular_failure, NewtonFailure};
use crate::mna::{CompanionCap, MatrixSink, Mna, StampCtx};
use crate::options::SolverStructure;
use crate::SimOptions;

/// Scatter sink: replays a recorded stamp sequence into the frozen CSC
/// value array through the stamp-pointer map. Positions are ignored —
/// the map already encodes them. Shared with the batched lockstep
/// kernel (`batch.rs`), which scatters one value array per lane.
pub(crate) struct PatternScatter<'a> {
    pub(crate) values: &'a mut [f64],
    pub(crate) map: &'a [usize],
    pub(crate) cursor: usize,
}

impl MatrixSink for PatternScatter<'_> {
    #[inline]
    fn stamp(&mut self, _row: usize, _col: usize, value: f64) {
        self.values[self.map[self.cursor]] += value;
        self.cursor += 1;
    }
}

/// Shared factor step for the `Sparse` and `Ordered` paths: numeric
/// replay on the frozen pivot sequence, falling back to a full
/// re-pivoting factorization when pivot health degrades. The pivot
/// fault hook only arms on an existing factorization — the first
/// (full) factorization has no pivot sequence to drift.
fn factor_sparse(
    lu: &mut Option<SparseLu>,
    pattern: &CscMatrix,
    tol: f64,
    faults: &mut FaultSession,
    stats: &mut SolverStats,
) -> Result<(), NumError> {
    match lu {
        Some(f) => {
            if faults.fire_pivot() {
                // Injected drift: the next refactorize reports a
                // pivot-health failure, driving the fallback arm below.
                f.degrade_pivot_health();
            }
            match f.refactorize(pattern, tol) {
                Ok(()) => {
                    stats.refactorizations += 1;
                    Ok(())
                }
                Err(_) => {
                    // Pivot health degraded: full re-pivoting
                    // factorization.
                    stats.refactor_fallbacks += 1;
                    let nf = SparseLu::factorize_with_tolerance(pattern, tol)?;
                    stats.full_factorizations += 1;
                    *f = nf;
                    Ok(())
                }
            }
        }
        None => {
            let nf = SparseLu::factorize_with_tolerance(pattern, tol)?;
            stats.full_factorizations += 1;
            *lu = Some(nf);
            Ok(())
        }
    }
}

/// The factorization backend chosen at construction time from
/// `SimOptions::sparse_threshold` (same rule as the legacy path) and,
/// above it, `SimOptions::structure`.
// One instance lives per kernel (per circuit), never in a collection,
// so the variant size difference costs nothing.
#[allow(clippy::large_enum_variant)]
enum LinearPath {
    Dense {
        a: DenseMatrix,
        lu: DenseLu,
    },
    /// Natural MNA order — bit-identical to the pre-structuring solver.
    Sparse {
        pattern: CscMatrix,
        map: Vec<usize>,
        lu: Option<SparseLu>,
    },
    /// Minimum-degree permuted order (`SolverStructure::Ordered`). The
    /// stamp map scatters straight into permuted slots, so per
    /// iteration only the right-hand side is permuted in and the
    /// solution permuted out. An identity permutation never reaches
    /// this variant — construction falls back to `Sparse`, which is
    /// then provably bit-identical.
    Ordered {
        pattern: CscMatrix,
        map: Vec<usize>,
        /// `perm[new] = old`.
        perm: Vec<usize>,
        /// `new_of[old] = new`.
        new_of: Vec<usize>,
        lu: Option<SparseLu>,
        /// Permuted right-hand-side workspace.
        pb: Vec<f64>,
        /// Permuted solution workspace.
        px: Vec<f64>,
    },
    /// Island-partitioned Schur solve (`SolverStructure::Islands`):
    /// the pattern is compiled in block order `[island 0 …, boundary]`,
    /// islands factorize independently (fanned over `jobs` workers, all
    /// reductions in island index order → bitwise worker-count
    /// independence), coupled through a dense boundary complement.
    Islands {
        structure: SchurStructure,
        factors: Vec<IslandFactor>,
        boundary_lu: Option<DenseLu>,
        pattern: CscMatrix,
        map: Vec<usize>,
        pb: Vec<f64>,
        px: Vec<f64>,
        jobs: RunnerOptions,
    },
}

/// A per-circuit Newton solver with one-time symbolic analysis,
/// reusable numeric workspaces, and optional device bypass. Build it
/// once per circuit (and per analysis kind — DC and transient stamp
/// different patterns) and call [`NewtonKernel::solve`] as many times
/// as needed; caches and factors persist across calls, which is where
/// the speedup on homotopy ladders and transient stepping comes from.
pub(crate) struct NewtonKernel<'m, 'c> {
    mna: &'m Mna<'c>,
    path: LinearPath,
    /// Right-hand side workspace.
    b: Vec<f64>,
    /// Newton iterate workspace; holds the solution after a successful
    /// solve.
    x: Vec<f64>,
    /// Linear-solve output workspace.
    x_new: Vec<f64>,
    /// Damped-update workspace for the convergence test.
    delta: Vec<f64>,
    /// Per-element MOSFET linearization caches (indexed by element).
    stamp_caches: Vec<MosStampCache>,
    /// Per-element Meyer capacitance caches (indexed by element).
    cap_caches: Vec<MosCapsCache>,
    stats: SolverStats,
}

impl<'m, 'c> NewtonKernel<'m, 'c> {
    /// Builds the kernel, running the symbolic phase when the circuit
    /// is above the sparse threshold. `reactive_probe` must carry the
    /// same companion-branch node pairs that later `solve` calls will
    /// stamp (values are irrelevant — stamp positions depend only on
    /// topology); pass `None` for DC.
    pub fn new(
        mna: &'m Mna<'c>,
        options: &SimOptions,
        reactive_probe: Option<&[CompanionCap]>,
    ) -> Self {
        let n = mna.n_unknowns;
        let path = if n > options.sparse_threshold {
            // Record the stamp sequence once. The dummy evaluator keeps
            // the probe free of model evaluations: positions and stamp
            // order are value-independent.
            let mut t = TripletMatrix::new(n);
            let mut b = vec![0.0; n];
            let x0 = vec![0.0; n];
            let probe_ctx = StampCtx {
                time: 0.0,
                source_scale: 0.0,
                gmin: options.gmin,
                temp_k: options.temperature.as_kelvin(),
                reactive: reactive_probe,
            };
            mna.assemble_with_eval(&x0, &mut t, &mut b, &probe_ctx, &mut |_, _, _, _| {
                MosStamp::default()
            });
            match options.structure {
                SolverStructure::Natural => {
                    let (pattern, map) = t.compile();
                    LinearPath::Sparse {
                        pattern,
                        map,
                        lu: None,
                    }
                }
                SolverStructure::Ordered => {
                    let (pattern, map, perm) = t.compile_ordered();
                    if is_identity(&perm) {
                        // Identity ordering is the natural factorization;
                        // take the Natural path so "ordered" is only ever
                        // a genuinely permuted system.
                        LinearPath::Sparse {
                            pattern,
                            map,
                            lu: None,
                        }
                    } else {
                        let new_of = invert_permutation(&perm);
                        LinearPath::Ordered {
                            pattern,
                            map,
                            perm,
                            new_of,
                            lu: None,
                            pb: vec![0.0; n],
                            px: vec![0.0; n],
                        }
                    }
                }
                SolverStructure::Islands => {
                    let (natural, _) = t.compile();
                    let part = IslandPartition::tear(&natural, &mna.boundary_unknowns());
                    let (pattern, map) = t.compile_permuted(part.new_of());
                    let structure = SchurStructure::new(&pattern, part);
                    let factors = structure.new_factors();
                    LinearPath::Islands {
                        structure,
                        factors,
                        boundary_lu: None,
                        pattern,
                        map,
                        pb: vec![0.0; n],
                        px: vec![0.0; n],
                        jobs: options
                            .solver_jobs
                            .map(RunnerOptions::with_jobs)
                            .unwrap_or_default(),
                    }
                }
            }
        } else {
            LinearPath::Dense {
                a: DenseMatrix::zeros(n),
                lu: DenseLu::empty(),
            }
        };
        let n_elems = mna.element_count();
        Self {
            mna,
            path,
            b: vec![0.0; n],
            x: Vec::with_capacity(n),
            x_new: vec![0.0; n],
            delta: vec![0.0; n],
            stamp_caches: vec![MosStampCache::new(); n_elems],
            cap_caches: vec![MosCapsCache::new(); n_elems],
            stats: SolverStats::default(),
        }
    }

    /// The counters accumulated since construction.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Meyer capacitance evaluation through the bypass cache (the
    /// transient loop's analogue of device bypass). `bypass_tol ≤ 0`
    /// always evaluates.
    pub fn eval_caps(
        &mut self,
        elem_idx: usize,
        model: &MosModel,
        geom: &MosGeometry,
        bias: MosBias,
        temp_k: f64,
        bypass_tol: f64,
    ) -> MosCaps {
        if let Some(c) = self.cap_caches[elem_idx].lookup(&bias, bypass_tol) {
            self.stats.cap_bypasses += 1;
            return c;
        }
        let c = model.caps(geom, bias.vg, bias.vd, bias.vs, bias.vb, temp_k);
        if bypass_tol > 0.0 {
            self.cap_caches[elem_idx].store(bias, c);
        }
        self.stats.cap_evals += 1;
        c
    }

    /// One Newton solve from `x0` under `ctx`: damping, convergence and
    /// failure semantics identical to the legacy `newton_solve`.
    /// Returns the converged unknown vector and the iterations spent.
    pub fn solve(
        &mut self,
        x0: &[f64],
        ctx: &StampCtx<'_>,
        options: &SimOptions,
        faults: &mut FaultSession,
    ) -> Result<(Vec<f64>, usize), NewtonFailure> {
        let iters = self.solve_in_place(x0, ctx, options, faults)?;
        Ok((self.x.clone(), iters))
    }

    /// [`NewtonKernel::solve`] leaving the solution in the internal
    /// workspace (read it with [`NewtonKernel::solution`]) — no
    /// allocation at all.
    pub fn solve_in_place(
        &mut self,
        x0: &[f64],
        ctx: &StampCtx<'_>,
        options: &SimOptions,
        faults: &mut FaultSession,
    ) -> Result<usize, NewtonFailure> {
        let n = self.mna.n_unknowns;
        let nvu = self.mna.node_unknowns();
        debug_assert_eq!(x0.len(), n);
        self.x.clear();
        self.x.extend_from_slice(x0);
        let bypass_tol = options.bypass_vtol.max(0.0);
        let mut allow_bypass = bypass_tol > 0.0;
        if bypass_tol > 0.0 && faults.fire_bypass() {
            // Plant a garbage linearization (an all-zero stamp tagged at
            // the zero bias) in every device cache, armed to hit once
            // regardless of how far the solver is from that bias. The
            // confirm-iteration rule below is what must absorb it.
            for cache in &mut self.stamp_caches {
                cache.poison(MosBias::default(), MosStamp::default());
            }
        }

        for iter in 1..=options.max_newton_iters {
            self.stats.newton_iters += 1;
            let Self {
                mna,
                path,
                b,
                x,
                x_new,
                stamp_caches,
                stats,
                ..
            } = self;
            b.fill(0.0);
            let mut bypassed = false;
            let temp_k = ctx.temp_k;
            let mut eval =
                |elem_idx: usize, model: &MosModel, geom: &MosGeometry, bias: MosBias| {
                    if allow_bypass {
                        if let Some(s) = stamp_caches[elem_idx].lookup(&bias, bypass_tol) {
                            stats.device_bypasses += 1;
                            bypassed = true;
                            return s;
                        }
                    }
                    let op = model.op(geom, bias.vg, bias.vd, bias.vs, bias.vb, temp_k);
                    let s = MosStamp::from_op(&op, &bias);
                    if bypass_tol > 0.0 {
                        stamp_caches[elem_idx].store(bias, s);
                    }
                    stats.device_evals += 1;
                    s
                };
            match path {
                LinearPath::Dense { a, lu } => {
                    a.clear();
                    mna.assemble_with_eval(x, a, b, ctx, &mut eval);
                    // Ends the closure's borrow of `stats`.
                    #[allow(clippy::drop_non_drop)]
                    drop(eval);
                    if let Err(e) = a.factorize_into(lu) {
                        return Err(singular_failure(mna, None, &e));
                    }
                    stats.full_factorizations += 1;
                    lu.solve_into(b, x_new);
                }
                LinearPath::Sparse { pattern, map, lu } => {
                    pattern.reset_values();
                    {
                        let mut sink = PatternScatter {
                            values: pattern.values_mut(),
                            map,
                            cursor: 0,
                        };
                        mna.assemble_with_eval(x, &mut sink, b, ctx, &mut eval);
                        // Pattern-drift tripwire: the stamp sequence must
                        // replay the recorded one stamp for stamp.
                        assert_eq!(
                            sink.cursor,
                            map.len(),
                            "assembly stamped a different sequence than the symbolic phase"
                        );
                    }
                    // Ends the closure's borrow of `stats`.
                    #[allow(clippy::drop_non_drop)]
                    drop(eval);
                    if let Err(e) =
                        factor_sparse(lu, pattern, options.sparse_pivot_tol, faults, stats)
                    {
                        return Err(singular_failure(mna, None, &e));
                    }
                    let f = lu.as_ref().expect("factorized above");
                    if f.solve_into(b, x_new).is_err() {
                        return Err(NewtonFailure::Singular(None));
                    }
                }
                LinearPath::Ordered {
                    pattern,
                    map,
                    perm,
                    new_of,
                    lu,
                    pb,
                    px,
                } => {
                    pattern.reset_values();
                    {
                        let mut sink = PatternScatter {
                            values: pattern.values_mut(),
                            map,
                            cursor: 0,
                        };
                        mna.assemble_with_eval(x, &mut sink, b, ctx, &mut eval);
                        assert_eq!(
                            sink.cursor,
                            map.len(),
                            "assembly stamped a different sequence than the symbolic phase"
                        );
                    }
                    // Ends the closure's borrow of `stats`.
                    #[allow(clippy::drop_non_drop)]
                    drop(eval);
                    if let Err(e) =
                        factor_sparse(lu, pattern, options.sparse_pivot_tol, faults, stats)
                    {
                        return Err(singular_failure(mna, Some(perm), &e));
                    }
                    // Permute the natural-order RHS into elimination
                    // order, solve, and permute the solution back.
                    for (old, &bv) in b.iter().enumerate() {
                        pb[new_of[old]] = bv;
                    }
                    let f = lu.as_ref().expect("factorized above");
                    if f.solve_into(pb, px).is_err() {
                        return Err(NewtonFailure::Singular(None));
                    }
                    for (old, xo) in x_new.iter_mut().enumerate() {
                        *xo = px[new_of[old]];
                    }
                }
                LinearPath::Islands {
                    structure,
                    factors,
                    boundary_lu,
                    pattern,
                    map,
                    pb,
                    px,
                    jobs,
                } => {
                    pattern.reset_values();
                    {
                        let mut sink = PatternScatter {
                            values: pattern.values_mut(),
                            map,
                            cursor: 0,
                        };
                        mna.assemble_with_eval(x, &mut sink, b, ctx, &mut eval);
                        assert_eq!(
                            sink.cursor,
                            map.len(),
                            "assembly stamped a different sequence than the symbolic phase"
                        );
                    }
                    // Ends the closure's borrow of `stats`.
                    #[allow(clippy::drop_non_drop)]
                    drop(eval);
                    let tol = options.sparse_pivot_tol;
                    if boundary_lu.is_some() && faults.fire_pivot() {
                        // Injected drift on the partitioned path: island
                        // 0's next numeric replay reports a pivot-health
                        // failure and takes the full re-pivot fallback.
                        if let Some(f0) = factors.first_mut() {
                            f0.degrade_pivot_health();
                        }
                    }
                    // Per-island factorization fans across the workers;
                    // results come back in island index order, so the
                    // counter accumulation and first-error choice below
                    // are schedule-independent.
                    let values: &[f64] = pattern.values();
                    let outcomes = run_indexed_mut(factors, jobs, |i, f| {
                        structure.factor_island(values, i, f, tol)
                    });
                    let mut first_err: Option<NumError> = None;
                    for outcome in outcomes {
                        match outcome {
                            Ok(IslandOutcome::Full) => stats.full_factorizations += 1,
                            Ok(IslandOutcome::Refactorized) => stats.refactorizations += 1,
                            Ok(IslandOutcome::Fallback) => {
                                stats.refactor_fallbacks += 1;
                                stats.full_factorizations += 1;
                            }
                            Err(e) => {
                                if first_err.is_none() {
                                    first_err = Some(e);
                                }
                            }
                        }
                    }
                    if let Some(e) = first_err {
                        return Err(singular_failure(
                            mna,
                            Some(structure.partition().permutation()),
                            &e,
                        ));
                    }
                    match structure.reduce(values, factors) {
                        Ok(f) => *boundary_lu = Some(f),
                        Err(e) => {
                            return Err(singular_failure(
                                mna,
                                Some(structure.partition().permutation()),
                                &e,
                            ))
                        }
                    }
                    let new_of = structure.partition().new_of();
                    for (old, &bv) in b.iter().enumerate() {
                        pb[new_of[old]] = bv;
                    }
                    if structure
                        .solve(
                            values,
                            factors,
                            boundary_lu.as_ref().expect("reduced above"),
                            pb,
                            px,
                        )
                        .is_err()
                    {
                        return Err(NewtonFailure::Singular(None));
                    }
                    for (old, xo) in x_new.iter_mut().enumerate() {
                        *xo = px[new_of[old]];
                    }
                }
            }
            stats.linear_solves += 1;

            // Damped update: clamp voltage moves to tame the exponential
            // device characteristics (identical to the legacy path).
            let delta = &mut self.delta;
            let x = &mut self.x;
            let x_new = &self.x_new;
            let mut clamped = false;
            for i in 0..n {
                let mut d = x_new[i] - x[i];
                if !d.is_finite() {
                    return Err(NewtonFailure::Singular(None));
                }
                if i < nvu && d.abs() > options.max_voltage_step {
                    d = d.signum() * options.max_voltage_step;
                    clamped = true;
                }
                delta[i] = d;
                x[i] += d;
            }
            if clamped {
                allow_bypass = bypass_tol > 0.0;
                continue;
            }
            let (dv, di) = delta.split_at(nvu);
            let (xv, xi) = x.split_at(nvu);
            if weighted_converged(dv, xv, options.vabstol, options.reltol)
                && weighted_converged(di, xi, options.iabstol, options.reltol)
            {
                if bypassed {
                    // A bypassed evaluation must never decide
                    // convergence: confirm with one full-evaluation
                    // iteration before accepting.
                    allow_bypass = false;
                    continue;
                }
                return Ok(iter);
            }
            allow_bypass = bypass_tol > 0.0;
        }
        Err(NewtonFailure::NoConvergence)
    }
}

/// Structural summary of how [`SolverStructure::Islands`] would tear a
/// circuit's DC pattern: the boundary block the Schur complement
/// couples, and the independent interior islands. Computed from
/// topology alone — no solve is run. Benches and golden tests use this
/// to pin partition shapes (e.g. a rail-shorted floorplan collapsing
/// to one island) without reaching into the kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IslandReport {
    /// Total MNA unknowns (nodes minus ground, plus branch currents).
    pub unknowns: usize,
    /// Independent interior islands after tearing the boundary.
    pub islands: usize,
    /// Torn unknowns coupled through the dense Schur block.
    pub boundary: usize,
    /// Unknown count of the largest island — the serial depth of the
    /// parallel factorization phase.
    pub largest_island: usize,
}

/// Tears `circuit`'s DC pattern the way the islands solver would and
/// reports the partition shape. Uses the same symbolic probe as the
/// kernel, so the report matches what a DC solve with
/// [`SolverStructure::Islands`] actually builds.
pub fn island_report(circuit: &vls_netlist::Circuit, options: &SimOptions) -> IslandReport {
    let mna = Mna::new(circuit);
    let n = mna.n_unknowns;
    let mut t = TripletMatrix::new(n);
    let mut b = vec![0.0; n];
    let x0 = vec![0.0; n];
    let probe_ctx = StampCtx {
        time: 0.0,
        source_scale: 0.0,
        gmin: options.gmin,
        temp_k: options.temperature.as_kelvin(),
        reactive: None,
    };
    mna.assemble_with_eval(&x0, &mut t, &mut b, &probe_ctx, &mut |_, _, _, _| {
        MosStamp::default()
    });
    let (pattern, _) = t.compile();
    let part = IslandPartition::tear(&pattern, &mna.boundary_unknowns());
    IslandReport {
        unknowns: n,
        islands: part.island_count(),
        boundary: part.boundary_len(),
        largest_island: part.largest_island(),
    }
}
