//! Lane-batched lockstep transient for Monte Carlo ensembles.
//!
//! Every MC trial of one circuit shares the element list, node
//! numbering, source waveforms and sparsity pattern — only the MOSFET
//! parameters differ (W, L, VT0 perturbations). This module exploits
//! that: K perturbed variants run *in lockstep* through one shared
//! compiled CSC pattern and scatter map, one SoA device evaluation per
//! MOSFET per Newton iteration ([`vls_device::MosLanes::eval_batch`],
//! analytic derivatives instead of central differences), and one
//! multi-lane LU ([`vls_num::MultiLu`]) whose healthy lanes share a
//! single frozen pivot order.
//!
//! Determinism contract:
//!
//! * **Shared adaptive grid.** Timestep control (LTE, breakpoints,
//!   Newton-failure retries) uses the *max-LTE lane*, so the accepted
//!   time grid is a pure function of the lane group — independent of
//!   worker count and of which shard the group lands on.
//! * **Lockstep Newton.** All lanes iterate until every lane passes its
//!   own convergence test in the same iteration; a lane that converges
//!   early keeps refining (harmless — it only gets closer) so the
//!   iteration count is group-deterministic.
//! * **Pivot divergence is never wrong.** A lane whose values trip the
//!   shared pivot-health check re-pivots privately inside [`MultiLu`];
//!   only an unsalvageable lane fails the whole batch, and the caller
//!   then de-batches to the scalar resilient path.
//!
//! Device bypass (`SimOptions::bypass_vtol`) is intentionally **not**
//! applied in batched mode: a bypass hit would have to hold across all
//! K lanes to skip the batched evaluation, which on perturbed ensembles
//! almost never happens; the win here comes from analytic derivatives
//! and the shared step loop instead. Fault semantics: the per-lane DC
//! initialization runs fault-free; the armed plan addresses the shared
//! lockstep loop (`pivot` degrades one lane of the multi-LU, `lte`
//! rejects a shared step), so counters stay exact and deterministic
//! under batching.

use vls_device::{MosBias, MosCaps, MosLanes, MosStamp};
use vls_fault::{FaultPlan, FaultSession};
use vls_netlist::{Circuit, Element};
use vls_num::{weighted_converged, CscMatrix, MultiLu, SolverStats, TripletMatrix};

use crate::dc::{solve_dc_at, NewtonFailure};
use crate::kernel::PatternScatter;
use crate::mna::{CompanionCap, Mna, StampCtx};
use crate::tran::TransientResult;
use crate::{EngineError, SimOptions};

/// Integration damping, identical to the scalar transient core.
const THETA: f64 = 0.55;

/// The result of one lane-batched transient: per-lane sampled waveforms
/// on the shared time grid, plus the batch's pooled work counters.
///
/// The per-lane [`TransientResult`]s carry zeroed solver stats — the
/// lockstep loop's work is not attributable to a single lane, so the
/// batch books it once in [`BatchTransient::stats`] (where
/// `device_evals` counts *lane*-evaluations, K per batched call, to
/// stay comparable with the scalar kernel's accounting).
#[derive(Debug)]
pub struct BatchTransient {
    /// One sampled result per lane, in input order.
    pub lanes: Vec<TransientResult>,
    /// Pooled counters: per-lane DC initialization plus the lockstep
    /// stepping loop.
    pub stats: SolverStats,
}

/// Shared structure of one dynamic (capacitive) branch; the per-lane
/// state (capacitance, voltage/current history) lives in [`LaneState`].
struct CapSlot {
    a: Option<usize>,
    b: Option<usize>,
    /// Fixed capacitance for explicit capacitors; Meyer slots hold 0.0
    /// here and are refreshed per lane every step.
    fixed_c: f64,
}

/// Per-MOSFET batched bookkeeping.
struct MosRef {
    elem_idx: usize,
    lanes: MosLanes,
    /// Dynamic-cap slots: gs, gd, gb, db, sb.
    slots: [usize; 5],
    gate: vls_netlist::NodeId,
    drain: vls_netlist::NodeId,
    source: vls_netlist::NodeId,
    bulk: vls_netlist::NodeId,
}

/// One lane's mutable stepping state.
struct LaneState {
    /// Last accepted solution.
    x: Vec<f64>,
    /// Per-slot capacitance for the current step.
    c: Vec<f64>,
    /// Per-slot branch voltage at the last accepted point.
    v_prev: Vec<f64>,
    /// Per-slot branch current at the last accepted point.
    i_prev: Vec<f64>,
    /// Sampled solutions, aligned with the shared time grid.
    samples: Vec<Vec<f64>>,
    /// Predictor history: solution before `x` (paired with the shared
    /// previous step size).
    x_prevprev: Vec<f64>,
}

/// Runs K structurally-identical circuits (the perturbed variants of
/// one MC trial group) through a single lockstep transient. All lanes
/// share the time grid, breakpoints, Newton iteration count and LU
/// pivot order; each lane gets its own waveforms.
///
/// # Errors
///
/// Propagates per-lane DC failures and reports
/// [`EngineError::StepUnderflow`]/[`EngineError::BudgetExhausted`] from
/// the shared stepping loop. Any error fails the whole batch — the
/// caller de-batches failing groups onto the scalar resilient path.
///
/// # Panics
///
/// Panics if `circuits` is empty, `tstop` is not positive and finite,
/// or the circuits are not structurally identical (element count, node
/// count, element names — perturbations may only change MOSFET
/// parameters).
pub fn run_transient_batched(
    circuits: &[Circuit],
    tstop: f64,
    options: &SimOptions,
) -> Result<BatchTransient, EngineError> {
    assert!(
        tstop > 0.0 && tstop.is_finite(),
        "tstop must be positive, got {tstop}"
    );
    assert!(!circuits.is_empty(), "batched transient needs >= 1 lane");
    let k_lanes = circuits.len();
    let base = &circuits[0];
    for c in &circuits[1..] {
        assert_eq!(
            c.elements().len(),
            base.elements().len(),
            "lanes must be structurally identical"
        );
        assert_eq!(
            c.node_count(),
            base.node_count(),
            "lanes must share the node set"
        );
        debug_assert!(
            c.elements()
                .iter()
                .zip(base.elements())
                .all(|(a, b)| a.name() == b.name()),
            "lanes must list the same elements in the same order"
        );
    }

    // --- per-lane DC initialization (fault-free: the armed plan
    // addresses the shared lockstep loop below) ----------------------
    let dc_options = SimOptions {
        fault: FaultPlan::none(),
        ..options.clone()
    };
    let mut stats = SolverStats::default();
    let mut initial: Vec<Vec<f64>> = Vec::with_capacity(k_lanes);
    for c in circuits {
        let dc = solve_dc_at(c, &dc_options, 0.0)?;
        stats.merge(&dc.solver_stats());
        initial.push(dc.unknowns().to_vec());
    }

    let mna = Mna::new(base);
    let n = mna.n_unknowns;
    let nvu = mna.node_unknowns();
    let temp_k = options.temperature.as_kelvin();

    // --- shared dynamic-branch structure + per-MOSFET lanes ----------
    let mut slots: Vec<CapSlot> = Vec::new();
    let mut mos_refs: Vec<MosRef> = Vec::new();
    for (elem_idx, e) in base.elements().iter().enumerate() {
        match e {
            Element::Capacitor {
                a, b, capacitor, ..
            } if capacitor.capacitance() > 0.0 => {
                slots.push(CapSlot {
                    a: mna.idx(*a),
                    b: mna.idx(*b),
                    fixed_c: capacitor.capacitance(),
                });
            }
            Element::Mosfet {
                drain,
                gate,
                source,
                bulk,
                ..
            } => {
                let (d, g, s, bk) = (
                    mna.idx(*drain),
                    mna.idx(*gate),
                    mna.idx(*source),
                    mna.idx(*bulk),
                );
                let pairs = [(g, s), (g, d), (g, bk), (d, bk), (s, bk)];
                let first = slots.len();
                for (na, nb) in pairs {
                    slots.push(CapSlot {
                        a: na,
                        b: nb,
                        fixed_c: 0.0,
                    });
                }
                // Gather this device's K perturbed variants into lanes.
                let mut models = Vec::with_capacity(k_lanes);
                let mut geoms = Vec::with_capacity(k_lanes);
                for c in circuits {
                    if let Element::Mosfet { model, geom, .. } = &c.elements()[elem_idx] {
                        models.push(model.clone());
                        geoms.push(*geom);
                    } else {
                        panic!("lane element {elem_idx} is not a MOSFET in every lane");
                    }
                }
                mos_refs.push(MosRef {
                    elem_idx,
                    lanes: MosLanes::new(models, geoms),
                    slots: [first, first + 1, first + 2, first + 3, first + 4],
                    gate: *gate,
                    drain: *drain,
                    source: *source,
                    bulk: *bulk,
                });
            }
            _ => {}
        }
    }
    // elem_idx -> batched MOSFET slot, for the assembly closure.
    let mut mos_slot: Vec<Option<usize>> = vec![None; base.elements().len()];
    for (mi, m) in mos_refs.iter().enumerate() {
        mos_slot[m.elem_idx] = Some(mi);
    }

    let volt_of = |x: &[f64], idx: Option<usize>| idx.map_or(0.0, |i| x[i]);
    let mut lanes_state: Vec<LaneState> = initial
        .into_iter()
        .map(|x| {
            let mut v_prev = vec![0.0; slots.len()];
            for (vp, slot) in v_prev.iter_mut().zip(&slots) {
                *vp = volt_of(&x, slot.a) - volt_of(&x, slot.b);
            }
            LaneState {
                samples: vec![x.clone()],
                c: slots.iter().map(|s| s.fixed_c).collect(),
                v_prev,
                i_prev: vec![0.0; slots.len()],
                x_prevprev: Vec::new(),
                x,
            }
        })
        .collect();

    // --- symbolic phase: one compiled pattern for all lanes ----------
    // Batched mode is sparse-only: the multi-lane LU is the whole point,
    // so `sparse_threshold` does not apply here.
    let (pattern, map) = {
        let mut t = TripletMatrix::new(n);
        let mut b = vec![0.0; n];
        let x0 = vec![0.0; n];
        let probe: Vec<CompanionCap> = slots
            .iter()
            .map(|s| CompanionCap {
                a: s.a,
                b: s.b,
                geq: 0.0,
                ieq: 0.0,
            })
            .collect();
        let probe_ctx = StampCtx {
            time: 0.0,
            source_scale: 0.0,
            gmin: options.gmin,
            temp_k,
            reactive: Some(&probe),
        };
        mna.assemble_with_eval(&x0, &mut t, &mut b, &probe_ctx, &mut |_, _, _, _| {
            MosStamp::default()
        });
        t.compile()
    };

    let nnz = pattern.nnz();
    let mut kernel = LockstepNewton {
        pattern,
        map,
        lane_vals: vec![vec![0.0; nnz]; k_lanes],
        b_all: vec![0.0; n * k_lanes],
        x_all: vec![0.0; n * k_lanes],
        x_new_all: vec![0.0; n * k_lanes],
        delta: vec![0.0; n],
        bias_buf: vec![MosBias::default(); k_lanes],
        stamp_buf: vec![MosStamp::default(); mos_refs.len() * k_lanes],
        caps_buf: vec![MosCaps::default(); k_lanes],
        multi: None,
        repivot: false,
        lanes: k_lanes,
    };

    // --- breakpoints (sources are lane-invariant) --------------------
    let mut breakpoints: Vec<f64> = Vec::new();
    for e in base.elements() {
        if let Element::VoltageSource { wave, .. } | Element::CurrentSource { wave, .. } = e {
            breakpoints.extend(wave.breakpoints(tstop));
        }
    }
    breakpoints.push(tstop);
    breakpoints.retain(|&t| t > 0.0);
    breakpoints.sort_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));
    breakpoints.dedup_by(|a, b| (*a - *b).abs() < 1e-18);

    // --- shared stepping ---------------------------------------------
    let mut faults = FaultSession::new(&options.fault);
    let mut step_attempts: u64 = 0;
    let max_step = options.max_step.unwrap_or(tstop / 50.0);
    let mut h = options.initial_step.min(max_step);
    let mut t = 0.0f64;
    let mut use_trap = false;
    let mut bp_iter = breakpoints.iter().copied().peekable();
    let mut times = vec![0.0];
    let mut have_history = false;
    let mut h_prev = 0.0f64;
    let mut companions: Vec<Vec<CompanionCap>> = vec![Vec::with_capacity(slots.len()); k_lanes];

    while t < tstop - 1e-21 {
        // Refresh Meyer capacitances at the last accepted solutions —
        // one batched evaluation per MOSFET.
        for m in &mos_refs {
            for (lane, state) in lanes_state.iter().enumerate() {
                kernel.bias_buf[lane] = MosBias::new(
                    mna.voltage(&state.x, m.gate),
                    mna.voltage(&state.x, m.drain),
                    mna.voltage(&state.x, m.source),
                    mna.voltage(&state.x, m.bulk),
                );
            }
            m.lanes
                .caps_batch(&kernel.bias_buf, temp_k, &mut kernel.caps_buf);
            stats.cap_evals += k_lanes as u64;
            for (lane, state) in lanes_state.iter_mut().enumerate() {
                let mc = &kernel.caps_buf[lane];
                let values = [mc.cgs, mc.cgd, mc.cgb, mc.cdb, mc.csb];
                for (slot, val) in m.slots.iter().zip(values) {
                    state.c[*slot] = val;
                }
            }
        }

        // Clamp the step to the next breakpoint (shared grid).
        let next_bp = loop {
            match bp_iter.peek() {
                Some(&bp) if bp <= t + 1e-21 => {
                    bp_iter.next();
                }
                Some(&bp) => break Some(bp),
                None => break None,
            }
        };
        let mut h_now = h.min(max_step).min(tstop - t);
        let mut lands_on_bp = false;
        if let Some(bp) = next_bp {
            if t + h_now >= bp - 1e-21 {
                h_now = bp - t;
                lands_on_bp = true;
            }
        }

        let accepted = loop {
            if h_now < options.min_step {
                return Err(EngineError::StepUnderflow { time: t });
            }
            step_attempts += 1;
            if let Some(budget) = options.step_budget {
                if step_attempts > budget {
                    return Err(EngineError::BudgetExhausted {
                        context: format!("batched transient stepping at t = {t:.3e} s"),
                        spent: step_attempts,
                        budget,
                    });
                }
            }
            let theta = if use_trap && h_now < 0.99 * max_step {
                THETA
            } else {
                1.0
            };
            for (lane, state) in lanes_state.iter().enumerate() {
                let comp = &mut companions[lane];
                comp.clear();
                for (si, slot) in slots.iter().enumerate() {
                    let c = state.c[si];
                    if c <= 0.0 {
                        comp.push(CompanionCap {
                            a: slot.a,
                            b: slot.b,
                            geq: 0.0,
                            ieq: 0.0,
                        });
                        continue;
                    }
                    let geq = c / (theta * h_now);
                    let ieq = geq * state.v_prev[si] + (1.0 - theta) / theta * state.i_prev[si];
                    comp.push(CompanionCap {
                        a: slot.a,
                        b: slot.b,
                        geq,
                        ieq,
                    });
                }
            }
            let solved = kernel.solve(
                &mna,
                &lanes_state,
                &mos_refs,
                &mos_slot,
                t + h_now,
                options,
                &companions,
                &mut faults,
                &mut stats,
            );
            match solved {
                Ok(()) => {
                    if faults.fire_lte() {
                        // Injected LTE rejection of the *shared* step.
                        h_now /= 4.0;
                        lands_on_bp = false;
                        continue;
                    }
                    // LTE over node unknowns, max across ALL lanes: the
                    // shared grid follows the worst lane, so the result
                    // never depends on how trials were packed.
                    let mut err_ratio = 0.0f64;
                    for (lane, state) in lanes_state.iter().enumerate() {
                        let x_new = &kernel.x_all[lane * n..(lane + 1) * n];
                        for (i, &xn) in x_new.iter().take(nvu).enumerate() {
                            let pred = if have_history && h_prev > 0.0 {
                                state.x[i] + (state.x[i] - state.x_prevprev[i]) * (h_now / h_prev)
                            } else {
                                state.x[i]
                            };
                            let tol = options.lte_tol + options.reltol * xn.abs();
                            err_ratio = err_ratio.max((xn - pred).abs() / tol);
                        }
                    }
                    if err_ratio > 16.0 && h_now > options.min_step * 64.0 {
                        h_now /= 4.0;
                        lands_on_bp = false;
                        continue;
                    }
                    break err_ratio;
                }
                Err(_) => {
                    h_now /= 8.0;
                    lands_on_bp = false;
                    use_trap = false;
                    continue;
                }
            }
        };
        let err_ratio = accepted;

        // Accept: per-lane dynamic state, history, samples.
        for (lane, state) in lanes_state.iter_mut().enumerate() {
            let x_new = &kernel.x_all[lane * n..(lane + 1) * n];
            for (si, comp) in companions[lane].iter().enumerate() {
                let v_new = volt_of(x_new, slots[si].a) - volt_of(x_new, slots[si].b);
                if state.c[si] > 0.0 {
                    state.i_prev[si] = comp.geq * v_new - comp.ieq;
                }
                state.v_prev[si] = v_new;
            }
            state.x_prevprev.clear();
            state.x_prevprev.extend_from_slice(&state.x);
            state.x.copy_from_slice(x_new);
            state.samples.push(state.x.clone());
        }
        have_history = true;
        h_prev = h_now;
        t += h_now;
        times.push(t);

        let grow = (1.0 / (err_ratio + 0.05)).sqrt().clamp(0.3, 2.0);
        h = (h_now * grow).min(max_step);
        if lands_on_bp {
            h = options.initial_step.min(max_step);
            use_trap = false;
            have_history = false;
        } else {
            use_trap = true;
        }
    }

    stats.injected_faults += faults.fired();
    let branch_names: Vec<String> = base
        .elements()
        .iter()
        .filter(|e| e.needs_branch_current())
        .map(|e| e.name().to_string())
        .collect();
    let lanes = lanes_state
        .into_iter()
        .map(|state| {
            TransientResult::from_parts(
                times.clone(),
                state.samples,
                nvu,
                branch_names.clone(),
                SolverStats::default(),
            )
        })
        .collect();
    Ok(BatchTransient { lanes, stats })
}

/// The lockstep Newton engine: shared pattern/scatter map, per-lane
/// value arrays, batched SoA device evaluation, multi-lane LU.
struct LockstepNewton {
    pattern: CscMatrix,
    map: Vec<usize>,
    /// Per-lane matrix values over the shared pattern.
    lane_vals: Vec<Vec<f64>>,
    /// Lane-contiguous right-hand sides (`lane * n ..`).
    b_all: Vec<f64>,
    /// Lane-contiguous Newton iterates; holds the converged solutions
    /// after a successful solve.
    x_all: Vec<f64>,
    /// Lane-contiguous linear-solve output.
    x_new_all: Vec<f64>,
    /// Damped-update workspace (one lane at a time).
    delta: Vec<f64>,
    /// Per-lane bias gather buffer (length K).
    bias_buf: Vec<MosBias>,
    /// Batched device stamps, MOSFET-major: `stamp_buf[mi * K + lane]`.
    stamp_buf: Vec<MosStamp>,
    /// Batched capacitance buffer (length K).
    caps_buf: Vec<MosCaps>,
    multi: Option<MultiLu>,
    /// Set when the last refactorization sent lanes through the
    /// per-lane fallback: the shared pivot order has gone stale (the
    /// companion conductances move with the step size), so the next
    /// factorization rebuilds the multi-LU with a fresh shared order —
    /// exactly the refresh the scalar symbolic kernel gets from its
    /// fallback full factorization.
    repivot: bool,
    lanes: usize,
}

impl LockstepNewton {
    /// One lockstep Newton solve: every lane starts from its last
    /// accepted solution and iterates until **all** lanes pass their own
    /// convergence test in the same iteration. On success the converged
    /// solutions are in `x_all`, lane-contiguous.
    #[allow(clippy::too_many_arguments)]
    fn solve(
        &mut self,
        mna: &Mna<'_>,
        lanes_state: &[LaneState],
        mos_refs: &[MosRef],
        mos_slot: &[Option<usize>],
        time: f64,
        options: &SimOptions,
        companions: &[Vec<CompanionCap>],
        faults: &mut FaultSession,
        stats: &mut SolverStats,
    ) -> Result<(), NewtonFailure> {
        let k_lanes = self.lanes;
        let n = mna.n_unknowns;
        let nvu = mna.node_unknowns();
        let temp_k = options.temperature.as_kelvin();
        for (lane, state) in lanes_state.iter().enumerate() {
            self.x_all[lane * n..(lane + 1) * n].copy_from_slice(&state.x);
        }

        for _iter in 1..=options.max_newton_iters {
            stats.newton_iters += k_lanes as u64;
            // --- batched SoA device evaluation -----------------------
            // One pass per MOSFET evaluates its K perturbed variants at
            // their K lane biases; `device_evals` counts lane-evals so
            // the accounting stays comparable with the scalar kernels.
            for (mi, m) in mos_refs.iter().enumerate() {
                for lane in 0..k_lanes {
                    let x = &self.x_all[lane * n..(lane + 1) * n];
                    self.bias_buf[lane] = MosBias::new(
                        mna.voltage(x, m.gate),
                        mna.voltage(x, m.drain),
                        mna.voltage(x, m.source),
                        mna.voltage(x, m.bulk),
                    );
                }
                m.lanes.eval_batch(
                    &self.bias_buf,
                    temp_k,
                    &mut self.stamp_buf[mi * k_lanes..(mi + 1) * k_lanes],
                );
                stats.device_evals += k_lanes as u64;
            }
            // --- per-lane scatter assembly over the shared map -------
            for lane in 0..k_lanes {
                let b = &mut self.b_all[lane * n..(lane + 1) * n];
                b.fill(0.0);
                let vals = &mut self.lane_vals[lane];
                vals.fill(0.0);
                let ctx = StampCtx {
                    time,
                    source_scale: 1.0,
                    gmin: options.gmin,
                    temp_k,
                    reactive: Some(&companions[lane]),
                };
                let stamp_buf = &self.stamp_buf;
                let mut sink = PatternScatter {
                    values: vals,
                    map: &self.map,
                    cursor: 0,
                };
                let x = &self.x_all[lane * n..(lane + 1) * n];
                mna.assemble_with_eval(x, &mut sink, b, &ctx, &mut |elem_idx, _, _, _| {
                    let mi = mos_slot[elem_idx].expect("stamped element is a MOSFET");
                    stamp_buf[mi * k_lanes + lane]
                });
                assert_eq!(
                    sink.cursor,
                    self.map.len(),
                    "assembly stamped a different sequence than the symbolic phase"
                );
            }
            // --- multi-lane factorization ----------------------------
            let tol = options.sparse_pivot_tol;
            if self.repivot {
                self.repivot = false;
                self.multi = None;
            }
            match &mut self.multi {
                Some(f) => {
                    if faults.fire_pivot() {
                        // Lane-aware fault addressing: degrade one
                        // deterministically-chosen lane, exercising the
                        // per-lane fallback without changing answers.
                        f.degrade_lane(faults.fired() as usize % k_lanes);
                    }
                    match f.refactorize_multi(&self.pattern, &self.lane_vals, tol) {
                        Ok(report) => {
                            stats.refactorizations += report.shared_lanes as u64;
                            stats.refactor_fallbacks += report.fallback_lanes as u64;
                            stats.full_factorizations += report.fallback_lanes as u64;
                            // A fallback means the frozen shared order
                            // no longer matches the values; refresh it
                            // next time instead of falling back forever.
                            self.repivot = report.fallback_lanes > 0;
                        }
                        Err(_) => return Err(NewtonFailure::Singular(None)),
                    }
                }
                None => match MultiLu::factorize(&self.pattern, &self.lane_vals, tol) {
                    Ok(f) => {
                        stats.full_factorizations += k_lanes as u64;
                        self.multi = Some(f);
                    }
                    Err(_) => return Err(NewtonFailure::Singular(None)),
                },
            }
            let multi = self.multi.as_ref().expect("factorized above");
            if multi
                .solve_into_multi(&self.b_all, &mut self.x_new_all)
                .is_err()
            {
                return Err(NewtonFailure::Singular(None));
            }
            stats.linear_solves += k_lanes as u64;

            // --- per-lane damped update + lockstep convergence -------
            let mut all_converged = true;
            for lane in 0..k_lanes {
                let x = &mut self.x_all[lane * n..(lane + 1) * n];
                let x_new = &self.x_new_all[lane * n..(lane + 1) * n];
                let mut clamped = false;
                for i in 0..n {
                    let mut d = x_new[i] - x[i];
                    if !d.is_finite() {
                        return Err(NewtonFailure::Singular(None));
                    }
                    if i < nvu && d.abs() > options.max_voltage_step {
                        d = d.signum() * options.max_voltage_step;
                        clamped = true;
                    }
                    self.delta[i] = d;
                    x[i] += d;
                }
                if clamped {
                    all_converged = false;
                    continue;
                }
                let (dv, di) = self.delta.split_at(nvu);
                let (xv, xi) = x.split_at(nvu);
                if !(weighted_converged(dv, xv, options.vabstol, options.reltol)
                    && weighted_converged(di, xi, options.iabstol, options.reltol))
                {
                    all_converged = false;
                }
            }
            if all_converged {
                return Ok(());
            }
        }
        Err(NewtonFailure::NoConvergence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_transient;
    use vls_device::{MosGeometry, MosModel, SourceWaveform};

    fn inverter() -> (Circuit, vls_netlist::NodeId) {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.add_vsource("vdd", vdd, Circuit::GROUND, SourceWaveform::Dc(1.2));
        c.add_vsource(
            "vin",
            inp,
            Circuit::GROUND,
            SourceWaveform::Pulse {
                v1: 0.0,
                v2: 1.2,
                delay: 0.3e-9,
                rise: 50e-12,
                fall: 50e-12,
                width: 1.5e-9,
                period: f64::INFINITY,
            },
        );
        c.add_mosfet(
            "mp",
            out,
            inp,
            vdd,
            vdd,
            MosModel::ptm90_pmos(),
            MosGeometry::from_microns(0.4, 0.1),
        );
        c.add_mosfet(
            "mn",
            out,
            inp,
            Circuit::GROUND,
            Circuit::GROUND,
            MosModel::ptm90_nmos(),
            MosGeometry::from_microns(0.2, 0.1),
        );
        c.add_capacitor("cl", out, Circuit::GROUND, 1e-15);
        (c, out)
    }

    #[test]
    fn identical_lanes_are_bitwise_equal_and_track_the_scalar_kernel() {
        let (c, out) = inverter();
        let options = SimOptions::default();
        let scalar = run_transient(&c, 4e-9, &options).unwrap();
        let lanes = vec![c.clone(), c.clone(), c.clone()];
        let batch = run_transient_batched(&lanes, 4e-9, &options).unwrap();
        assert_eq!(batch.lanes.len(), 3);
        // Identical lanes run identical arithmetic: bitwise-equal
        // waveforms across lanes.
        let v0 = batch.lanes[0].node_series(out);
        for lane in &batch.lanes[1..] {
            let v = lane.node_series(out);
            assert_eq!(v0.len(), v.len());
            for (a, b) in v0.iter().zip(&v) {
                assert_eq!(a.to_bits(), b.to_bits(), "lanes diverged");
            }
        }
        // The batched kernel uses analytic derivatives, so the grid and
        // iterates are not bitwise those of the scalar kernel — but the
        // physics must match well inside solver tolerance.
        let a = scalar.final_voltage(out);
        let b = batch.lanes[0].final_voltage(out);
        assert!((a - b).abs() < 1e-6, "scalar {a} vs batched {b}");
        assert_eq!(batch.lanes[0].times()[0], 0.0);
        let t_last = *batch.lanes[0].times().last().unwrap();
        assert!((t_last - 4e-9).abs() < 1e-18);
    }

    #[test]
    fn perturbed_lanes_get_their_own_waveforms_on_a_shared_grid() {
        let (c, out) = inverter();
        let mut fat = c.clone();
        for e in fat.elements_mut() {
            if let Element::Mosfet { name, geom, .. } = e {
                if name == "mn" {
                    *geom = MosGeometry::from_microns(0.3, 0.1);
                }
            }
        }
        let lanes = vec![c.clone(), fat];
        let options = SimOptions::default();
        let batch = run_transient_batched(&lanes, 4e-9, &options).unwrap();
        assert_eq!(
            batch.lanes[0].times(),
            batch.lanes[1].times(),
            "grid must be shared"
        );
        let v0 = batch.lanes[0].node_series(out);
        let v1 = batch.lanes[1].node_series(out);
        assert!(
            v0.iter().zip(&v1).any(|(a, b)| (a - b).abs() > 1e-6),
            "a perturbed lane must produce a different waveform"
        );
        // Both lanes still settle at the low rail after the input rise.
        for lane in &batch.lanes {
            let v = lane.node_series(out);
            let t = lane.times();
            let idx = t.iter().position(|&x| x > 1.5e-9).unwrap();
            assert!(v[idx].abs() < 0.05, "lane failed to switch: {}", v[idx]);
        }
    }

    #[test]
    fn batched_stats_keep_the_device_eval_counter_balance() {
        // With bypass off, every kernel mode must book exactly one
        // device (lane-)eval per MOSFET per Newton (lane-)iteration.
        let (c, _) = inverter();
        let lanes = vec![c.clone(), c.clone(), c.clone(), c.clone()];
        let batch = run_transient_batched(&lanes, 4e-9, &SimOptions::default()).unwrap();
        let s = batch.stats;
        assert_eq!(s.device_bypasses, 0);
        assert_eq!(s.device_evals, 2 * s.newton_iters, "2 MOSFETs per lane");
        assert!(s.linear_solves > 0 && s.refactorizations > 0);
        // Per-lane results carry no stats of their own — the batch owns
        // the pooled counters, so absorbing both would double count.
        for lane in &batch.lanes {
            assert_eq!(lane.solver_stats(), SolverStats::default());
        }
    }
}
