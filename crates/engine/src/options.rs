//! Simulation tolerances and controls.

use vls_check::CheckLevel;
use vls_fault::FaultPlan;
use vls_units::Temperature;

/// Which Newton/transient hot-path implementation to run.
///
/// Both produce the same solutions (the equivalence suite in
/// `tests/newton_kernel.rs` pins them to each other); `Legacy` exists
/// as the baseline for benchmarking and as an escape hatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Per-iteration matrix rebuild: fresh `TripletMatrix`/`DenseMatrix`
    /// assembly and a full factorization every Newton iteration.
    Legacy,
    /// Symbolic-reuse kernel: one-time sparsity analysis with
    /// stamp-pointer scatter assembly, numeric-only refactorization
    /// with frozen pivots, reusable workspaces, and (when
    /// [`SimOptions::bypass_vtol`] is positive) device-eval bypass.
    #[default]
    Symbolic,
    /// Lane-batched kernel for Monte Carlo ensembles: K perturbed
    /// trials of one circuit run in lockstep through one shared
    /// sparsity pattern, SoA device evaluation with analytic
    /// derivatives, and a multi-lane LU. Scalar analyses (single
    /// circuit, or [`SimOptions::batch_lanes`] ≤ 1) behave exactly as
    /// `Symbolic` — the batched machinery only engages on the batched
    /// MC entry points.
    Batched,
}

/// How the sparse linear system is *structured* before factorization —
/// orthogonal to [`KernelMode`], which picks the assembly/refactorization
/// strategy. Only the sparse path of the symbolic kernel honors this;
/// dense circuits (at or below [`SimOptions::sparse_threshold`]) and
/// [`KernelMode::Legacy`] always solve in natural order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverStructure {
    /// Natural MNA unknown order, flat LU. The default: bit-identical
    /// to every release before the structured solvers existed.
    #[default]
    Natural,
    /// One-time minimum-degree fill-reducing symmetric permutation
    /// (`P·A·Pᵀ`) applied at symbolic-compile time; stamps scatter
    /// directly into permuted slots, so the per-iteration cost is
    /// unchanged. When the computed permutation is the identity the
    /// kernel provably produces the natural factorization and quietly
    /// uses the `Natural` path.
    Ordered,
    /// Island-partitioned Schur solve: boundary unknowns (voltage-source
    /// nets and every branch current) are torn out, the remaining
    /// connected components factorize independently (each under its own
    /// minimum-degree order, fanned across [`SimOptions::solver_jobs`]
    /// workers), coupled through a dense Schur complement on the
    /// boundary. Bitwise identical at any worker count.
    Islands,
}

/// Tolerances and controls shared by all analyses. The defaults follow
/// SPICE conventions and are what every experiment in this workspace
/// runs with unless stated otherwise in EXPERIMENTS.md.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOptions {
    /// Device temperature.
    pub temperature: Temperature,
    /// Relative convergence tolerance (SPICE `RELTOL`).
    pub reltol: f64,
    /// Absolute voltage tolerance, V (SPICE `VNTOL`).
    pub vabstol: f64,
    /// Absolute current tolerance for branch unknowns, A.
    pub iabstol: f64,
    /// Conductance tied from every node to ground, S (SPICE `GMIN`).
    pub gmin: f64,
    /// Maximum Newton iterations per solve attempt.
    pub max_newton_iters: usize,
    /// Per-iteration clamp on any node-voltage update, V. Damps the
    /// exponential MOSFET characteristics exactly like SPICE's junction
    /// voltage limiting.
    pub max_voltage_step: f64,
    /// Largest transient step, s; `None` derives `tstop / 50`.
    pub max_step: Option<f64>,
    /// Smallest transient step before reporting step underflow, s.
    pub min_step: f64,
    /// First transient step after DC or a breakpoint, s.
    pub initial_step: f64,
    /// Transient local-truncation-error tolerance, V. The step size is
    /// adapted to hold the predictor–corrector disagreement below this.
    pub lte_tol: f64,
    /// Unknown count above which the sparse solver is used.
    pub sparse_threshold: usize,
    /// Diagonal-preference pivot tolerance for the sparse LU: the
    /// diagonal is kept as pivot while its magnitude is at least this
    /// fraction of the column maximum. Also the pivot-health threshold
    /// guarding numeric-only refactorization. SPICE's classic value.
    pub sparse_pivot_tol: f64,
    /// Newton hot-path implementation selector.
    pub kernel: KernelMode,
    /// Device-bypass voltage tolerance, V: a MOSFET (or its Meyer
    /// capacitances) is not re-evaluated while every terminal voltage
    /// stays within this of the cached evaluation. `0.0` (the default)
    /// disables bypassing, which keeps results bit-identical to the
    /// legacy path; small positive values (≈1e-6) trade exactness
    /// within `reltol` for large speedups on waveform plateaus. Only
    /// honored by [`KernelMode::Symbolic`].
    pub bypass_vtol: f64,
    /// Static electrical-rule checking to run before any analysis.
    /// `Off` (the default) keeps only the structural `validate()`
    /// pass; `Connectivity`/`Full` run `vls-check` and refuse to
    /// simulate a circuit with error-severity findings.
    pub check: CheckLevel,
    /// Armed fault-injection plan. Empty (the default) keeps every
    /// compiled-in hook cold and the solver bit-identical to a
    /// hook-free build. The plan stored here is expected to be
    /// seed-resolved already (`FaultPlan::arm`); the engine loads it
    /// into a fresh `FaultSession` per analysis phase.
    pub fault: FaultPlan,
    /// Hard ceiling on Newton iterations summed across a whole DC
    /// homotopy ladder (all stages, all continuation points). Acts as
    /// a deterministic timeout: crossing it aborts the solve with
    /// `EngineError::BudgetExhausted` instead of grinding on. `None`
    /// (the default) is unlimited.
    pub newton_budget: Option<u64>,
    /// Hard ceiling on transient step *attempts* (accepted + rejected)
    /// for one transient run — the stepper's deterministic timeout.
    /// `None` (the default) is unlimited.
    pub step_budget: Option<u64>,
    /// Sparse linear-system structuring: natural order (the default,
    /// bit-identical to prior behavior), fill-reducing minimum-degree
    /// ordering, or the island-partitioned Schur solver. Honored by the
    /// sparse path of [`KernelMode::Symbolic`]; everything else ignores
    /// it.
    pub structure: SolverStructure,
    /// Worker threads for the island-partitioned solver's per-island
    /// factorization fan-out. `None` defers to the `VLS_JOBS`
    /// environment variable, then to available parallelism (the
    /// `vls-runner` resolution rule). Results never depend on this —
    /// only wall time does.
    pub solver_jobs: Option<usize>,
    /// Monte Carlo lane width K: how many perturbed trials the batched
    /// MC path evaluates in lockstep per shard. `1` (the default) keeps
    /// every ensemble on the scalar per-trial path, bit-identical to
    /// [`KernelMode::Symbolic`]; values > 1 route MC-capable flows
    /// through `KernelMode::Batched`. Ignored by scalar analyses.
    pub batch_lanes: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            temperature: Temperature::ROOM,
            reltol: 1e-3,
            vabstol: 1e-6,
            iabstol: 1e-12,
            gmin: 1e-12,
            max_newton_iters: 120,
            max_voltage_step: 0.3,
            max_step: None,
            min_step: 1e-18,
            initial_step: 1e-13,
            lte_tol: 1e-3,
            sparse_threshold: 64,
            sparse_pivot_tol: 1e-3,
            kernel: KernelMode::Symbolic,
            bypass_vtol: 0.0,
            check: CheckLevel::Off,
            fault: FaultPlan::none(),
            newton_budget: None,
            step_budget: None,
            structure: SolverStructure::default(),
            solver_jobs: None,
            batch_lanes: 1,
        }
    }
}

impl SimOptions {
    /// Convenience constructor for a given temperature in °C, keeping
    /// every other option at its default.
    pub fn at_celsius(celsius: f64) -> Self {
        Self {
            temperature: Temperature::from_celsius(celsius),
            ..Self::default()
        }
    }

    /// The retry-ladder escalation: a progressively more conservative
    /// variant of these options for retry rung `rung`. The steps are
    /// cumulative — each rung keeps everything the previous rungs
    /// changed and adds its own concession:
    ///
    /// * rung 0 — these options unchanged (the base attempt);
    /// * rung 1 — gmin floor raised 100× (stiffer regularization pulls
    ///   floating/bistable nodes toward convergence);
    /// * rung 2 — additionally forces [`KernelMode::Legacy`] with
    ///   bypassing off (full re-pivoting every iteration, no frozen
    ///   structure, no cached linearizations);
    /// * rung 3+ — additionally quarters the maximum and initial
    ///   transient steps (brute-force LTE headroom).
    ///
    /// Injected faults model a transient upset of the base attempt, so
    /// escalation also disarms the fault plan from rung 1 on — a retry
    /// is a *clean* re-run under more conservative numerics, which is
    /// exactly what a production retry would be.
    pub fn escalated(&self, rung: usize) -> Self {
        let mut o = self.clone();
        if rung == 0 {
            return o;
        }
        o.fault = FaultPlan::none();
        o.gmin = self.gmin * 100.0;
        // Retries also de-batch: a lane that failed inside a K-wide
        // lockstep group re-runs alone on the scalar path, so a batch
        // pathology can never wedge the ladder.
        o.batch_lanes = 1;
        if rung >= 2 {
            o.kernel = KernelMode::Legacy;
            o.bypass_vtol = 0.0;
            // Legacy ignores structuring anyway; force Natural so the
            // intent — the most conservative flat path — is explicit.
            o.structure = SolverStructure::Natural;
        }
        if rung >= 3 {
            o.max_step = self.max_step.map(|s| s / 4.0);
            o.initial_step = self.initial_step / 4.0;
        }
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_spice_like() {
        let o = SimOptions::default();
        assert_eq!(o.reltol, 1e-3);
        assert_eq!(o.gmin, 1e-12);
        assert_eq!(o.temperature, Temperature::ROOM);
        assert_eq!(o.sparse_pivot_tol, 1e-3);
        assert_eq!(o.kernel, KernelMode::Symbolic);
        // Bypass must default OFF so the kernel is exact by default.
        assert_eq!(o.bypass_vtol, 0.0);
        // Fault injection and budgets must default inert/unlimited.
        assert!(o.fault.is_empty());
        assert_eq!(o.newton_budget, None);
        assert_eq!(o.step_budget, None);
        // Lane width 1 = scalar MC, bit-identical to Symbolic.
        assert_eq!(o.batch_lanes, 1);
        // Natural structure is the bit-identity default; worker count
        // for the island fan-out defers to the environment.
        assert_eq!(o.structure, SolverStructure::Natural);
        assert_eq!(o.solver_jobs, None);
    }

    #[test]
    fn escalation_is_cumulative_and_disarms_faults() {
        let mut base = SimOptions {
            max_step: Some(1e-11),
            ..SimOptions::default()
        };
        base.fault = FaultPlan::parse("pivot").unwrap();
        base.batch_lanes = 8;
        base.structure = SolverStructure::Islands;
        assert_eq!(base.escalated(0), base, "rung 0 is the base attempt");
        let r1 = base.escalated(1);
        assert!(r1.fault.is_empty(), "retries run clean");
        assert_eq!(r1.gmin, base.gmin * 100.0);
        assert_eq!(r1.kernel, KernelMode::Symbolic);
        assert_eq!(r1.batch_lanes, 1, "retries de-batch");
        assert_eq!(
            r1.structure,
            SolverStructure::Islands,
            "rung 1 keeps the structure"
        );
        let r2 = base.escalated(2);
        assert_eq!(r2.gmin, base.gmin * 100.0);
        assert_eq!(r2.kernel, KernelMode::Legacy);
        assert_eq!(
            r2.structure,
            SolverStructure::Natural,
            "rung 2 de-structures"
        );
        assert_eq!(r2.max_step, base.max_step);
        let r3 = base.escalated(3);
        assert_eq!(r3.kernel, KernelMode::Legacy);
        assert_eq!(r3.max_step, Some(1e-11 / 4.0));
        assert_eq!(r3.initial_step, base.initial_step / 4.0);
    }

    #[test]
    fn at_celsius_only_changes_temperature() {
        let o = SimOptions::at_celsius(90.0);
        assert!((o.temperature.as_celsius() - 90.0).abs() < 1e-9);
        assert_eq!(o.reltol, SimOptions::default().reltol);
    }
}
