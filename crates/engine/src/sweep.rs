//! DC sweeps: repeated operating points over a swept voltage source.

use vls_device::SourceWaveform;
use vls_netlist::{Circuit, Element};

use crate::{solve_dc_warm, DcSolution, EngineError, SimOptions};

/// One point of a DC sweep.
#[derive(Debug, Clone)]
pub struct DcSweepPoint {
    /// The swept source's value at this point, V.
    pub value: f64,
    /// The operating point.
    pub solution: DcSolution,
}

/// Warm/cold accounting of one sweep — how much the point-to-point
/// warm-start chain saved over cold-starting every operating point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepStats {
    /// Points solved directly from the previous point's solution.
    pub warm_points: usize,
    /// Points that went through the cold-start ladder (always at least
    /// the first point).
    pub cold_points: usize,
    /// Newton iterations spent on warm-started points.
    pub warm_iters: usize,
    /// Newton iterations spent on cold-started points.
    pub cold_iters: usize,
}

impl SweepStats {
    fn absorb(&mut self, stats: crate::DcSolveStats) {
        if stats.warm {
            self.warm_points += 1;
            self.warm_iters += stats.newton_iters;
        } else {
            self.cold_points += 1;
            self.cold_iters += stats.newton_iters;
        }
    }
}

/// Sweeps the named voltage source from `start` to `stop` (inclusive,
/// within half a step) in increments of `step`, solving the operating
/// point at each value and reporting the warm-start accounting.
///
/// Each point after the first warm-starts Newton from the previous
/// point's operating point (adjacent sweep values differ by one step,
/// so the previous solution is a near-converged guess); a point whose
/// warm attempt fails falls back to the cold-start gmin/source
/// stepping ladder automatically.
///
/// # Errors
///
/// [`EngineError::BadNetlist`] if the source does not exist or `step`
/// does not advance toward `stop`; otherwise propagates the first DC
/// failure.
pub fn dc_sweep_with_stats(
    circuit: &Circuit,
    source_name: &str,
    start: f64,
    stop: f64,
    step: f64,
    options: &SimOptions,
) -> Result<(Vec<DcSweepPoint>, SweepStats), EngineError> {
    let elem_pos = circuit
        .elements()
        .iter()
        .position(|e| matches!(e, Element::VoltageSource { .. }) && e.name() == source_name)
        .ok_or_else(|| EngineError::BadNetlist(format!("no voltage source named {source_name}")))?;
    if step == 0.0 || (stop - start) * step < 0.0 {
        return Err(EngineError::BadNetlist(format!(
            "sweep step {step} does not move from {start} toward {stop}"
        )));
    }
    let n_points = ((stop - start) / step).round() as usize + 1;
    let mut out: Vec<DcSweepPoint> = Vec::with_capacity(n_points);
    let mut stats = SweepStats::default();
    let mut work = circuit.clone();
    for k in 0..n_points {
        let value = start + step * k as f64;
        if let Element::VoltageSource { wave, .. } = &mut work.elements_mut()[elem_pos] {
            *wave = SourceWaveform::Dc(value);
        }
        let guess = out.last().map(|p| p.solution.unknowns());
        let (solution, solve_stats) = solve_dc_warm(&work, options, guess)?;
        stats.absorb(solve_stats);
        out.push(DcSweepPoint { value, solution });
    }
    Ok((out, stats))
}

/// [`dc_sweep_with_stats`] without the accounting.
///
/// # Errors
///
/// As [`dc_sweep_with_stats`].
pub fn dc_sweep(
    circuit: &Circuit,
    source_name: &str,
    start: f64,
    stop: f64,
    step: f64,
    options: &SimOptions,
) -> Result<Vec<DcSweepPoint>, EngineError> {
    dc_sweep_with_stats(circuit, source_name, start, stop, step, options).map(|(pts, _)| pts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vls_device::{MosGeometry, MosModel};
    use vls_netlist::Circuit;

    #[test]
    fn sweeping_a_divider_is_linear() {
        let mut c = Circuit::new();
        let top = c.node("top");
        let mid = c.node("mid");
        c.add_vsource("v1", top, Circuit::GROUND, SourceWaveform::Dc(0.0));
        c.add_resistor("r1", top, mid, 1000.0);
        c.add_resistor("r2", mid, Circuit::GROUND, 1000.0);
        let pts = dc_sweep(&c, "v1", 0.0, 2.0, 0.5, &SimOptions::default()).unwrap();
        assert_eq!(pts.len(), 5);
        for p in &pts {
            assert!((p.solution.voltage(mid) - p.value / 2.0).abs() < 1e-6);
        }
        assert_eq!(pts[0].value, 0.0);
        assert_eq!(pts[4].value, 2.0);
    }

    #[test]
    fn inverter_vtc_is_monotonically_falling() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.add_vsource("vdd", vdd, Circuit::GROUND, SourceWaveform::Dc(1.2));
        c.add_vsource("vin", inp, Circuit::GROUND, SourceWaveform::Dc(0.0));
        c.add_mosfet(
            "mp",
            out,
            inp,
            vdd,
            vdd,
            MosModel::ptm90_pmos(),
            MosGeometry::from_microns(0.4, 0.1),
        );
        c.add_mosfet(
            "mn",
            out,
            inp,
            Circuit::GROUND,
            Circuit::GROUND,
            MosModel::ptm90_nmos(),
            MosGeometry::from_microns(0.2, 0.1),
        );
        let pts = dc_sweep(&c, "vin", 0.0, 1.2, 0.05, &SimOptions::default()).unwrap();
        let vtc: Vec<f64> = pts.iter().map(|p| p.solution.voltage(out)).collect();
        assert!((vtc[0] - 1.2).abs() < 0.01);
        assert!(vtc.last().unwrap().abs() < 0.01);
        for w in vtc.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "VTC not monotonic: {w:?}");
        }
    }

    #[test]
    fn unknown_source_is_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("v1", a, Circuit::GROUND, SourceWaveform::Dc(1.0));
        c.add_resistor("r1", a, Circuit::GROUND, 100.0);
        assert!(matches!(
            dc_sweep(&c, "vx", 0.0, 1.0, 0.1, &SimOptions::default()),
            Err(EngineError::BadNetlist(_))
        ));
    }

    #[test]
    fn zero_step_is_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("v1", a, Circuit::GROUND, SourceWaveform::Dc(1.0));
        c.add_resistor("r1", a, Circuit::GROUND, 100.0);
        assert!(matches!(
            dc_sweep(&c, "v1", 0.0, 1.0, 0.0, &SimOptions::default()),
            Err(EngineError::BadNetlist(_))
        ));
        // Step pointing away from stop.
        assert!(matches!(
            dc_sweep(&c, "v1", 1.0, 0.0, 0.1, &SimOptions::default()),
            Err(EngineError::BadNetlist(_))
        ));
    }

    #[test]
    fn warm_chain_covers_every_point_after_the_first() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.add_vsource("vdd", vdd, Circuit::GROUND, SourceWaveform::Dc(1.2));
        c.add_vsource("vin", inp, Circuit::GROUND, SourceWaveform::Dc(0.0));
        c.add_mosfet(
            "mp",
            out,
            inp,
            vdd,
            vdd,
            MosModel::ptm90_pmos(),
            MosGeometry::from_microns(0.4, 0.1),
        );
        c.add_mosfet(
            "mn",
            out,
            inp,
            Circuit::GROUND,
            Circuit::GROUND,
            MosModel::ptm90_nmos(),
            MosGeometry::from_microns(0.2, 0.1),
        );
        let (pts, stats) =
            dc_sweep_with_stats(&c, "vin", 0.0, 1.2, 0.05, &SimOptions::default()).unwrap();
        assert_eq!(pts.len(), 25);
        assert_eq!(stats.warm_points + stats.cold_points, 25);
        assert!(
            stats.warm_points >= 23,
            "adjacent VTC points must warm-start: {stats:?}"
        );
        assert!(stats.cold_points >= 1, "first point is always cold");
        // Warm solves are cheaper per point than cold solves.
        let warm_avg = stats.warm_iters as f64 / stats.warm_points.max(1) as f64;
        let cold_avg = stats.cold_iters as f64 / stats.cold_points.max(1) as f64;
        assert!(
            warm_avg < cold_avg,
            "warm {warm_avg:.1} vs cold {cold_avg:.1} iters/point"
        );
    }

    #[test]
    fn downward_sweep_works() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("v1", a, Circuit::GROUND, SourceWaveform::Dc(1.0));
        c.add_resistor("r1", a, Circuit::GROUND, 100.0);
        let pts = dc_sweep(&c, "v1", 1.0, 0.0, -0.25, &SimOptions::default()).unwrap();
        assert_eq!(pts.len(), 5);
        assert_eq!(pts.last().unwrap().value, 0.0);
    }
}
