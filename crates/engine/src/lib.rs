//! MNA-based analog simulation engine.
//!
//! This crate is the workspace's stand-in for SPICE's numerical core:
//!
//! * [`solve_dc`] — Newton–Raphson operating point with automatic
//!   gmin-stepping and source-stepping homotopies when plain Newton
//!   fails (floating dynamic nodes, bistable cells, …);
//! * [`run_transient`] — trapezoidal/backward-Euler transient with
//!   local-truncation-error step control and breakpoint handling, the
//!   analysis every delay/power number in the paper comes from;
//! * [`dc_sweep`] — repeated operating points over a swept source.
//!
//! The circuits this workspace characterizes have a few dozen unknowns,
//! so the engine uses the dense LU from [`vls_num`] by default and the
//! sparse Gilbert–Peierls factorization above a size threshold.
//!
//! # Example: resistive divider
//!
//! ```
//! use vls_netlist::Circuit;
//! use vls_device::SourceWaveform;
//! use vls_engine::{solve_dc, SimOptions};
//!
//! # fn main() -> Result<(), vls_engine::EngineError> {
//! let mut ckt = Circuit::new();
//! let top = ckt.node("top");
//! let mid = ckt.node("mid");
//! ckt.add_vsource("v1", top, Circuit::GROUND, SourceWaveform::Dc(2.0));
//! ckt.add_resistor("r1", top, mid, 1000.0);
//! ckt.add_resistor("r2", mid, Circuit::GROUND, 1000.0);
//! let sol = solve_dc(&ckt, &SimOptions::default())?;
//! assert!((sol.voltage(mid) - 1.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

mod ac;
mod batch;
mod dc;
mod kernel;
mod mna;
mod op_report;
mod options;
mod sweep;
mod tran;

pub use ac::{log_space, run_ac, AcResult};
pub use batch::{run_transient_batched, BatchTransient};
pub use dc::{solve_dc, solve_dc_warm, DcSolution, DcSolveStats};
pub use kernel::{island_report, IslandReport};
pub use mna::unknown_count;
pub use op_report::{op_report, MosRegion, OpEntry, OpReport};
pub use options::{KernelMode, SimOptions, SolverStructure};
pub use sweep::{dc_sweep, dc_sweep_with_stats, DcSweepPoint, SweepStats};
pub use tran::{run_transient, run_transient_uic, TransientResult};
pub use vls_check::CheckLevel;
pub use vls_fault::{FaultPlan, FaultSession, FaultSite, FaultSpec, LadderStage};
pub use vls_num::SolverStats;

/// Structural validation plus (when [`SimOptions::check`] asks for it)
/// the `vls-check` electrical-rule pass. Every analysis entry point
/// funnels through here before touching the MNA matrix, so a
/// structurally broken circuit fails with named nodes and rule codes
/// instead of a numerical error deep inside a solve.
pub(crate) fn preflight(
    circuit: &vls_netlist::Circuit,
    options: &SimOptions,
) -> Result<(), EngineError> {
    circuit
        .validate()
        .map_err(|e| EngineError::BadNetlist(e.to_string()))?;
    if !matches!(options.check, CheckLevel::Off) {
        let report =
            vls_check::run_check(circuit, &vls_check::CheckOptions::at_level(options.check));
        if report.has_errors() {
            return Err(EngineError::BadNetlist(report.error_summary()));
        }
    }
    Ok(())
}

/// Errors produced by the analyses.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Newton iteration failed to converge even with homotopy fallbacks.
    NoConvergence {
        /// Which analysis stage failed.
        context: String,
    },
    /// The MNA matrix was singular and gmin could not regularize it.
    Singular {
        /// Which analysis stage failed.
        context: String,
    },
    /// Transient step control underflowed the minimum step size.
    StepUnderflow {
        /// Simulation time at which the step collapsed.
        time: f64,
    },
    /// The netlist failed validation before simulation.
    BadNetlist(String),
    /// A per-trial work budget (Newton iterations or transient step
    /// attempts) was exhausted — the deterministic analogue of a
    /// wall-clock timeout.
    BudgetExhausted {
        /// Which analysis stage hit the ceiling.
        context: String,
        /// Work units spent when the ceiling was crossed.
        spent: u64,
        /// The configured ceiling.
        budget: u64,
    },
}

impl EngineError {
    /// A stable machine-readable class token for failure taxonomies
    /// (`no_convergence`, `singular`, `step_underflow`, `bad_netlist`,
    /// `budget_exhausted`).
    pub fn failure_class(&self) -> &'static str {
        match self {
            EngineError::NoConvergence { .. } => "no_convergence",
            EngineError::Singular { .. } => "singular",
            EngineError::StepUnderflow { .. } => "step_underflow",
            EngineError::BadNetlist(_) => "bad_netlist",
            EngineError::BudgetExhausted { .. } => "budget_exhausted",
        }
    }
}

impl core::fmt::Display for EngineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EngineError::NoConvergence { context } => {
                write!(f, "newton iteration failed to converge ({context})")
            }
            EngineError::Singular { context } => {
                write!(f, "singular MNA system ({context})")
            }
            EngineError::StepUnderflow { time } => {
                write!(f, "transient step size underflow at t = {time:.3e} s")
            }
            EngineError::BadNetlist(msg) => write!(f, "bad netlist: {msg}"),
            EngineError::BudgetExhausted {
                context,
                spent,
                budget,
            } => {
                write!(f, "work budget exhausted ({context}): {spent} of {budget}")
            }
        }
    }
}

impl std::error::Error for EngineError {}
