//! Transient analysis: trapezoidal/backward-Euler companion integration
//! with local-truncation-error step control and source breakpoints.
//!
//! Reactive elements (explicit capacitors and the Meyer capacitances of
//! every MOSFET) are replaced at each time step by companion models
//! `i = geq·v − ieq`; the resulting resistive network is solved by the
//! same damped Newton iteration as the DC analysis, warm-started from
//! the previous time point. The step size adapts to hold the
//! disagreement between the predictor (polynomial extrapolation) and
//! the corrector below `SimOptions::lte_tol`; steps are forced to land
//! on every source breakpoint so input edges are never straddled.
//!
//! Integration uses a θ-damped trapezoid (θ = 0.55): plain trapezoidal
//! integration is only marginally stable and lets capacitor-current
//! ringing persist forever on quiet plateaus, which would corrupt the
//! nanoamp-level leakage extraction this workspace depends on. The
//! slight damping decays the ringing while keeping near-second-order
//! accuracy; on plateaus (steps cruising at the maximum size) the
//! engine additionally drops to backward Euler, which kills any
//! residual oscillation outright where accuracy is free.

use vls_device::MosBias;
use vls_fault::FaultSession;
use vls_netlist::{Circuit, Element, NodeId};
use vls_num::SolverStats;

use crate::dc::{newton_solve, solve_dc_at, DcSolution};
use crate::kernel::NewtonKernel;
use crate::mna::{CompanionCap, Mna, StampCtx};
use crate::options::KernelMode;
use crate::{EngineError, SimOptions};

/// The sampled result of a transient run.
#[derive(Debug, Clone)]
pub struct TransientResult {
    times: Vec<f64>,
    /// `samples[k]` is the full unknown vector at `times[k]`.
    samples: Vec<Vec<f64>>,
    n_node_unknowns: usize,
    branch_names: Vec<String>,
    stats: SolverStats,
}

impl TransientResult {
    /// Assembles a result from raw parts — for the sibling stepping
    /// cores (the batched lockstep loop in `batch.rs` produces one
    /// `TransientResult` per lane).
    pub(crate) fn from_parts(
        times: Vec<f64>,
        samples: Vec<Vec<f64>>,
        n_node_unknowns: usize,
        branch_names: Vec<String>,
        stats: SolverStats,
    ) -> Self {
        Self {
            times,
            samples,
            n_node_unknowns,
            branch_names,
            stats,
        }
    }

    /// The sample times, ascending, starting at 0.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` when no samples were stored (never the case for a
    /// successful run, which stores at least the DC point).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The voltage waveform of `node`, aligned with [`Self::times`].
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to the simulated circuit.
    pub fn node_series(&self, node: NodeId) -> Vec<f64> {
        if node.is_ground() {
            return vec![0.0; self.times.len()];
        }
        let i = node.index() - 1;
        assert!(i < self.n_node_unknowns, "node outside circuit");
        self.samples.iter().map(|s| s[i]).collect()
    }

    /// The branch-current waveform of the named voltage source (SPICE
    /// convention: positive from `+` through the source to `−`).
    pub fn branch_series(&self, source_name: &str) -> Option<Vec<f64>> {
        let pos = self.branch_names.iter().position(|n| n == source_name)?;
        let idx = self.n_node_unknowns + pos;
        Some(self.samples.iter().map(|s| s[idx]).collect())
    }

    /// The last sampled voltage at `node`.
    ///
    /// # Panics
    ///
    /// Panics if the result is empty or the node is foreign.
    pub fn final_voltage(&self, node: NodeId) -> f64 {
        if node.is_ground() {
            return 0.0;
        }
        self.samples.last().expect("nonempty result")[node.index() - 1]
    }

    /// Work counters accumulated over the whole run — the initial DC
    /// solve (when any) plus every transient Newton solve.
    pub fn solver_stats(&self) -> SolverStats {
        self.stats
    }
}

/// Integration damping: θ = 0.5 is plain trapezoid, 1.0 is backward
/// Euler. 0.55 decays plateau ringing while staying near second order.
const THETA: f64 = 0.55;

/// One dynamic (capacitive) branch tracked across steps.
struct DynamicCap {
    a: Option<usize>,
    b: Option<usize>,
    /// Capacitance for the current step, F.
    c: f64,
    /// Branch voltage at the previous accepted time point.
    v_prev: f64,
    /// Branch current at the previous accepted time point (trapezoidal
    /// history).
    i_prev: f64,
}

/// Per-MOSFET bookkeeping for the five Meyer capacitances.
struct MosCapsRef {
    elem_idx: usize,
    /// Indices into the dynamic-cap array: gs, gd, gb, db, sb.
    slots: [usize; 5],
}

/// Runs a transient analysis from `t = 0` to `tstop`.
///
/// The initial condition is the DC operating point with sources
/// evaluated at `t = 0`. Returns the sampled waveforms of every node
/// and every voltage-source branch current.
///
/// # Errors
///
/// Propagates DC failures, and reports
/// [`EngineError::StepUnderflow`] when Newton cannot converge even at
/// the minimum step size.
///
/// # Panics
///
/// Panics if `tstop` is not strictly positive and finite.
pub fn run_transient(
    circuit: &Circuit,
    tstop: f64,
    options: &SimOptions,
) -> Result<TransientResult, EngineError> {
    assert!(
        tstop > 0.0 && tstop.is_finite(),
        "tstop must be positive, got {tstop}"
    );
    let dc: DcSolution = solve_dc_at(circuit, options, 0.0)?;
    let dc_stats = dc.solver_stats();
    transient_from_state(circuit, tstop, options, dc.unknowns().to_vec(), dc_stats)
}

/// Runs a transient from user-supplied initial conditions instead of
/// the DC operating point — SPICE's `.tran … UIC` with `.ic` cards.
/// Nodes named in `ics` start at the given voltages; every other node
/// (and every branch current) starts at zero. The first time step
/// reconciles the state with the sources, exactly as SPICE's UIC does.
///
/// # Errors
///
/// As [`run_transient`], minus the DC stage (which UIC skips).
///
/// # Panics
///
/// Panics if `tstop` is not strictly positive and finite.
pub fn run_transient_uic(
    circuit: &Circuit,
    tstop: f64,
    options: &SimOptions,
    ics: &[(NodeId, f64)],
) -> Result<TransientResult, EngineError> {
    assert!(
        tstop > 0.0 && tstop.is_finite(),
        "tstop must be positive, got {tstop}"
    );
    crate::preflight(circuit, options)?;
    let mna = Mna::new(circuit);
    let mut x0 = vec![0.0; mna.n_unknowns];
    for (node, v) in ics {
        if let Some(i) = mna.idx(*node) {
            x0[i] = *v;
        }
    }
    transient_from_state(circuit, tstop, options, x0, SolverStats::default())
}

/// The stepping core shared by the DC-initialized and UIC entry
/// points. `initial_stats` carries the counters of the DC solve that
/// produced `initial` (zero for UIC) so the result reports whole-run
/// totals.
fn transient_from_state(
    circuit: &Circuit,
    tstop: f64,
    options: &SimOptions,
    initial: Vec<f64>,
    initial_stats: SolverStats,
) -> Result<TransientResult, EngineError> {
    let mna = Mna::new(circuit);
    let mut x = initial;

    // --- dynamic branch setup ---------------------------------------
    let mut caps: Vec<DynamicCap> = Vec::new();
    let mut mos_refs: Vec<MosCapsRef> = Vec::new();
    for (elem_idx, e) in circuit.elements().iter().enumerate() {
        match e {
            Element::Capacitor {
                a, b, capacitor, ..
            } if capacitor.capacitance() > 0.0 => {
                caps.push(DynamicCap {
                    a: mna.idx(*a),
                    b: mna.idx(*b),
                    c: capacitor.capacitance(),
                    v_prev: 0.0,
                    i_prev: 0.0,
                });
            }
            Element::Mosfet {
                drain,
                gate,
                source,
                bulk,
                ..
            } => {
                let (d, g, s, bk) = (
                    mna.idx(*drain),
                    mna.idx(*gate),
                    mna.idx(*source),
                    mna.idx(*bulk),
                );
                let pairs = [(g, s), (g, d), (g, bk), (d, bk), (s, bk)];
                let base = caps.len();
                for (na, nb) in pairs {
                    caps.push(DynamicCap {
                        a: na,
                        b: nb,
                        c: 0.0,
                        v_prev: 0.0,
                        i_prev: 0.0,
                    });
                }
                mos_refs.push(MosCapsRef {
                    elem_idx,
                    slots: [base, base + 1, base + 2, base + 3, base + 4],
                });
            }
            _ => {}
        }
    }
    let volt_of = |x: &[f64], n: Option<usize>| n.map_or(0.0, |i| x[i]);
    // Initialize branch voltages from the DC point.
    for cap in caps.iter_mut() {
        cap.v_prev = volt_of(&x, cap.a) - volt_of(&x, cap.b);
    }

    // One symbolic kernel for the whole run: the transient stamp
    // pattern (including every companion branch — zero-cap slots are
    // stamped as placeholders, so the pattern never changes between
    // steps) is analyzed once, and the LU storage, workspaces and
    // bypass caches persist across all time steps.
    let mut legacy_stats = SolverStats::default();
    let mut kernel = match options.kernel {
        // A scalar transient under `Batched` runs the symbolic kernel;
        // the lockstep machinery lives in `batch.rs` and only engages
        // through the multi-circuit entry point.
        KernelMode::Symbolic | KernelMode::Batched => {
            let probe: Vec<CompanionCap> = caps
                .iter()
                .map(|cap| CompanionCap {
                    a: cap.a,
                    b: cap.b,
                    geq: 0.0,
                    ieq: 0.0,
                })
                .collect();
            Some(NewtonKernel::new(&mna, options, Some(&probe)))
        }
        KernelMode::Legacy => None,
    };

    // --- breakpoints -------------------------------------------------
    let mut breakpoints: Vec<f64> = Vec::new();
    for e in circuit.elements() {
        if let Element::VoltageSource { wave, .. } | Element::CurrentSource { wave, .. } = e {
            breakpoints.extend(wave.breakpoints(tstop));
        }
    }
    breakpoints.push(tstop);
    breakpoints.retain(|&t| t > 0.0);
    breakpoints.sort_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));
    breakpoints.dedup_by(|a, b| (*a - *b).abs() < 1e-18);

    // --- stepping ----------------------------------------------------
    // One fault session for the whole stepping phase (the initial DC
    // solve, when any, ran under its own session).
    let mut faults = FaultSession::new(&options.fault);
    let mut step_attempts: u64 = 0;
    let temp_k = options.temperature.as_kelvin();
    let max_step = options.max_step.unwrap_or(tstop / 50.0);
    let mut h = options.initial_step.min(max_step);
    let mut t = 0.0f64;
    let mut use_trap = false; // first step after DC is backward Euler
    let mut bp_iter = breakpoints.iter().copied().peekable();

    let mut times = vec![0.0];
    let mut samples = vec![x.clone()];
    // History for the predictor.
    let mut x_prevprev: Option<(Vec<f64>, f64)> = None; // (solution, h of last step)

    let mut companions: Vec<CompanionCap> = Vec::with_capacity(caps.len());

    while t < tstop - 1e-21 {
        // Refresh Meyer capacitances at the last accepted solution.
        for m in &mos_refs {
            if let Element::Mosfet {
                drain,
                gate,
                source,
                bulk,
                model,
                geom,
                ..
            } = &circuit.elements()[m.elem_idx]
            {
                let vg = mna.voltage(&x, *gate);
                let vd = mna.voltage(&x, *drain);
                let vs = mna.voltage(&x, *source);
                let vb = mna.voltage(&x, *bulk);
                let mc = match kernel.as_mut() {
                    Some(k) => k.eval_caps(
                        m.elem_idx,
                        model,
                        geom,
                        MosBias::new(vg, vd, vs, vb),
                        temp_k,
                        options.bypass_vtol,
                    ),
                    None => model.caps(geom, vg, vd, vs, vb, temp_k),
                };
                let values = [mc.cgs, mc.cgd, mc.cgb, mc.cdb, mc.csb];
                for (slot, val) in m.slots.iter().zip(values) {
                    caps[*slot].c = val;
                }
            }
        }

        // Clamp the step to the next breakpoint.
        let next_bp = loop {
            match bp_iter.peek() {
                Some(&bp) if bp <= t + 1e-21 => {
                    bp_iter.next();
                }
                Some(&bp) => break Some(bp),
                None => break None,
            }
        };
        let mut h_now = h.min(max_step).min(tstop - t);
        let mut lands_on_bp = false;
        if let Some(bp) = next_bp {
            if t + h_now >= bp - 1e-21 {
                h_now = bp - t;
                lands_on_bp = true;
            }
        }

        // Inner attempt loop: shrink h_now on Newton failure or huge LTE.
        let accepted = loop {
            if h_now < options.min_step {
                return Err(EngineError::StepUnderflow { time: t });
            }
            // Deterministic timeout: every attempt (accepted or
            // rejected) draws from the step budget.
            step_attempts += 1;
            if let Some(budget) = options.step_budget {
                if step_attempts > budget {
                    return Err(EngineError::BudgetExhausted {
                        context: format!("transient stepping at t = {t:.3e} s"),
                        spent: step_attempts,
                        budget,
                    });
                }
            }
            // θ-damped trapezoid; backward Euler (θ = 1) right after
            // breakpoints/failures and when cruising on a plateau.
            let theta = if use_trap && h_now < 0.99 * max_step {
                THETA
            } else {
                1.0
            };
            // Build companion models (full-length, zero-cap slots are
            // placeholders so state updates stay index-aligned).
            companions.clear();
            for cap in &caps {
                if cap.c <= 0.0 {
                    companions.push(CompanionCap {
                        a: cap.a,
                        b: cap.b,
                        geq: 0.0,
                        ieq: 0.0,
                    });
                    continue;
                }
                let geq = cap.c / (theta * h_now);
                let ieq = geq * cap.v_prev + (1.0 - theta) / theta * cap.i_prev;
                companions.push(CompanionCap {
                    a: cap.a,
                    b: cap.b,
                    geq,
                    ieq,
                });
            }
            let ctx = StampCtx {
                time: t + h_now,
                source_scale: 1.0,
                gmin: options.gmin,
                temp_k,
                reactive: Some(&companions),
            };
            let solved = match kernel.as_mut() {
                Some(k) => k.solve(&x, &ctx, options, &mut faults),
                None => newton_solve(&mna, &x, &ctx, options, &mut legacy_stats),
            };
            match solved {
                Ok((x_new, _iters)) => {
                    if faults.fire_lte() {
                        // Injected LTE rejection: discard the converged
                        // solution and quarter the step, exactly as a
                        // real predictor disagreement below would.
                        h_now /= 4.0;
                        lands_on_bp = false;
                        continue;
                    }
                    // Predictor for LTE: linear extrapolation through the
                    // two previous points (zero-order on the first step).
                    let nvu = mna.node_unknowns();
                    let mut err_ratio = 0.0f64;
                    for i in 0..nvu {
                        let pred = match &x_prevprev {
                            Some((xp, hp)) if *hp > 0.0 => x[i] + (x[i] - xp[i]) * (h_now / hp),
                            _ => x[i],
                        };
                        let tol = options.lte_tol + options.reltol * x_new[i].abs();
                        err_ratio = err_ratio.max((x_new[i] - pred).abs() / tol);
                    }
                    // Reject wildly inaccurate steps (unless pinned to a
                    // breakpoint edge at minimum size already).
                    if err_ratio > 16.0 && h_now > options.min_step * 64.0 {
                        h_now /= 4.0;
                        lands_on_bp = false;
                        continue;
                    }
                    break Some((x_new, err_ratio));
                }
                Err(_) => {
                    h_now /= 8.0;
                    lands_on_bp = false;
                    use_trap = false; // BE is more robust
                    continue;
                }
            }
        };
        let (x_new, err_ratio) = accepted.expect("loop breaks with Some or returns");

        // Update dynamic-branch state via the companion identity
        // i_new = geq·v_new − ieq.
        for (cap, comp) in caps.iter_mut().zip(&companions) {
            let v_new = volt_of(&x_new, cap.a) - volt_of(&x_new, cap.b);
            if cap.c > 0.0 {
                cap.i_prev = comp.geq * v_new - comp.ieq;
            }
            cap.v_prev = v_new;
        }

        t += h_now;
        x_prevprev = Some((std::mem::replace(&mut x, x_new), h_now));
        times.push(t);
        samples.push(x.clone());

        // Step-size controller.
        let grow = (1.0 / (err_ratio + 0.05)).sqrt().clamp(0.3, 2.0);
        h = (h_now * grow).min(max_step);
        if lands_on_bp {
            // Restart conservatively after an input corner.
            h = options.initial_step.min(max_step);
            use_trap = false;
            x_prevprev = None;
        } else {
            use_trap = true;
        }
    }

    let branch_names = circuit
        .elements()
        .iter()
        .filter(|e| e.needs_branch_current())
        .map(|e| e.name().to_string())
        .collect();
    let mut stats = initial_stats;
    match &kernel {
        Some(k) => stats.merge(&k.stats()),
        None => stats.merge(&legacy_stats),
    }
    stats.injected_faults += faults.fired();
    Ok(TransientResult {
        times,
        samples,
        n_node_unknowns: mna.node_unknowns(),
        branch_names,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vls_device::{MosGeometry, MosModel, SourceWaveform};

    fn opts() -> SimOptions {
        SimOptions::default()
    }

    #[test]
    fn rc_charging_matches_the_analytic_exponential() {
        // 1 kΩ · 1 pF, step at t = 0.1 ns: v(t) = 1 − e^(−t/τ), τ = 1 ns.
        let mut c = Circuit::new();
        let inp = c.node("in");
        let out = c.node("out");
        c.add_vsource(
            "vin",
            inp,
            Circuit::GROUND,
            SourceWaveform::step(0.0, 1.0, 0.1e-9, 1e-12),
        );
        c.add_resistor("r1", inp, out, 1000.0);
        c.add_capacitor("c1", out, Circuit::GROUND, 1e-12);
        let res = run_transient(&c, 12e-9, &opts()).unwrap();
        let v = res.node_series(out);
        let times = res.times();
        let tau = 1e-9;
        for (k, (&tk, &vk)) in times.iter().zip(v.iter()).enumerate() {
            if tk < 0.2e-9 {
                continue;
            }
            let expect = 1.0 - (-(tk - 0.1e-9 - 0.5e-12) / tau).exp();
            assert!(
                (vk - expect).abs() < 0.02,
                "sample {k} at t={tk:.3e}: {vk} vs {expect}"
            );
        }
        // Fully charged at the end.
        assert!((res.final_voltage(out) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn rc_discharge_through_branch_current() {
        // Supply charges C through R; the branch current decays to ~0.
        let mut c = Circuit::new();
        let top = c.node("top");
        let out = c.node("out");
        c.add_vsource("v1", top, Circuit::GROUND, SourceWaveform::Dc(1.0));
        c.add_resistor("r1", top, out, 1000.0);
        c.add_capacitor("c1", out, Circuit::GROUND, 1e-12);
        let res = run_transient(&c, 10e-9, &opts()).unwrap();
        let i = res.branch_series("v1").unwrap();
        // DC init charges the cap already, so current is tiny throughout.
        assert!(i.iter().all(|ii| ii.abs() < 1e-5));
        assert!(res.branch_series("nope").is_none());
    }

    #[test]
    fn inverter_switches_and_is_sampled_densely_at_edges() {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.add_vsource("vdd", vdd, Circuit::GROUND, SourceWaveform::Dc(1.2));
        c.add_vsource(
            "vin",
            inp,
            Circuit::GROUND,
            SourceWaveform::Pulse {
                v1: 0.0,
                v2: 1.2,
                delay: 0.5e-9,
                rise: 50e-12,
                fall: 50e-12,
                width: 2e-9,
                period: f64::INFINITY,
            },
        );
        c.add_mosfet(
            "mp",
            out,
            inp,
            vdd,
            vdd,
            MosModel::ptm90_pmos(),
            MosGeometry::from_microns(0.4, 0.1),
        );
        c.add_mosfet(
            "mn",
            out,
            inp,
            Circuit::GROUND,
            Circuit::GROUND,
            MosModel::ptm90_nmos(),
            MosGeometry::from_microns(0.2, 0.1),
        );
        c.add_capacitor("cl", out, Circuit::GROUND, 1e-15);
        let res = run_transient(&c, 5e-9, &opts()).unwrap();
        let v = res.node_series(out);
        let t = res.times();
        // Starts high (input low).
        assert!((v[0] - 1.2).abs() < 0.02, "initial output {}", v[0]);
        // Low while the input pulse is high (sample mid-pulse).
        let mid = t.iter().position(|&tt| tt > 1.5e-9).unwrap();
        assert!(v[mid] < 0.05, "mid-pulse output {}", v[mid]);
        // Recovers high after the pulse.
        assert!((res.final_voltage(out) - 1.2).abs() < 0.02);
        // Breakpoint at the pulse start is hit exactly.
        assert!(t.iter().any(|&tt| (tt - 0.5e-9).abs() < 1e-21));
    }

    #[test]
    fn capacitive_divider_respects_charge_conservation() {
        // Two series caps driven by a step: the middle node lands at the
        // capacitive divider ratio.
        let mut c = Circuit::new();
        let inp = c.node("in");
        let mid = c.node("mid");
        c.add_vsource(
            "vin",
            inp,
            Circuit::GROUND,
            SourceWaveform::step(0.0, 1.0, 1e-9, 10e-12),
        );
        c.add_capacitor("c1", inp, mid, 3e-15);
        c.add_capacitor("c2", mid, Circuit::GROUND, 1e-15);
        // Bleed resistor so DC is well defined; large enough not to
        // discharge much within the window.
        c.add_resistor("rb", mid, Circuit::GROUND, 1e12);
        let res = run_transient(&c, 2e-9, &opts()).unwrap();
        let v_end = res.final_voltage(mid);
        assert!((v_end - 0.75).abs() < 0.02, "divider landed at {v_end}");
    }

    #[test]
    fn result_accessors_are_consistent() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("v", a, Circuit::GROUND, SourceWaveform::Dc(1.0));
        c.add_resistor("r", a, Circuit::GROUND, 1000.0);
        let res = run_transient(&c, 1e-9, &opts()).unwrap();
        assert!(!res.is_empty());
        assert_eq!(res.len(), res.times().len());
        assert_eq!(res.node_series(a).len(), res.len());
        assert_eq!(res.node_series(Circuit::GROUND), vec![0.0; res.len()]);
        assert_eq!(res.times()[0], 0.0);
        let t_last = *res.times().last().unwrap();
        assert!((t_last - 1e-9).abs() < 1e-18);
    }

    #[test]
    fn sparse_and_dense_paths_agree() {
        // Force the sparse solver on a MOSFET circuit and compare the
        // full waveform against the dense default: the two linear-
        // algebra paths must produce the same physics.
        use vls_device::{MosGeometry, MosModel};
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.add_vsource("vdd", vdd, Circuit::GROUND, SourceWaveform::Dc(1.2));
        c.add_vsource(
            "vin",
            inp,
            Circuit::GROUND,
            SourceWaveform::Pulse {
                v1: 0.0,
                v2: 1.2,
                delay: 0.3e-9,
                rise: 50e-12,
                fall: 50e-12,
                width: 1.5e-9,
                period: f64::INFINITY,
            },
        );
        c.add_mosfet(
            "mp",
            out,
            inp,
            vdd,
            vdd,
            MosModel::ptm90_pmos(),
            MosGeometry::from_microns(0.4, 0.1),
        );
        c.add_mosfet(
            "mn",
            out,
            inp,
            Circuit::GROUND,
            Circuit::GROUND,
            MosModel::ptm90_nmos(),
            MosGeometry::from_microns(0.2, 0.1),
        );
        c.add_capacitor("cl", out, Circuit::GROUND, 1e-15);

        // Every (kernel × linear path) combination must produce the
        // same accepted-step trajectory (identical Newton behaviour)
        // and matching voltages throughout.
        let dense = run_transient(&c, 4e-9, &opts()).unwrap();
        let variants = [
            SimOptions {
                sparse_threshold: 0,
                ..opts()
            },
            SimOptions {
                kernel: KernelMode::Legacy,
                ..opts()
            },
            SimOptions {
                kernel: KernelMode::Legacy,
                sparse_threshold: 0,
                ..opts()
            },
        ];
        let vd = dense.node_series(out);
        for (v, o) in variants.iter().enumerate() {
            let other = run_transient(&c, 4e-9, o).unwrap();
            assert_eq!(dense.len(), other.len(), "variant {v}: steps diverged");
            let vs = other.node_series(out);
            for (k, (a, b)) in vd.iter().zip(&vs).enumerate() {
                assert!((a - b).abs() < 1e-9, "variant {v}, sample {k}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn rc_charging_conserves_energy() {
        // Step-charging a capacitor through a resistor: the source
        // delivers C·V² in total — half stored, half dissipated. The
        // integral of the branch current over the run must equal the
        // delivered charge C·V to ~1 %, a direct check on the
        // companion-model integration accuracy.
        let mut c = Circuit::new();
        let inp = c.node("in");
        let out = c.node("out");
        c.add_vsource(
            "vin",
            inp,
            Circuit::GROUND,
            SourceWaveform::step(0.0, 1.0, 0.1e-9, 1e-12),
        );
        c.add_resistor("r1", inp, out, 1000.0);
        c.add_capacitor("c1", out, Circuit::GROUND, 1e-12);
        let res = run_transient(&c, 12e-9, &opts()).unwrap();
        let t = res.times();
        let i = res.branch_series("vin").unwrap();
        // Trapezoidal integral of the delivered current (−branch).
        let mut q = 0.0;
        for k in 1..t.len() {
            q += 0.5 * (-i[k] - i[k - 1]) * (t[k] - t[k - 1]);
        }
        let expect = 1e-12 * 1.0; // C·V
        assert!(
            (q - expect).abs() < 0.01 * expect,
            "delivered charge {q:.4e} vs C*V {expect:.4e}"
        );
    }

    #[test]
    fn uic_starts_from_the_given_state() {
        // RC discharge from a user-set initial condition: no DC pass,
        // v(out) decays from the IC value with tau = RC.
        let mut c = Circuit::new();
        let out = c.node("out");
        c.add_resistor("r1", out, Circuit::GROUND, 1000.0);
        c.add_capacitor("c1", out, Circuit::GROUND, 1e-12);
        // A reference source elsewhere keeps the netlist non-degenerate.
        let a = c.node("a");
        c.add_vsource("v1", a, Circuit::GROUND, SourceWaveform::Dc(1.0));
        c.add_resistor("r2", a, Circuit::GROUND, 1e6);
        let res = run_transient_uic(&c, 5e-9, &SimOptions::default(), &[(out, 1.0)]).unwrap();
        let v = res.node_series(out);
        let t = res.times();
        assert!((v[0] - 1.0).abs() < 1e-12, "IC not applied: {}", v[0]);
        // Check the analytic decay at a mid sample.
        let k = t.iter().position(|&tt| tt >= 1e-9).unwrap();
        let expect = (-t[k] / 1e-9_f64).exp();
        assert!((v[k] - expect).abs() < 0.03, "decay {} vs {expect}", v[k]);
        // Without the IC the node would start (and stay) at zero.
        let res0 = run_transient_uic(&c, 1e-9, &SimOptions::default(), &[]).unwrap();
        assert!(res0.node_series(out)[0].abs() < 1e-12);
    }

    #[test]
    fn uic_biases_a_latch_into_the_chosen_state() {
        use vls_device::{MosGeometry, MosModel};
        // Cross-coupled inverters: UIC picks which stable state wins.
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let q = c.node("q");
        let qb = c.node("qb");
        c.add_vsource("vdd", vdd, Circuit::GROUND, SourceWaveform::Dc(1.2));
        for (i, (inp, out)) in [(q, qb), (qb, q)].into_iter().enumerate() {
            c.add_mosfet(
                &format!("mp{i}"),
                out,
                inp,
                vdd,
                vdd,
                MosModel::ptm90_pmos(),
                MosGeometry::from_microns(0.4, 0.1),
            );
            c.add_mosfet(
                &format!("mn{i}"),
                out,
                inp,
                Circuit::GROUND,
                Circuit::GROUND,
                MosModel::ptm90_nmos(),
                MosGeometry::from_microns(0.2, 0.1),
            );
        }
        let res = run_transient_uic(
            &c,
            3e-9,
            &SimOptions::default(),
            &[(q, 1.2), (qb, 0.0), (vdd, 1.2)],
        )
        .unwrap();
        assert!(
            (res.final_voltage(q) - 1.2).abs() < 0.02,
            "q = {}",
            res.final_voltage(q)
        );
        assert!(
            res.final_voltage(qb).abs() < 0.02,
            "qb = {}",
            res.final_voltage(qb)
        );
    }

    #[test]
    #[should_panic(expected = "tstop must be positive")]
    fn zero_tstop_panics() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.add_vsource("v", a, Circuit::GROUND, SourceWaveform::Dc(1.0));
        c.add_resistor("r", a, Circuit::GROUND, 1000.0);
        let _ = run_transient(&c, 0.0, &opts());
    }
}
