//! A DVS scenario from the paper's introduction: two SoC blocks whose
//! supplies move at runtime (dynamic voltage scaling), connected by a
//! single SS-TVS. The example sweeps the sender's supply through a DVS
//! schedule while the receiver stays fixed, and verifies the *same*
//! cell translates correctly at every operating point — the property
//! that would otherwise require a control signal and a pair of
//! shifters.
//!
//! ```text
//! cargo run --release --example dvs_domain_crossing
//! ```

use sstvs::cells::{ShifterKind, VoltagePair};
use sstvs::flows::{characterize, CharacterizeOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let options = CharacterizeOptions::default();
    // The receiving block runs at a fixed 1.0 V; the sending block's
    // DVS governor moves between retention and turbo.
    let vddo = 1.0;
    let dvs_schedule = [0.8, 0.9, 1.0, 1.1, 1.2, 1.3, 1.4];

    println!("receiver fixed at VDDO = {vddo} V; sweeping sender VDDI");
    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>12}",
        "VDDI", "direction", "rise delay", "fall delay", "leak (high)"
    );
    for vddi in dvs_schedule {
        let domains = VoltagePair::new(vddi, vddo);
        let m = characterize(&ShifterKind::sstvs(), domains, &options)?;
        assert!(m.functional, "SS-TVS failed at VDDI = {vddi} V");
        let dir = if domains.is_up_conversion() {
            "up"
        } else {
            "down/eq"
        };
        println!(
            "{vddi:>6} {dir:>10} {:>12} {:>12} {:>12}",
            m.delay_rise.to_string(),
            m.delay_fall.to_string(),
            m.leakage_high.to_string()
        );
    }
    println!("every DVS point translated with the same cell and no control signal");
    Ok(())
}
