//! Drive the simulator from a SPICE-style deck instead of the builder
//! API: parse a small two-inverter netlist with a custom model card,
//! run the analyses the deck requests, and print the waveform.
//!
//! ```text
//! cargo run --release --example spice_deck
//! ```

use sstvs::engine::{run_transient, solve_dc, SimOptions};
use sstvs::netlist::{parse_deck, AnalysisCard};
use sstvs::waveform::{ascii_chart, Waveform};

const DECK: &str = "\
two-inverter buffer with a custom model card
* a slightly slow NMOS flavor
.model slow_nmos nmos vto=0.42 kp=4.5e-4
Vdd vdd 0 DC 1.2
Vin in 0 PULSE(0 1.2 0.5n 50p 50p 2n 6n)
.subckt inv a y vdd
Mp y a vdd vdd ptm90_pmos W=0.4u L=0.1u
Mn y a 0 0 slow_nmos W=0.2u L=0.1u
.ends
X1 in mid vdd inv
X2 mid out vdd inv
Cl out 0 2fF
.op
.tran 10p 8n
.end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let deck = parse_deck(DECK)?;
    println!(
        "parsed deck: {:?} ({} elements)",
        deck.title,
        deck.circuit.elements().len()
    );
    let options = SimOptions::default();
    let out = deck.circuit.find_node("out").expect("deck defines `out`");

    for analysis in &deck.analyses {
        match analysis {
            AnalysisCard::Op => {
                let sol = solve_dc(&deck.circuit, &options)?;
                println!(
                    ".op: V(out) = {:.4} V (input low, buffer passes low)",
                    sol.voltage(out)
                );
            }
            AnalysisCard::Tran { tstop, .. } => {
                let res = run_transient(&deck.circuit, *tstop, &options)?;
                let w = Waveform::new(res.times().to_vec(), res.node_series(out))?;
                println!(".tran to {:.1} ns:", tstop * 1e9);
                print!("{}", ascii_chart(&[("V(out)", &w)], 90, 6));
            }
            _ => unreachable!("deck only requests .op and .tran"),
        }
    }
    Ok(())
}
