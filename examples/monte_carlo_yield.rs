//! Process-variation yield analysis: the paper's Monte Carlo protocol
//! (W, L and VT of every cell device varied independently, σ = 3.34 %)
//! run through the resilient ensemble path — the same code the
//! `vls-opt` yield objective drives. Per-trial seeds derive from one
//! master seed, non-converging trials walk the escalation ladder
//! before being booked (with a failure class) instead of silently
//! dropping, and the worker count (`VLS_JOBS` or all cores) never
//! changes a single number.
//!
//! ```text
//! cargo run --release --example monte_carlo_yield [trials]
//! VLS_JOBS=1 cargo run --release --example monte_carlo_yield   # same output
//! VLS_BATCH=8 cargo run --release --example monte_carlo_yield  # lockstep lanes
//! ```
//!
//! `VLS_BATCH=K` (K > 1) runs each trial's base attempt through the
//! lane-batched lockstep path — K trials share one compiled sparsity
//! pattern, SoA device evaluation and a multi-lane LU — with escalated
//! retries de-batching to the scalar ladder. Pass verdicts are
//! identical; only the wall clock moves.

use sstvs::cells::{ShifterKind, VoltagePair};
use sstvs::flows::CharacterizeOptions;
use sstvs::opt::{yield_ensemble, YieldSpec};
use sstvs::runner::RunnerOptions;

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25);
    let mut options = CharacterizeOptions::default();
    // Lane width for the batched Monte Carlo path; 1 (the default)
    // keeps the scalar per-trial ensemble.
    options.sim.batch_lanes = std::env::var("VLS_BATCH")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&k| k >= 1)
        .unwrap_or(1);
    let domains = VoltagePair::low_to_high();
    // RunnerOptions::default() honors VLS_JOBS, falling back to all
    // cores — exactly what the optimizer's yield mode does.
    let runner = RunnerOptions::default();
    let spec = YieldSpec {
        trials,
        // Spec yield: functional AND under the worst-edge delay /
        // worst-state leakage targets (loose enough that the nominal
        // cell passes; process outliers fail them).
        max_delay: Some(400e-12),
        max_leakage: Some(20e-9),
        ..YieldSpec::default()
    };

    println!(
        "Monte Carlo, {trials} trials, VDDI = 0.8 V -> VDDO = 1.2 V, {} worker(s), {} lane(s)",
        runner.effective_jobs(),
        options.sim.batch_lanes
    );
    println!(
        "targets: delay <= 400 ps, leakage <= 20 nA, {} escalated retr(ies) per trial",
        spec.retries
    );
    for kind in [ShifterKind::sstvs(), ShifterKind::combined()] {
        let y = yield_ensemble(&kind, domains, &options, &spec, &runner);
        println!("{}:", kind.label());
        println!(
            "  spec yield     : {}/{} ({:.1}%)",
            y.passed,
            y.trials,
            100.0 * y.rate()
        );
        println!("  sim failures   : {}", y.sim_failures);
        if y.recovered.is_empty() {
            println!("  recovered      : none needed");
        } else {
            let listed: Vec<String> = y
                .recovered
                .iter()
                .map(|(trial, rung)| format!("#{trial}@rung{rung}"))
                .collect();
            println!(
                "  recovered      : {} trial(s) via escalation ({})",
                y.recovered.len(),
                listed.join(", ")
            );
        }
        for (class, count) in &y.failure_classes {
            println!("  failure class  : {class} x{count}");
        }
    }
    println!("(the paper's Tables 3/4 use 1000 trials; see `cargo run -p vls-bench --bin table3`)");
}
