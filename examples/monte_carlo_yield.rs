//! Process-variation yield analysis: the paper's Monte Carlo protocol
//! (W, L and VT of every cell device varied independently, σ = 3.34 %)
//! on a reduced trial count, reporting µ/σ for each metric and the
//! functional yield.
//!
//! ```text
//! cargo run --release --example monte_carlo_yield [trials]
//! ```

use sstvs::cells::{ShifterKind, VoltagePair};
use sstvs::flows::experiments::tables::{monte_carlo_stats, DEFAULT_MC_SEED};
use sstvs::flows::CharacterizeOptions;
use sstvs::runner::RunnerOptions;
use sstvs::units::fmt_eng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25);
    let options = CharacterizeOptions::default();
    let domains = VoltagePair::low_to_high();

    println!("Monte Carlo, {trials} trials, VDDI = 0.8 V -> VDDO = 1.2 V");
    for kind in [ShifterKind::sstvs(), ShifterKind::combined()] {
        let s = monte_carlo_stats(
            &kind,
            domains,
            &options,
            trials,
            DEFAULT_MC_SEED,
            &RunnerOptions::default(),
        )?;
        println!("{}:", kind.label());
        println!("  yield          : {}/{}", s.passed, s.trials);
        for (name, st, unit) in [
            ("delay rise", s.delay_rise, "s"),
            ("delay fall", s.delay_fall, "s"),
            ("leakage high", s.leakage_high, "A"),
            ("leakage low", s.leakage_low, "A"),
        ] {
            println!(
                "  {name:<15}: mu = {:>10}  sigma = {:>10}  (sigma/mu {:.1}%)",
                fmt_eng(st.mean, unit),
                fmt_eng(st.std, unit),
                100.0 * st.std / st.mean.abs().max(1e-30)
            );
        }
    }
    println!("(the paper's Tables 3/4 use 1000 trials; see `cargo run -p vls-bench --bin table3`)");
    Ok(())
}
