//! AC small-signal analysis tour: the frequency response of a
//! resistively loaded common-source stage and of an RC interconnect,
//! rendered as Bode-style ASCII output.
//!
//! ```text
//! cargo run --release --example frequency_response
//! ```

use sstvs::device::{MosGeometry, MosModel, SourceWaveform};
use sstvs::engine::{log_space, run_ac, SimOptions};
use sstvs::netlist::Circuit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- amplifier: NMOS + 10 kΩ load, biased mid-transition ----------
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let gate = c.node("g");
    let drain = c.node("d");
    c.add_vsource("vdd", vdd, Circuit::GROUND, SourceWaveform::Dc(1.2));
    c.add_vsource("vg", gate, Circuit::GROUND, SourceWaveform::Dc(0.6));
    c.add_resistor("rl", vdd, drain, 10_000.0);
    c.add_mosfet(
        "m1",
        drain,
        gate,
        Circuit::GROUND,
        Circuit::GROUND,
        MosModel::ptm90_nmos(),
        MosGeometry::from_microns(1.0, 0.1),
    );
    c.add_capacitor("cl", drain, Circuit::GROUND, 5e-15);

    let freqs = log_space(1e6, 1e11, 4);
    let opts = SimOptions::default();
    let ac = run_ac(&c, "vg", &freqs, &opts)?;

    println!("common-source stage, gain at V(d) per volt on the gate:");
    println!("{:>12} {:>10} {:>10}", "freq", "gain dB", "phase deg");
    let gains = ac.gain_db(drain);
    let phases = ac.phase_deg(drain);
    for ((f, g), p) in freqs.iter().zip(&gains).zip(&phases) {
        let bar = "#".repeat(((g + 10.0).max(0.0) * 1.5) as usize);
        println!("{f:>12.3e} {g:>10.2} {p:>10.1}  {bar}");
    }
    if let Some(bw) = ac.bandwidth(drain) {
        println!("-3 dB bandwidth: {bw:.3e} Hz");
    }

    // --- interconnect: 1 kΩ / 50 fF wire model ------------------------
    let mut w = Circuit::new();
    let a = w.node("a");
    let b = w.node("b");
    w.add_vsource("vin", a, Circuit::GROUND, SourceWaveform::Dc(0.0));
    w.add_resistor("rw", a, b, 1000.0);
    w.add_capacitor("cw", b, Circuit::GROUND, 50e-15);
    let ac2 = run_ac(&w, "vin", &freqs, &opts)?;
    let fc = ac2.bandwidth(b).expect("corner inside range");
    let expect = 1.0 / (2.0 * std::f64::consts::PI * 1000.0 * 50e-15);
    println!(
        "\nRC interconnect corner: measured {fc:.3e} Hz vs analytic 1/(2piRC) = {expect:.3e} Hz"
    );
    Ok(())
}
