//! Quickstart: build the paper's SS-TVS, shift a 0.8 V pulse into a
//! 1.2 V domain, and print the measured metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sstvs::cells::{ShifterKind, VoltagePair};
use sstvs::flows::{characterize, CharacterizeOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's headline corner: a 0.8 V block talking to a 1.2 V
    // block, with only the 1.2 V supply routed to the shifter.
    let domains = VoltagePair::low_to_high();
    let options = CharacterizeOptions::default();

    println!(
        "characterizing the SS-TVS at VDDI = {} V, VDDO = {} V ...",
        domains.vddi, domains.vddo
    );
    let m = characterize(&ShifterKind::sstvs(), domains, &options)?;

    println!("  functional        : {}", m.functional);
    println!("  delay (out rising): {}", m.delay_rise);
    println!("  delay (out falling): {}", m.delay_fall);
    println!("  switching power   : {} / {}", m.power_rise, m.power_fall);
    println!("  leakage out-high  : {}", m.leakage_high);
    println!("  leakage out-low   : {}", m.leakage_low);

    // The same cell, same code path, for the opposite direction — the
    // "true" in SS-TVS.
    let m2 = characterize(&ShifterKind::sstvs(), VoltagePair::high_to_low(), &options)?;
    println!(
        "reverse direction (1.2 V -> 0.8 V): functional = {}",
        m2.functional
    );
    Ok(())
}
