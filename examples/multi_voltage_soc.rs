//! The paper's Figure 3 system: four SoC modules at 0.8 / 1.0 / 1.2 /
//! 1.4 V, every ordered domain pair bridged by one SS-TVS powered only
//! by the receiving rail. One transient validates all twelve
//! crossings — up-conversions, down-conversions and near-equal rails —
//! with no control signals and no foreign supply routing.
//!
//! ```text
//! cargo run --release --example multi_voltage_soc
//! ```

use sstvs::cells::MultiVoltageSystem;
use sstvs::engine::{run_transient, SimOptions};
use sstvs::waveform::Waveform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sys = MultiVoltageSystem::paper_example();
    let built = sys.build_full_mesh();
    println!(
        "built {} crossings over domains {:?} ({} elements, {} nodes)",
        built.crossings.len(),
        sys.domains(),
        built.circuit.elements().len(),
        built.circuit.node_count()
    );

    let t_end = sys.two_cycle_window();
    println!("simulating {} ns of all crossings at once ...", t_end * 1e9);
    let res = run_transient(&built.circuit, t_end, &SimOptions::default())?;

    println!(
        "{:>6} {:>6} {:>10} {:>9} {:>9} {:>5}",
        "from", "to", "direction", "V(high)", "V(low)", "ok"
    );
    let mut all_ok = true;
    for cr in &built.crossings {
        let (vi, vo) = (sys.domains()[cr.from], sys.domains()[cr.to]);
        let w = Waveform::new(res.times().to_vec(), res.node_series(cr.rx))?;
        let tail = w.slice(sys.stimulus_period(), t_end);
        let ok = tail.max_value() > 0.95 * vo && tail.min_value() < 0.05 * vo;
        all_ok &= ok;
        let dir = if vi < vo { "up" } else { "down" };
        println!(
            "{:>5}V {:>5}V {:>10} {:>8.3}V {:>8.3}V {:>5}",
            vi,
            vo,
            dir,
            tail.max_value(),
            tail.min_value(),
            ok
        );
    }
    println!(
        "all twelve domain crossings translate with a single-cell, single-supply, \
         control-free shifter: {all_ok}"
    );
    Ok(())
}
