#!/usr/bin/env bash
# CI gate: formatting, lints (warnings are errors), full test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

# The runner suites must hold on a single worker too: the determinism
# contract says sharding never changes a result, so the serial path is
# a first-class configuration, not a degenerate one. VLS_JOBS=1 pins
# every RunnerOptions::default() to one worker; the default-parallelism
# pass already ran as part of the workspace suite above.
echo "==> cargo test (runner suites, VLS_JOBS=1)"
VLS_JOBS=1 cargo test -q --test runner_determinism --test golden_metrics_mc

# The charlib leg: build a smoke grid through the CLI, prove the
# artifact round-trips (second run loads instead of rebuilding and the
# bytes don't move), serve one query from it, then run the surrogate
# accuracy/golden/artifact suites in both the serial and the
# default-parallelism configuration — the fill must be bit-identical
# either way.
echo "==> charlib smoke grid (characterize --smoke, artifact round trip)"
CHARLIB_TMP="$(mktemp -d)"
trap 'rm -rf "$CHARLIB_TMP"' EXIT
cargo run -q --release -p vls-cli --bin vls-spice -- \
    characterize --smoke --out "$CHARLIB_TMP/smoke.json"
cp "$CHARLIB_TMP/smoke.json" "$CHARLIB_TMP/first.json"
cargo run -q --release -p vls-cli --bin vls-spice -- \
    characterize --smoke --out "$CHARLIB_TMP/smoke.json" \
    | grep -q "status: Loaded"
cmp "$CHARLIB_TMP/first.json" "$CHARLIB_TMP/smoke.json"
cargo run -q --release -p vls-cli --bin vls-spice -- \
    query --lib "$CHARLIB_TMP/smoke.json" --vddi 0.8 --vddo 1.2 \
    | grep -q "source: Table"

echo "==> cargo test (charlib suites, VLS_JOBS=1 and default jobs)"
VLS_JOBS=1 cargo test -q --test charlib_surrogate --test charlib_golden --test charlib_artifact
cargo test -q --test charlib_surrogate --test charlib_golden --test charlib_artifact

# The Newton-kernel leg: the symbolic/legacy equivalence suite must
# hold on one worker and at default parallelism (the kernel is pure
# per-circuit state, so sharding must not change a single bit), then
# the release-mode speedup bench enforces its ≥2x floor on the SoC
# mesh with smoke-sized workloads and refreshes BENCH_newton.json.
echo "==> cargo test (newton kernel equivalence, VLS_JOBS=1 and default jobs)"
VLS_JOBS=1 cargo test -q --test newton_kernel
cargo test -q --test newton_kernel

echo "==> newton_speedup --smoke (release, 2x floor enforced)"
cargo run -q --release -p vls-bench --bin newton_speedup -- --smoke

echo "==> cargo test --release"
cargo test -q --release

echo "CI green."
