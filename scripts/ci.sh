#!/usr/bin/env bash
# CI gate: formatting, lints (warnings are errors), full test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

# The runner suites must hold on a single worker too: the determinism
# contract says sharding never changes a result, so the serial path is
# a first-class configuration, not a degenerate one. VLS_JOBS=1 pins
# every RunnerOptions::default() to one worker; the default-parallelism
# pass already ran as part of the workspace suite above.
echo "==> cargo test (runner suites, VLS_JOBS=1)"
VLS_JOBS=1 cargo test -q --test runner_determinism --test golden_metrics_mc

echo "==> cargo test --release"
cargo test -q --release

echo "CI green."
