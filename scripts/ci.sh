#!/usr/bin/env bash
# CI gate: formatting, lints (warnings are errors), full test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

# The runner suites must hold on a single worker too: the determinism
# contract says sharding never changes a result, so the serial path is
# a first-class configuration, not a degenerate one. VLS_JOBS=1 pins
# every RunnerOptions::default() to one worker; the default-parallelism
# pass already ran as part of the workspace suite above.
echo "==> cargo test (runner suites, VLS_JOBS=1)"
VLS_JOBS=1 cargo test -q --test runner_determinism --test golden_metrics_mc

# The charlib leg: build a smoke grid through the CLI, prove the
# artifact round-trips (second run loads instead of rebuilding and the
# bytes don't move), serve one query from it, then run the surrogate
# accuracy/golden/artifact suites in both the serial and the
# default-parallelism configuration — the fill must be bit-identical
# either way.
echo "==> charlib smoke grid (characterize --smoke, artifact round trip)"
CHARLIB_TMP="$(mktemp -d)"
trap 'rm -rf "$CHARLIB_TMP"' EXIT
cargo run -q --release -p vls-cli --bin vls-spice -- \
    characterize --smoke --out "$CHARLIB_TMP/smoke.json"
cp "$CHARLIB_TMP/smoke.json" "$CHARLIB_TMP/first.json"
cargo run -q --release -p vls-cli --bin vls-spice -- \
    characterize --smoke --out "$CHARLIB_TMP/smoke.json" \
    | grep -q "status: Loaded"
cmp "$CHARLIB_TMP/first.json" "$CHARLIB_TMP/smoke.json"
cargo run -q --release -p vls-cli --bin vls-spice -- \
    query --lib "$CHARLIB_TMP/smoke.json" --vddi 0.8 --vddo 1.2 \
    | grep -q "source: Table"

echo "==> cargo test (charlib suites, VLS_JOBS=1 and default jobs)"
VLS_JOBS=1 cargo test -q --test charlib_surrogate --test charlib_golden --test charlib_artifact
cargo test -q --test charlib_surrogate --test charlib_golden --test charlib_artifact

# The Newton-kernel leg: the symbolic/legacy equivalence suite must
# hold on one worker and at default parallelism (the kernel is pure
# per-circuit state, so sharding must not change a single bit), then
# the release-mode speedup bench enforces its ≥2x floor on the SoC
# mesh with smoke-sized workloads and refreshes BENCH_newton.json.
echo "==> cargo test (newton kernel equivalence, VLS_JOBS=1 and default jobs)"
VLS_JOBS=1 cargo test -q --test newton_kernel
cargo test -q --test newton_kernel

echo "==> newton_speedup --smoke (release, 2x floor enforced)"
cargo run -q --release -p vls-bench --bin newton_speedup -- --smoke

# The fault leg: the soak suite (256-trial injected-fault ensemble,
# taxonomy/replay determinism, counter invariants, fuzzed
# perturbations) must hold serial and at default parallelism, then a
# release-mode smoke soak drives the CLI with a fault plan armed —
# the base attempt must fail with a replay line, and the retry ladder
# must recover the same deck.
echo "==> cargo test (fault soak, VLS_JOBS=1 and default jobs)"
VLS_JOBS=1 cargo test -q --test fault_soak
cargo test -q --test fault_soak

echo "==> fault-plan smoke soak (release, CLI inject + retry recovery)"
FAULT_DECK="$CHARLIB_TMP/fault_smoke.sp"
cat > "$FAULT_DECK" <<'EOF'
ci fault smoke deck
Vdd vdd 0 1.2
Vin in 0 PULSE(0 1.2 0.5n 50p 50p 2n 6n)
Mp out in vdd vdd ptm90_pmos W=0.4u L=0.1u
Mn out in 0 0 ptm90_nmos W=0.2u L=0.1u
Cl out 0 1fF
.op
.tran 10p 4n
.end
EOF
FAULT_PLAN='newton@warm,newton@plain,newton@gmin,newton@source'
if cargo run -q --release -p vls-cli --bin vls-spice -- \
    "$FAULT_DECK" --fault-plan "$FAULT_PLAN" --seed 0xf5 \
    2> "$CHARLIB_TMP/fault_err.txt"; then
    echo "fault-plan run unexpectedly succeeded" >&2
    exit 1
fi
grep -q "replay:" "$CHARLIB_TMP/fault_err.txt"
cargo run -q --release -p vls-cli --bin vls-spice -- \
    "$FAULT_DECK" --fault-plan "$FAULT_PLAN" --seed 0xf5 --retry 3 \
    | grep -q "recovered at escalation rung"

# The check leg: clippy scoped to the checker crate (it is the newest
# surface and must stay warning-free on its own), the chip-scale smoke
# benchmark (clean 60/240-instance floorplans, worker-count byte
# identity, 1.5x hierarchical speedup floor, all five MSV rules on the
# mutated chip, refreshes BENCH_check.json), then a CLI baseline
# round-trip: record the fingerprints of a known-bad deck (exit 1),
# re-check against the recording and the gate must pass with the
# findings suppressed.
echo "==> cargo clippy -p vls-check (deny warnings)"
cargo clippy -p vls-check --all-targets -- -D warnings

echo "==> check_scale --smoke (release, speedup floor + baseline round trip)"
cargo run -q --release -p vls-bench --bin check_scale -- --smoke

echo "==> vls-spice check baseline round trip"
CHECK_DECK="$CHARLIB_TMP/check_baseline.sp"
cat > "$CHECK_DECK" <<'EOF'
ci baseline deck
V1 a 0 1.2
V2 a 0 1.0
R1 a 0 1k
.op
.end
EOF
if cargo run -q --release -p vls-cli --bin vls-spice -- \
    check "$CHECK_DECK" --record-baseline "$CHARLIB_TMP/check_base.json" \
    > /dev/null; then
    echo "check unexpectedly passed while recording the baseline" >&2
    exit 1
fi
cargo run -q --release -p vls-cli --bin vls-spice -- \
    check "$CHECK_DECK" --baseline "$CHARLIB_TMP/check_base.json" \
    | grep -q "suppressed"

# The serve leg: clippy scoped to the daemon crate, the protocol and
# soak suites on one worker and at default parallelism (the soak
# demands byte-identical bodies and balanced counters either way),
# the release-mode load generator with its 500-QPS floor (reusing the
# smoke artifact built above, refreshes BENCH_serve.json), then a CLI
# smoke: validate the deployment with --check-config, boot a real
# daemon on an ephemeral port, drive it over the wire with the load
# generator's attach probe, and require a clean shutdown.
echo "==> cargo clippy -p vls-serve (deny warnings)"
cargo clippy -p vls-serve --all-targets -- -D warnings

echo "==> cargo test (serve protocol + soak, VLS_JOBS=1 and default jobs)"
VLS_JOBS=1 cargo test -q --test serve_api --test serve_soak
cargo test -q --test serve_api --test serve_soak

echo "==> serve_qps --smoke (release, 500-QPS floor enforced)"
cargo run -q --release -p vls-bench --bin serve_qps -- \
    --smoke --lib "$CHARLIB_TMP/smoke.json"

echo "==> vls-spice serve smoke (check-config, boot, attach probe, clean shutdown)"
cargo run -q --release -p vls-cli --bin vls-spice -- \
    serve --lib "$CHARLIB_TMP/smoke.json" --check-config \
    | grep -q "serve config: OK"
SERVE_LOG="$CHARLIB_TMP/serve.log"
cargo run -q --release -p vls-cli --bin vls-spice -- \
    serve --lib "$CHARLIB_TMP/smoke.json" --port 0 > "$SERVE_LOG" &
SERVE_PID=$!
SERVE_ADDR=""
for _ in $(seq 1 100); do
    SERVE_ADDR="$(sed -n 's/^vls-serve listening on //p' "$SERVE_LOG")"
    [ -n "$SERVE_ADDR" ] && break
    sleep 0.1
done
[ -n "$SERVE_ADDR" ] || { echo "daemon never reported its address" >&2; exit 1; }
cargo run -q --release -p vls-bench --bin serve_qps -- \
    --attach "$SERVE_ADDR" --shutdown
wait "$SERVE_PID"
grep -q "clean shutdown" "$SERVE_LOG"

# The opt leg: clippy scoped to the optimizer crate, the regression
# suite on one worker and at default parallelism (the outcome —
# trajectory, accounting, verdicts, rendered JSON — must be
# bit-identical either way), then the release-mode convergence bench
# with smoke sizing: it enforces the evaluation budget, the accepted
# optimum's surrogate-vs-exact gap tolerance and the 50x per-eval
# speedup floor, and refreshes BENCH_opt.json.
echo "==> cargo clippy -p vls-opt (deny warnings)"
cargo clippy -p vls-opt --all-targets -- -D warnings

echo "==> cargo test (opt regression, VLS_JOBS=1 and default jobs)"
VLS_JOBS=1 cargo test -q --test opt_regression
cargo test -q --test opt_regression

echo "==> opt_convergence --smoke (release, budget + gap + 50x floors enforced)"
cargo run -q --release -p vls-bench --bin opt_convergence -- --smoke

# The batched-MC leg: the lockstep lane suite on one worker and at
# default parallelism (group composition depends only on (trials, K),
# so the worker grid must be bit-identical), then the release-mode
# lane-scaling bench: K=1 must match the scalar featured path
# statistic for statistic, cross-K statistics must hold inside the
# shared-grid band, and the ≥2x floor is enforced at K>=8 (refreshes
# BENCH_mc_batched.json).
echo "==> cargo test (batched MC, VLS_JOBS=1 and default jobs)"
VLS_JOBS=1 cargo test -q --test mc_batched
cargo test -q --test mc_batched

echo "==> mc_batched --smoke (release, 2x floor at K>=8 enforced)"
cargo run -q --release -p vls-bench --bin mc_batched -- --smoke

# The structured-solve leg: clippy scoped to the numerics crate (the
# ordering and Schur machinery live there and must stay warning-free
# on their own), the golden suite on one worker and at default
# parallelism (island solves must be bit-identical at any worker
# count), then the release-mode scaling smoke: flat-LU baseline vs
# island hot path with the 1.5x floor at 400 unknowns, engine-leg
# DC + transient through the Islands path, refreshes BENCH_solve.json.
echo "==> cargo clippy -p vls-num (deny warnings)"
cargo clippy -p vls-num --all-targets -- -D warnings

echo "==> cargo test (solve_scale golden, VLS_JOBS=1 and default jobs)"
VLS_JOBS=1 cargo test -q --test solve_scale
cargo test -q --test solve_scale

echo "==> solve_scale --smoke (release, speedup floor + engine leg enforced)"
cargo run -q --release -p vls-bench --bin solve_scale -- --smoke

echo "==> cargo test --release"
cargo test -q --release

echo "CI green."
