//! # sstvs — a reproduction of "A Single-supply True Voltage Level Shifter" (DATE 2008)
//!
//! This facade crate re-exports the whole workspace: an analog circuit
//! simulator built from scratch (MNA + Newton–Raphson + adaptive
//! transient), an EKV-style 90 nm MOSFET compact model, the paper's
//! level-shifter cells (the proposed SS-TVS and every baseline it is
//! compared against), and the characterization/Monte-Carlo flows that
//! regenerate each table and figure of the paper.
//!
//! Layer map (bottom-up):
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`fault`] | `vls-fault` | deterministic fault-injection plans and charge sessions |
//! | [`num`] | `vls-num` | dense + sparse LU for MNA systems |
//! | [`units`] | `vls-units` | typed volts/amps/seconds/…, temperature |
//! | [`device`] | `vls-device` | MOSFET model, model cards, sources, passives |
//! | [`netlist`] | `vls-netlist` | circuits, subcircuits, SPICE-deck parser |
//! | [`engine`] | `vls-engine` | DC operating point, DC sweep, transient |
//! | [`waveform`] | `vls-waveform` | waveform math: delays, power, leakage |
//! | [`cells`] | `vls-cells` | SS-TVS, combined VS, Khan SS-VS, CVS, primitives |
//! | [`variation`] | `vls-variation` | Monte Carlo process sampling |
//! | [`runner`] | `vls-runner` | sharded parallel execution, seeding, warm-start cache |
//! | [`check`] | `vls-check` | static ERC: connectivity + voltage-domain rules |
//! | [`flows`] | `vls-core` | the paper's experiments (Tables 1–4, Figures 5/8/9) |
//! | [`charlib`] | `vls-charlib` | Liberty-style tables: interpolated surrogate + exact fallback |
//! | [`opt`] | `vls-opt` | sizing & yield optimization over the charlib surrogate |
//! | [`serve`] | `vls-serve` | query daemon: HTTP/1.1 front end, admission control, metrics |
//! | [`cli`] | `vls-cli` | the `vls-spice` front end as a library: run/check/char/serve |
//!
//! # Quickstart
//!
//! ```
//! use sstvs::cells::{ShifterKind, VoltagePair};
//! use sstvs::flows::{characterize, CharacterizeOptions};
//!
//! # fn main() -> Result<(), sstvs::flows::CoreError> {
//! // Characterize the paper's cell at its headline corner.
//! let metrics = characterize(
//!     &ShifterKind::sstvs(),
//!     VoltagePair::low_to_high(), // 0.8 V -> 1.2 V
//!     &CharacterizeOptions::default(),
//! )?;
//! assert!(metrics.functional);
//! println!("rise delay {} / leakage {}", metrics.delay_rise, metrics.leakage_high);
//! # Ok(())
//! # }
//! ```
//!
//! The runnable entry points live in `examples/` (library tours) and
//! `crates/bench/src/bin/` (one binary per paper table/figure).

pub use vls_cells as cells;
pub use vls_charlib as charlib;
pub use vls_check as check;
pub use vls_cli as cli;
pub use vls_core as flows;
pub use vls_device as device;
pub use vls_engine as engine;
pub use vls_fault as fault;
pub use vls_netlist as netlist;
pub use vls_num as num;
pub use vls_opt as opt;
pub use vls_runner as runner;
pub use vls_serve as serve;
pub use vls_units as units;
pub use vls_variation as variation;
pub use vls_waveform as waveform;
