//! Analytic validation of the simulation substrate: circuits with
//! closed-form solutions, checked end-to-end through the public API.
//! This is the evidence that the engine underneath every paper number
//! solves the physics it claims to.

use sstvs::device::SourceWaveform;
use sstvs::engine::{dc_sweep, run_ac, run_transient, solve_dc, SimOptions};
use sstvs::netlist::Circuit;

fn opts() -> SimOptions {
    SimOptions::default()
}

/// Superposition: a two-source resistive network solves to the sum of
/// the single-source solutions.
#[test]
fn dc_superposition_holds() {
    let build = |v1: f64, v2: f64| {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        let m = c.node("m");
        c.add_vsource("v1", a, Circuit::GROUND, SourceWaveform::Dc(v1));
        c.add_vsource("v2", b, Circuit::GROUND, SourceWaveform::Dc(v2));
        c.add_resistor("r1", a, m, 1000.0);
        c.add_resistor("r2", b, m, 2000.0);
        c.add_resistor("r3", m, Circuit::GROUND, 3000.0);
        (c, m)
    };
    let solve_m = |v1: f64, v2: f64| {
        let (c, m) = build(v1, v2);
        solve_dc(&c, &opts()).unwrap().voltage(m)
    };
    let both = solve_m(1.0, 2.0);
    let only1 = solve_m(1.0, 0.0);
    let only2 = solve_m(0.0, 2.0);
    assert!(
        (both - (only1 + only2)).abs() < 1e-9,
        "{both} vs {}",
        only1 + only2
    );
}

/// Thevenin equivalence: loading a divider behaves like the analytic
/// Thevenin source and resistance.
#[test]
fn thevenin_equivalent_is_exact() {
    // 2 V through 1 kΩ / 1 kΩ divider: Vth = 1 V, Rth = 500 Ω.
    // Load with 1.5 kΩ: v = Vth·Rl/(Rth+Rl) = 0.75 V.
    let mut c = Circuit::new();
    let top = c.node("top");
    let mid = c.node("mid");
    c.add_vsource("v1", top, Circuit::GROUND, SourceWaveform::Dc(2.0));
    c.add_resistor("r1", top, mid, 1000.0);
    c.add_resistor("r2", mid, Circuit::GROUND, 1000.0);
    c.add_resistor("rl", mid, Circuit::GROUND, 1500.0);
    let sol = solve_dc(&c, &opts()).unwrap();
    assert!((sol.voltage(mid) - 0.75).abs() < 1e-9);
}

/// Current divider with a current source: exact branch split.
#[test]
fn current_divider_splits_exactly() {
    let mut c = Circuit::new();
    let n = c.node("n");
    c.add_isource("i1", n, Circuit::GROUND, SourceWaveform::Dc(3e-3));
    c.add_resistor("ra", n, Circuit::GROUND, 1000.0);
    c.add_resistor("rb", n, Circuit::GROUND, 2000.0);
    let sol = solve_dc(&c, &opts()).unwrap();
    // Parallel resistance 666.67 Ω → v = 2 V.
    assert!((sol.voltage(n) - 2.0).abs() < 1e-6);
}

/// A two-pole RC ladder's transient matches its analytic modal
/// solution at selected points (loose tolerance; the reference is the
/// exact state-space solution evaluated numerically here).
#[test]
fn rc_ladder_transient_matches_state_space() {
    // v1: node between r1 (1k, driven by 1 V step) and c1 (1 pF);
    // v2: node after r2 (2k) with c2 (2 pF).
    let (r1, c1, r2, c2) = (1000.0, 1e-12, 2000.0, 2e-12);
    let mut c = Circuit::new();
    let inp = c.node("in");
    let n1 = c.node("n1");
    let n2 = c.node("n2");
    c.add_vsource(
        "vin",
        inp,
        Circuit::GROUND,
        SourceWaveform::step(0.0, 1.0, 0.0, 1e-13),
    );
    c.add_resistor("r1", inp, n1, r1);
    c.add_capacitor("c1", n1, Circuit::GROUND, c1);
    c.add_resistor("r2", n1, n2, r2);
    c.add_capacitor("c2", n2, Circuit::GROUND, c2);
    let res = run_transient(&c, 40e-9, &opts()).unwrap();

    // Reference: integrate the exact 2-state ODE with tiny RK4 steps.
    let f = |v1: f64, v2: f64| {
        let i1 = (1.0 - v1) / r1;
        let i2 = (v1 - v2) / r2;
        ((i1 - i2) / c1, i2 / c2)
    };
    let (mut v1, mut v2) = (0.0f64, 0.0f64);
    let h = 1e-12;
    let mut t = 0.0;
    let v_sim_1 = res.node_series(n1);
    let v_sim_2 = res.node_series(n2);
    let times = res.times();
    let mut check_idx = 0;
    while t < 40e-9 {
        // RK4 step.
        let (k1a, k1b) = f(v1, v2);
        let (k2a, k2b) = f(v1 + 0.5 * h * k1a, v2 + 0.5 * h * k1b);
        let (k3a, k3b) = f(v1 + 0.5 * h * k2a, v2 + 0.5 * h * k2b);
        let (k4a, k4b) = f(v1 + h * k3a, v2 + h * k3b);
        v1 += h / 6.0 * (k1a + 2.0 * k2a + 2.0 * k3a + k4a);
        v2 += h / 6.0 * (k1b + 2.0 * k2b + 2.0 * k3b + k4b);
        t += h;
        // Compare wherever the simulator produced a sample.
        while check_idx < times.len() && times[check_idx] <= t {
            if times[check_idx] > 1e-9 {
                assert!(
                    (v_sim_1[check_idx] - v1).abs() < 0.02,
                    "n1 at t={:.3e}: {} vs {v1}",
                    times[check_idx],
                    v_sim_1[check_idx]
                );
                assert!(
                    (v_sim_2[check_idx] - v2).abs() < 0.02,
                    "n2 at t={:.3e}: {} vs {v2}",
                    times[check_idx],
                    v_sim_2[check_idx]
                );
            }
            check_idx += 1;
        }
    }
    assert!(check_idx > 20, "too few comparison points");
}

/// AC magnitude of a two-pole ladder matches |H(jω)| computed from the
/// exact transfer function.
#[test]
fn rc_ladder_ac_matches_transfer_function() {
    let (r1, c1, r2, c2) = (1000.0, 1e-12, 2000.0, 2e-12);
    let mut c = Circuit::new();
    let inp = c.node("in");
    let n1 = c.node("n1");
    let n2 = c.node("n2");
    c.add_vsource("vin", inp, Circuit::GROUND, SourceWaveform::Dc(0.0));
    c.add_resistor("r1", inp, n1, r1);
    c.add_capacitor("c1", n1, Circuit::GROUND, c1);
    c.add_resistor("r2", n1, n2, r2);
    c.add_capacitor("c2", n2, Circuit::GROUND, c2);

    let freqs = [1e6, 1e7, 1e8, 1e9];
    let ac = run_ac(&c, "vin", &freqs, &opts()).unwrap();
    let mag = ac.magnitude(n2);
    for (k, &f) in freqs.iter().enumerate() {
        // H(s) = 1 / (1 + s(r1c1 + r1c2 + r2c2) + s² r1c1r2c2)
        let w = 2.0 * std::f64::consts::PI * f;
        let a1 = r1 * c1 + r1 * c2 + r2 * c2;
        let a2 = r1 * c1 * r2 * c2;
        let re = 1.0 - w * w * a2;
        let im = w * a1;
        let h = 1.0 / (re * re + im * im).sqrt();
        assert!(
            (mag[k] - h).abs() < 0.01 * h.max(0.01),
            "at {f:.1e} Hz: {} vs {h}",
            mag[k]
        );
    }
}

/// DC sweep linearity: the solution of a linear network is linear in
/// the swept source (checked across the whole sweep).
#[test]
fn dc_sweep_of_linear_network_is_linear() {
    let mut c = Circuit::new();
    let top = c.node("top");
    let mid = c.node("mid");
    c.add_vsource("vs", top, Circuit::GROUND, SourceWaveform::Dc(0.0));
    c.add_resistor("r1", top, mid, 4700.0);
    c.add_resistor("r2", mid, Circuit::GROUND, 3300.0);
    let points = dc_sweep(&c, "vs", -1.0, 1.0, 0.1, &opts()).unwrap();
    let gain = 3300.0 / 8000.0;
    for p in &points {
        let expect = gain * p.value;
        let mid_node = c.find_node("mid").unwrap();
        assert!(
            (p.solution.voltage(mid_node) - expect).abs() < 1e-9,
            "at {} V",
            p.value
        );
    }
}
