//! The runner's determinism contract, end-to-end: the same master seed
//! must produce byte-identical Monte Carlo statistics and sweep tables
//! at every worker count, and a non-converging run must be reported
//! with its seed without poisoning sibling shards.

use sstvs::cells::{ShifterKind, VoltagePair};
use sstvs::flows::experiments::{figures, tables};
use sstvs::flows::{characterize_with, CellMetrics, CharacterizeOptions, CoreError};
use sstvs::runner::{derive_seed, RunnerOptions};
use sstvs::variation::{monte_carlo_trials, VariationSpec};

const JOB_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn mc_statistics_are_byte_identical_across_worker_counts() {
    let opts = CharacterizeOptions::default();
    let run = |jobs: usize| {
        tables::monte_carlo_stats(
            &ShifterKind::sstvs(),
            VoltagePair::low_to_high(),
            &opts,
            6,
            tables::DEFAULT_MC_SEED,
            &RunnerOptions::with_jobs(jobs),
        )
        .expect("MC runs")
    };
    let baseline = run(JOB_COUNTS[0]);
    let rendered = format!("{baseline:?}");
    for &jobs in &JOB_COUNTS[1..] {
        let stats = run(jobs);
        // Byte-level identity: the Debug rendering prints every f64
        // exactly (shortest round-trip representation), so equal text
        // means equal bits.
        assert_eq!(
            rendered,
            format!("{stats:?}"),
            "MC statistics differ at {jobs} workers"
        );
    }
}

#[test]
fn sweep_tables_are_byte_identical_across_worker_counts() {
    let opts = CharacterizeOptions::default();
    let run = |jobs: usize| {
        figures::delay_surface(
            &ShifterKind::sstvs(),
            0.9,
            1.3,
            0.2,
            &opts,
            &RunnerOptions::with_jobs(jobs),
        )
        .to_csv()
    };
    let baseline = run(JOB_COUNTS[0]);
    for &jobs in &JOB_COUNTS[1..] {
        assert_eq!(baseline, run(jobs), "sweep table differs at {jobs} workers");
    }
}

#[test]
fn failed_trial_reports_its_seed_and_spares_the_siblings() {
    // One trial "fails to converge"; its shard must report the failure
    // with the replay seed while every sibling trial still completes,
    // at every worker count.
    let kind = ShifterKind::sstvs();
    let domains = VoltagePair::low_to_high();
    let opts = CharacterizeOptions::default();
    let (wave, _, _, _) = sstvs::cells::Harness::standard_stimulus(domains);
    let reference = sstvs::cells::Harness::build(&kind, domains, wave, opts.load_farads);
    let master = 0xDEAD_BEEF;
    let broken = 2usize;

    let run = |jobs: usize| {
        monte_carlo_trials(
            &reference.circuit,
            &VariationSpec::paper(),
            5,
            master,
            &RunnerOptions::with_jobs(jobs),
            |name| name.starts_with("dut"),
            |k, map| -> Result<CellMetrics, CoreError> {
                if k == broken {
                    return Err(CoreError::NotFunctional(
                        "newton iteration failed to converge (synthetic)".into(),
                    ));
                }
                characterize_with(&kind, domains, &opts, Some(map))
            },
        )
    };

    let serial = run(JOB_COUNTS[0]);
    assert_eq!(serial.trials.len(), 5);
    assert_eq!(serial.successes().len(), 4, "siblings must survive");
    let failures = serial.failures();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].index, broken);
    assert_eq!(failures[0].seed, derive_seed(master, broken as u64));
    assert!(
        !failures[0].perturbation.is_empty(),
        "failure keeps its perturbation for replay"
    );

    for &jobs in &JOB_COUNTS[1..] {
        let parallel = run(jobs);
        for (a, b) in serial.trials.iter().zip(&parallel.trials) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.perturbation, b.perturbation);
            assert_eq!(
                a.result.is_ok(),
                b.result.is_ok(),
                "trial {} outcome differs at {jobs} workers",
                a.index
            );
            if let (Ok(ma), Ok(mb)) = (&a.result, &b.result) {
                assert_eq!(
                    format!("{ma:?}"),
                    format!("{mb:?}"),
                    "trial {} metrics differ at {jobs} workers",
                    a.index
                );
            }
        }
    }
}
