//! Property-based tests (proptest) over the core numeric invariants:
//! the linear algebra, the device model, the waveform math and the
//! SPICE value parser. These are the invariants everything above them
//! silently assumes.

use proptest::prelude::*;
use sstvs::device::{MosGeometry, MosModel};
use sstvs::netlist::parse_spice_value;
use sstvs::num::{DenseMatrix, SparseLu, TripletMatrix};
use sstvs::waveform::{integral, Edge, Waveform};

/// Strategy: a diagonally dominant matrix (guaranteed nonsingular) as
/// a flat row-major vector, plus a right-hand side.
fn dominant_system() -> impl Strategy<Value = (usize, Vec<f64>, Vec<f64>)> {
    (2usize..8).prop_flat_map(|n| {
        let entries = proptest::collection::vec(-1.0f64..1.0, n * n);
        let rhs = proptest::collection::vec(-10.0f64..10.0, n);
        (Just(n), entries, rhs).prop_map(|(n, mut a, b)| {
            for i in 0..n {
                // Make each diagonal dominate its row.
                let row_sum: f64 = (0..n).map(|j| a[i * n + j].abs()).sum();
                a[i * n + i] = row_sum + 1.0;
            }
            (n, a, b)
        })
    })
}

proptest! {
    /// Dense LU actually solves the system: ‖A·x − b‖ small.
    #[test]
    fn dense_lu_solves((n, a, b) in dominant_system()) {
        let mut m = DenseMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                m.set(i, j, a[i * n + j]);
            }
        }
        let x = m.solve(&b).expect("dominant systems are nonsingular");
        let r = m.mul_vec(&x).expect("dims match");
        for (ri, bi) in r.iter().zip(&b) {
            prop_assert!((ri - bi).abs() < 1e-8, "residual {}", (ri - bi).abs());
        }
    }

    /// Sparse and dense factorizations agree on the same system.
    #[test]
    fn sparse_matches_dense((n, a, b) in dominant_system()) {
        let mut dense = DenseMatrix::zeros(n);
        let mut trip = TripletMatrix::new(n);
        for i in 0..n {
            for j in 0..n {
                let v = a[i * n + j];
                dense.set(i, j, v);
                if v != 0.0 {
                    trip.add(i, j, v);
                }
            }
        }
        let xd = dense.solve(&b).expect("nonsingular");
        let xs = SparseLu::factorize(&trip.to_csc())
            .expect("nonsingular")
            .solve(&b)
            .expect("dims");
        for (d, s) in xd.iter().zip(&xs) {
            prop_assert!((d - s).abs() < 1e-8 * d.abs().max(1.0));
        }
    }

    /// The MOSFET current is monotone in V_GS at fixed V_DS, across
    /// the whole operating plane — a requirement for Newton stability.
    #[test]
    fn mosfet_monotone_in_vgs(
        vds in 0.05f64..1.4,
        vgs_lo in -0.3f64..1.3,
        dv in 0.01f64..0.2,
    ) {
        let m = MosModel::ptm90_nmos();
        let g = MosGeometry::from_microns(0.5, 0.1);
        let i1 = m.ids(&g, vgs_lo, vds, 0.0, 300.15);
        let i2 = m.ids(&g, vgs_lo + dv, vds, 0.0, 300.15);
        prop_assert!(i2 > i1, "not monotone: {i1} vs {i2}");
    }

    /// Source–drain exchange antisymmetry of the channel current.
    #[test]
    fn mosfet_channel_antisymmetry(
        vg in 0.0f64..1.4,
        va in 0.0f64..1.4,
        vb in 0.0f64..1.4,
    ) {
        let m = MosModel::ptm90_nmos();
        let g = MosGeometry::from_microns(0.5, 0.1);
        let fwd = m.ids_terminal(&g, vg, va, vb, 0.0, 300.15);
        let rev = m.ids_terminal(&g, vg, vb, va, 0.0, 300.15);
        prop_assert!(
            (fwd + rev).abs() <= 1e-9 * fwd.abs().max(1e-15),
            "asymmetry: {fwd} vs {rev}"
        );
    }

    /// The drain current never exceeds a generous physical bound and
    /// never runs backward against V_DS at V_SB = 0.
    #[test]
    fn mosfet_current_sign_and_bound(
        vgs in -0.5f64..1.5,
        vds in 0.0f64..1.5,
    ) {
        let m = MosModel::ptm90_nmos();
        let g = MosGeometry::from_microns(1.0, 0.1);
        let i = m.ids(&g, vgs, vds, 0.0, 300.15);
        prop_assert!(i >= 0.0, "negative current at vds >= 0: {i}");
        prop_assert!(i < 0.1, "implausibly large current: {i}");
    }

    /// Waveform integral is additive over adjacent intervals.
    #[test]
    fn integral_is_additive(
        values in proptest::collection::vec(-2.0f64..2.0, 3..20),
        split in 0.1f64..0.9,
    ) {
        let n = values.len();
        let times: Vec<f64> = (0..n).map(|k| k as f64).collect();
        let w = Waveform::new(times, values).expect("valid");
        let t_end = (n - 1) as f64;
        let t_mid = split * t_end;
        let whole = integral(&w, 0.0, t_end);
        let parts = integral(&w, 0.0, t_mid) + integral(&w, t_mid, t_end);
        prop_assert!((whole - parts).abs() < 1e-9, "{whole} vs {parts}");
    }

    /// Crossings returned by the waveform are truly on the threshold
    /// (up to interpolation) and sorted.
    #[test]
    fn crossings_lie_on_the_threshold(
        values in proptest::collection::vec(-1.0f64..1.0, 4..30),
        threshold in -0.8f64..0.8,
    ) {
        let n = values.len();
        let times: Vec<f64> = (0..n).map(|k| k as f64 * 0.5).collect();
        let w = Waveform::new(times, values).expect("valid");
        let crossings = w.crossings(threshold, Edge::Any);
        for pair in crossings.windows(2) {
            prop_assert!(pair[1] >= pair[0], "unsorted crossings");
        }
        for t in crossings {
            prop_assert!((w.value_at(t) - threshold).abs() < 1e-9);
        }
    }

    /// The SPICE value parser scales suffixes exactly.
    #[test]
    fn spice_value_suffix_scaling(base in -1000.0f64..1000.0) {
        let cases = [("k", 1e3), ("m", 1e-3), ("u", 1e-6), ("n", 1e-9), ("p", 1e-12)];
        for (suffix, scale) in cases {
            let text = format!("{base}{suffix}");
            let parsed = parse_spice_value(&text).expect("valid literal");
            let expect = base * scale;
            prop_assert!(
                (parsed - expect).abs() <= 1e-12 * expect.abs().max(1e-30),
                "{text} -> {parsed}, expected {expect}"
            );
        }
    }
}
