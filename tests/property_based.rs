//! Randomized tests over the core numeric invariants: the linear
//! algebra, the device model, the waveform math and the SPICE value
//! parser. These are the invariants everything above them silently
//! assumes. (Seeded loops over the vendored generator — the workspace
//! builds without registry access, so no external property-testing
//! framework.)

use sstvs::device::{MosGeometry, MosModel, SourceWaveform};
use sstvs::netlist::{parse_spice_value, Circuit, Element};
use sstvs::num::rng::{Rng, Xoshiro256pp};
use sstvs::num::{DenseMatrix, SparseLu, TripletMatrix};
use sstvs::variation::{diff_as_perturbation, perturb_circuit, VariationSpec};
use sstvs::waveform::{integral, Edge, Waveform};

/// A diagonally dominant matrix (guaranteed nonsingular) as a flat
/// row-major vector, plus a right-hand side.
fn dominant_system(rng: &mut impl Rng) -> (usize, Vec<f64>, Vec<f64>) {
    let n = 2 + rng.gen_index(6);
    let mut a: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0, 1.0)).collect();
    let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-10.0, 10.0)).collect();
    for i in 0..n {
        // Make each diagonal dominate its row.
        let row_sum: f64 = (0..n).map(|j| a[i * n + j].abs()).sum();
        a[i * n + i] = row_sum + 1.0;
    }
    (n, a, b)
}

/// Dense LU actually solves the system: ‖A·x − b‖ small.
#[test]
fn dense_lu_solves() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5EED_0010);
    for _case in 0..256 {
        let (n, a, b) = dominant_system(&mut rng);
        let mut m = DenseMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                m.set(i, j, a[i * n + j]);
            }
        }
        let x = m.solve(&b).expect("dominant systems are nonsingular");
        let r = m.mul_vec(&x).expect("dims match");
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-8, "residual {}", (ri - bi).abs());
        }
    }
}

/// Sparse and dense factorizations agree on the same system.
#[test]
fn sparse_matches_dense() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5EED_0011);
    for _case in 0..256 {
        let (n, a, b) = dominant_system(&mut rng);
        let mut dense = DenseMatrix::zeros(n);
        let mut trip = TripletMatrix::new(n);
        for i in 0..n {
            for j in 0..n {
                let v = a[i * n + j];
                dense.set(i, j, v);
                if v != 0.0 {
                    trip.add(i, j, v);
                }
            }
        }
        let xd = dense.solve(&b).expect("nonsingular");
        let xs = SparseLu::factorize(&trip.to_csc())
            .expect("nonsingular")
            .solve(&b)
            .expect("dims");
        for (d, s) in xd.iter().zip(&xs) {
            assert!((d - s).abs() < 1e-8 * d.abs().max(1.0));
        }
    }
}

/// The MOSFET current is monotone in V_GS at fixed V_DS, across the
/// whole operating plane — a requirement for Newton stability.
#[test]
fn mosfet_monotone_in_vgs() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5EED_0012);
    let m = MosModel::ptm90_nmos();
    let g = MosGeometry::from_microns(0.5, 0.1);
    for _case in 0..256 {
        let vds = rng.gen_range(0.05, 1.4);
        let vgs_lo = rng.gen_range(-0.3, 1.3);
        let dv = rng.gen_range(0.01, 0.2);
        let i1 = m.ids(&g, vgs_lo, vds, 0.0, 300.15);
        let i2 = m.ids(&g, vgs_lo + dv, vds, 0.0, 300.15);
        assert!(i2 > i1, "not monotone: {i1} vs {i2}");
    }
}

/// Source–drain exchange antisymmetry of the channel current.
#[test]
fn mosfet_channel_antisymmetry() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5EED_0013);
    let m = MosModel::ptm90_nmos();
    let g = MosGeometry::from_microns(0.5, 0.1);
    for _case in 0..256 {
        let vg = rng.gen_range(0.0, 1.4);
        let va = rng.gen_range(0.0, 1.4);
        let vb = rng.gen_range(0.0, 1.4);
        let fwd = m.ids_terminal(&g, vg, va, vb, 0.0, 300.15);
        let rev = m.ids_terminal(&g, vg, vb, va, 0.0, 300.15);
        assert!(
            (fwd + rev).abs() <= 1e-9 * fwd.abs().max(1e-15),
            "asymmetry: {fwd} vs {rev}"
        );
    }
}

/// The drain current never exceeds a generous physical bound and
/// never runs backward against V_DS at V_SB = 0.
#[test]
fn mosfet_current_sign_and_bound() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5EED_0014);
    let m = MosModel::ptm90_nmos();
    let g = MosGeometry::from_microns(1.0, 0.1);
    for _case in 0..256 {
        let vgs = rng.gen_range(-0.5, 1.5);
        let vds = rng.gen_range(0.0, 1.5);
        let i = m.ids(&g, vgs, vds, 0.0, 300.15);
        assert!(i >= 0.0, "negative current at vds >= 0: {i}");
        assert!(i < 0.1, "implausibly large current: {i}");
    }
}

/// Waveform integral is additive over adjacent intervals.
#[test]
fn integral_is_additive() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5EED_0015);
    for _case in 0..256 {
        let n = 3 + rng.gen_index(17);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0, 2.0)).collect();
        let split = rng.gen_range(0.1, 0.9);
        let times: Vec<f64> = (0..n).map(|k| k as f64).collect();
        let w = Waveform::new(times, values).expect("valid");
        let t_end = (n - 1) as f64;
        let t_mid = split * t_end;
        let whole = integral(&w, 0.0, t_end);
        let parts = integral(&w, 0.0, t_mid) + integral(&w, t_mid, t_end);
        assert!((whole - parts).abs() < 1e-9, "{whole} vs {parts}");
    }
}

/// Crossings returned by the waveform are truly on the threshold (up
/// to interpolation) and sorted.
#[test]
fn crossings_lie_on_the_threshold() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5EED_0016);
    for _case in 0..256 {
        let n = 4 + rng.gen_index(26);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0, 1.0)).collect();
        let threshold = rng.gen_range(-0.8, 0.8);
        let times: Vec<f64> = (0..n).map(|k| k as f64 * 0.5).collect();
        let w = Waveform::new(times, values).expect("valid");
        let crossings = w.crossings(threshold, Edge::Any);
        for pair in crossings.windows(2) {
            assert!(pair[1] >= pair[0], "unsorted crossings");
        }
        for t in crossings {
            assert!((w.value_at(t) - threshold).abs() < 1e-9);
        }
    }
}

/// A random MOSFET circuit for the perturbation round-trip: 1–8
/// devices with randomized polarity and geometry behind a shared
/// supply.
fn random_mos_circuit(rng: &mut impl Rng) -> Circuit {
    let mut c = Circuit::new();
    let d = c.node("d");
    c.add_vsource("vd", d, Circuit::GROUND, SourceWaveform::Dc(1.2));
    let devices = 1 + rng.gen_index(8);
    for i in 0..devices {
        let w = rng.gen_range(0.12, 2.0);
        let l = rng.gen_range(0.08, 0.4);
        let model = if rng.gen_range(0.0, 1.0) < 0.5 {
            MosModel::ptm90_nmos()
        } else {
            MosModel::ptm90_pmos()
        };
        c.add_mosfet(
            &format!("m{i}"),
            d,
            d,
            Circuit::GROUND,
            Circuit::GROUND,
            model,
            MosGeometry::from_microns(w, l),
        );
    }
    c
}

/// `perturb_circuit` → `diff_as_perturbation` → `apply` round-trips:
/// recovering the perturbation from the perturbed circuit and applying
/// it to the original reproduces the perturbed devices. This is the
/// contract that lets failed Monte Carlo trials be replayed from their
/// recorded maps.
#[test]
fn perturbation_diff_apply_round_trips() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5EED_0018);
    for case in 0..64 {
        let circuit = random_mos_circuit(&mut rng);
        let spec = VariationSpec::paper().scaled(rng.gen_range(0.1, 2.0));
        let sample_seed = rng.gen_range(0.0, 1e9) as u64;
        let mut sample_rng = Xoshiro256pp::seed_from_u64(sample_seed);
        let perturbed = perturb_circuit(&circuit, &spec, &mut sample_rng);

        let map = diff_as_perturbation(&circuit, &perturbed);
        let mut replayed = circuit.clone();
        map.apply(&mut replayed);

        for (want, got) in perturbed.elements().iter().zip(replayed.elements()) {
            if let (
                Element::Mosfet {
                    geom: gw,
                    model: mw,
                    ..
                },
                Element::Mosfet {
                    geom: gg,
                    model: mg,
                    ..
                },
            ) = (want, got)
            {
                for (a, b) in [
                    (gw.width(), gg.width()),
                    (gw.length(), gg.length()),
                    (mw.vt0, mg.vt0),
                ] {
                    assert!(
                        (a - b).abs() <= 1e-12 * a.abs(),
                        "case {case} (seed {sample_seed}): {a} vs {b}"
                    );
                }
            }
        }
    }
}

/// The SPICE value parser scales suffixes exactly.
#[test]
fn spice_value_suffix_scaling() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5EED_0017);
    for _case in 0..256 {
        let base = rng.gen_range(-1000.0, 1000.0);
        let cases = [
            ("k", 1e3),
            ("m", 1e-3),
            ("u", 1e-6),
            ("n", 1e-9),
            ("p", 1e-12),
        ];
        for (suffix, scale) in cases {
            let text = format!("{base}{suffix}");
            let parsed = parse_spice_value(&text).expect("valid literal");
            let expect = base * scale;
            assert!(
                (parsed - expect).abs() <= 1e-12 * expect.abs().max(1e-30),
                "{text} -> {parsed}, expected {expect}"
            );
        }
    }
}
