//! End-to-end integration: the full stack from netlist text to
//! measured metrics, crossing every crate boundary.

use sstvs::cells::{Harness, ShifterKind, VoltagePair};
use sstvs::engine::{run_transient, solve_dc, SimOptions};
use sstvs::flows::{characterize, CharacterizeOptions};
use sstvs::netlist::{parse_deck, write_deck};
use sstvs::waveform::{delay_between, Edge, Waveform};

/// The SS-TVS built through the builder API, serialized to a SPICE
/// deck, re-parsed, and simulated: both representations must produce
/// the same waveforms.
#[test]
fn sstvs_round_trips_through_spice_text() {
    let domains = VoltagePair::low_to_high();
    let (wave, _, _, t_end) = Harness::standard_stimulus(domains);
    let built = Harness::build(&ShifterKind::sstvs(), domains, wave, 1e-15);

    let text = write_deck("sstvs harness", &built.circuit);
    let reparsed = parse_deck(&text).expect("writer output parses");
    reparsed
        .circuit
        .validate()
        .expect("reparsed circuit is healthy");

    let opts = SimOptions::default();
    let a = run_transient(&built.circuit, t_end, &opts).expect("original runs");
    let b = run_transient(&reparsed.circuit, t_end, &opts).expect("reparsed runs");

    // Compare the output waveform at common probe times.
    let out_a = Waveform::new(a.times().to_vec(), a.node_series(built.output)).unwrap();
    let out_b_node = reparsed
        .circuit
        .find_node("cell_out")
        .expect("node name survives");
    let out_b = Waveform::new(b.times().to_vec(), b.node_series(out_b_node)).unwrap();
    for k in 0..=100 {
        let t = t_end * k as f64 / 100.0;
        let (va, vb) = (out_a.value_at(t), out_b.value_at(t));
        assert!(
            (va - vb).abs() < 0.05,
            "waveforms diverge at t = {t:.3e}: {va} vs {vb}"
        );
    }
}

/// The facade exposes the whole stack coherently: build with `cells`,
/// solve with `engine`, measure with `waveform`.
#[test]
fn facade_layers_compose() {
    use sstvs::device::SourceWaveform;
    use sstvs::netlist::Circuit;

    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let a = c.node("a");
    let y = c.node("y");
    c.add_vsource("vdd", vdd, Circuit::GROUND, SourceWaveform::Dc(1.2));
    c.add_vsource(
        "va",
        a,
        Circuit::GROUND,
        SourceWaveform::step(0.0, 1.2, 1e-9, 50e-12),
    );
    sstvs::cells::primitives::Inverter::minimum().build(&mut c, "u0", a, y, vdd);
    c.add_capacitor("cl", y, Circuit::GROUND, 1e-15);

    // DC: input low, output high.
    let dc = solve_dc(&c, &SimOptions::default()).expect("dc converges");
    assert!((dc.voltage(y) - 1.2).abs() < 0.02);

    // Transient: measure the inverter's fall delay with waveform math.
    let res = run_transient(&c, 4e-9, &SimOptions::default()).expect("transient runs");
    let win = Waveform::new(res.times().to_vec(), res.node_series(a)).unwrap();
    let wout = Waveform::new(res.times().to_vec(), res.node_series(y)).unwrap();
    let d = delay_between(&win, 0.6, Edge::Rising, &wout, 0.6, Edge::Falling, 0.0)
        .expect("both edges exist");
    assert!(
        d > 0.0 && d < 100e-12,
        "inverter delay {d:.3e} s out of range"
    );
}

/// The headline reproduction in one assertion set: the SS-TVS is
/// functional in both directions and leaks an order of magnitude less
/// than the combined VS in the low-to-high case.
#[test]
fn headline_claims_hold_end_to_end() {
    let opts = CharacterizeOptions::default();
    let s_lh = characterize(&ShifterKind::sstvs(), VoltagePair::low_to_high(), &opts).unwrap();
    let s_hl = characterize(&ShifterKind::sstvs(), VoltagePair::high_to_low(), &opts).unwrap();
    let c_lh = characterize(&ShifterKind::combined(), VoltagePair::low_to_high(), &opts).unwrap();
    assert!(s_lh.functional && s_hl.functional && c_lh.functional);
    assert!(
        c_lh.leakage_high.value() > 10.0 * s_lh.leakage_high.value(),
        "leak-high advantage lost: {} vs {}",
        s_lh.leakage_high,
        c_lh.leakage_high
    );
    assert!(
        c_lh.leakage_low.value() > 10.0 * s_lh.leakage_low.value(),
        "leak-low advantage lost: {} vs {}",
        s_lh.leakage_low,
        c_lh.leakage_low
    );
    // The SS-TVS needs no control signal and a single supply; the
    // numbers above came from a harness that only routes VDDO to it.
}

/// A non-paper corner: equal rails. The "true" shifter must behave as
/// a plain buffer-strength inverter there.
#[test]
fn equal_rails_degenerate_case_works() {
    let opts = CharacterizeOptions::default();
    for v in [0.9, 1.2] {
        let m = characterize(&ShifterKind::sstvs(), VoltagePair::new(v, v), &opts)
            .unwrap_or_else(|e| panic!("equal rails at {v} V failed: {e}"));
        assert!(m.functional, "not functional at VDDI = VDDO = {v}");
    }
}
