//! Integration coverage for the MSV chip-assembly rules (ERC009–
//! ERC013): one minimal flat netlist per rule, the chipgen mutation
//! scenarios flat and hierarchical, worker-count determinism of the
//! hierarchical pipeline, and a never-panic property sweep over
//! randomly mutated and rewired chips.

use sstvs::check::{
    run_check, run_check_design, run_check_design_with, CheckOptions, ErcCode, Severity,
};
use sstvs::device::{MosGeometry, MosModel, SourceWaveform};
use sstvs::netlist::chipgen::{generate_chip, generate_chip_mutated, ChipMutation, ChipSpec};
use sstvs::netlist::{Circuit, Element, NodeId};
use sstvs::num::rng::{Rng, Xoshiro256pp};
use sstvs::runner::RunnerOptions;

fn geometry() -> MosGeometry {
    MosGeometry::from_microns(0.4, 0.1)
}

fn pulse(hi: f64) -> SourceWaveform {
    SourceWaveform::Pulse {
        v1: 0.0,
        v2: hi,
        delay: 0.0,
        rise: 50e-12,
        fall: 50e-12,
        width: 1e-9,
        period: 2e-9,
    }
}

fn spec(instances: usize) -> ChipSpec {
    ChipSpec {
        instances,
        ..ChipSpec::default()
    }
}

#[test]
fn erc009_fires_per_net_on_an_unshifted_wide_crossing() {
    // 0.7 V swing into a 1.3 V island, no shifter: the receiving PMOS
    // never cuts off and ERC009 names the net that crosses.
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let input = c.node("in");
    let out = c.node("out");
    c.add_vsource("vdd", vdd, Circuit::GROUND, SourceWaveform::Dc(1.3));
    c.add_vsource("vin", input, Circuit::GROUND, pulse(0.7));
    c.add_mosfet(
        "mp",
        out,
        input,
        vdd,
        vdd,
        MosModel::ptm90_pmos(),
        geometry(),
    );
    c.add_mosfet(
        "mn",
        out,
        input,
        Circuit::GROUND,
        Circuit::GROUND,
        MosModel::ptm90_nmos(),
        geometry(),
    );
    let report = run_check(&c, &CheckOptions::default());
    let hits = report.with_code(ErcCode::Erc009MissingShifter);
    assert_eq!(hits.len(), 1, "{}", report.render_text());
    assert_eq!(hits[0].severity, Severity::Error);
    assert_eq!(hits[0].nodes, vec!["in".to_string()]);
    assert_eq!(hits[0].elements, vec!["mp".to_string()]);
}

#[test]
fn erc011_fires_on_a_net_pulled_to_two_rails() {
    let mut c = Circuit::new();
    let vdd_hi = c.node("vdd_hi");
    let vdd_lo = c.node("vdd_lo");
    let input = c.node("in");
    let y = c.node("y");
    c.add_vsource("v1", vdd_hi, Circuit::GROUND, SourceWaveform::Dc(1.2));
    c.add_vsource("v2", vdd_lo, Circuit::GROUND, SourceWaveform::Dc(0.8));
    c.add_vsource("vin", input, Circuit::GROUND, pulse(1.2));
    c.add_mosfet(
        "mp1",
        y,
        input,
        vdd_hi,
        vdd_hi,
        MosModel::ptm90_pmos(),
        geometry(),
    );
    c.add_mosfet(
        "mp2",
        y,
        input,
        vdd_lo,
        vdd_lo,
        MosModel::ptm90_pmos(),
        geometry(),
    );
    c.add_mosfet(
        "mn",
        y,
        input,
        Circuit::GROUND,
        Circuit::GROUND,
        MosModel::ptm90_nmos(),
        geometry(),
    );
    let report = run_check(&c, &CheckOptions::default());
    let hits = report.with_code(ErcCode::Erc011DomainContention);
    assert_eq!(hits.len(), 1, "{}", report.render_text());
    assert_eq!(hits[0].severity, Severity::Error);
    assert_eq!(hits[0].nodes, vec!["y".to_string()]);
}

#[test]
fn erc012_fires_on_a_statically_on_rail_bridge() {
    let mut c = Circuit::new();
    let ra = c.node("rail_a");
    let rb = c.node("rail_b");
    let g = c.node("cfg");
    c.add_vsource("va", ra, Circuit::GROUND, SourceWaveform::Dc(0.8));
    c.add_vsource("vb", rb, Circuit::GROUND, SourceWaveform::Dc(1.0));
    c.add_vsource("vg", g, Circuit::GROUND, SourceWaveform::Dc(1.2));
    c.add_mosfet(
        "mbridge",
        ra,
        g,
        rb,
        Circuit::GROUND,
        MosModel::ptm90_nmos(),
        geometry(),
    );
    let report = run_check(&c, &CheckOptions::default());
    let hits = report.with_code(ErcCode::Erc012SneakRailPath);
    assert_eq!(hits.len(), 1, "{}", report.render_text());
    assert_eq!(hits[0].severity, Severity::Error);
    assert_eq!(
        hits[0].nodes,
        vec!["rail_a".to_string(), "rail_b".to_string()]
    );
    assert_eq!(hits[0].elements, vec!["mbridge".to_string()]);
}

#[test]
fn erc013_fires_on_an_island_that_powers_nothing() {
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let input = c.node("in");
    let out = c.node("out");
    let iso = c.node("iso");
    c.add_vsource("vdd", vdd, Circuit::GROUND, SourceWaveform::Dc(1.2));
    c.add_vsource("vin", input, Circuit::GROUND, pulse(1.2));
    c.add_vsource("viso", iso, Circuit::GROUND, SourceWaveform::Dc(1.0));
    c.add_mosfet(
        "mp",
        out,
        input,
        vdd,
        vdd,
        MosModel::ptm90_pmos(),
        geometry(),
    );
    c.add_mosfet(
        "mn",
        out,
        input,
        Circuit::GROUND,
        Circuit::GROUND,
        MosModel::ptm90_nmos(),
        geometry(),
    );
    let report = run_check(&c, &CheckOptions::default());
    let hits = report.with_code(ErcCode::Erc013DanglingIsland);
    assert_eq!(hits.len(), 1, "{}", report.render_text());
    assert_eq!(hits[0].severity, Severity::Warning);
    assert_eq!(hits[0].nodes, vec!["iso".to_string()]);
}

#[test]
fn clean_chip_is_clean_flat_and_hierarchically() {
    let design = generate_chip(&spec(45));
    let hier = run_check_design(&design, &CheckOptions::default());
    assert_eq!(hier.diagnostics.len(), 0, "{}", hier.render_text());
    let flat = run_check(&design.flatten(), &CheckOptions::default());
    assert!(!flat.has_errors(), "{}", flat.render_text());
}

#[test]
fn all_five_mutations_are_caught_hierarchically() {
    let design = generate_chip_mutated(
        &spec(40),
        &[
            ChipMutation::DropShifter { unit: 1 },
            ChipMutation::RedundantShifter { unit: 2 },
            ChipMutation::CrossDriver { unit: 3 },
            ChipMutation::BridgeRails { a: 0, b: 1 },
            ChipMutation::OrphanIsland,
        ],
    );
    let report = run_check_design(&design, &CheckOptions::default());
    for code in [
        ErcCode::Erc009MissingShifter,
        ErcCode::Erc010RedundantShifter,
        ErcCode::Erc011DomainContention,
        ErcCode::Erc012SneakRailPath,
        ErcCode::Erc013DanglingIsland,
    ] {
        assert!(
            !report.with_code(code).is_empty(),
            "{code:?} missing:\n{}",
            report.render_text()
        );
    }
}

#[test]
fn flat_run_catches_the_flattenable_mutations() {
    // ERC010 needs cell-role metadata and is hierarchical-only; the
    // other four must also fall out of a plain flattened run.
    let design = generate_chip_mutated(
        &spec(40),
        &[
            ChipMutation::DropShifter { unit: 1 },
            ChipMutation::CrossDriver { unit: 3 },
            ChipMutation::BridgeRails { a: 0, b: 1 },
            ChipMutation::OrphanIsland,
        ],
    );
    let report = run_check(&design.flatten(), &CheckOptions::default());
    for code in [
        ErcCode::Erc009MissingShifter,
        ErcCode::Erc011DomainContention,
        ErcCode::Erc012SneakRailPath,
        ErcCode::Erc013DanglingIsland,
    ] {
        assert!(
            !report.with_code(code).is_empty(),
            "{code:?} missing:\n{}",
            report.render_text()
        );
    }
}

#[test]
fn hierarchical_report_is_byte_identical_at_1_2_and_8_workers() {
    let design = generate_chip_mutated(
        &spec(50),
        &[
            ChipMutation::DropShifter { unit: 4 },
            ChipMutation::RedundantShifter { unit: 7 },
            ChipMutation::BridgeRails { a: 0, b: 1 },
        ],
    );
    let options = CheckOptions::default();
    let serial = run_check_design_with(&design, &options, &RunnerOptions::with_jobs(1));
    assert!(serial.has_errors());
    for jobs in [2, 8] {
        let parallel = run_check_design_with(&design, &options, &RunnerOptions::with_jobs(jobs));
        assert_eq!(serial.render_text(), parallel.render_text(), "jobs={jobs}");
        assert_eq!(serial.render_json(), parallel.render_json(), "jobs={jobs}");
    }
}

#[test]
fn fingerprints_are_stable_across_worker_counts_and_reruns() {
    let design = generate_chip_mutated(&spec(30), &[ChipMutation::DropShifter { unit: 0 }]);
    let options = CheckOptions::default();
    let a = run_check_design_with(&design, &options, &RunnerOptions::with_jobs(1));
    let b = run_check_design_with(&design, &options, &RunnerOptions::with_jobs(4));
    let fps = |r: &sstvs::check::Report| -> Vec<String> {
        r.diagnostics.iter().map(|d| d.fingerprint()).collect()
    };
    assert_eq!(fps(&a), fps(&b));
    assert!(a.diagnostics.iter().all(|d| d.fingerprint().len() == 16));
}

/// Property: the checker never panics, whatever chip it is shown — the
/// generator's own mutations and random structural rewiring included.
#[test]
fn check_never_panics_on_randomly_mutated_chips() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x0e5c_5eed);
    let menu = |rng: &mut Xoshiro256pp, instances: usize| -> ChipMutation {
        match rng.gen_index(5) {
            0 => ChipMutation::DropShifter {
                unit: rng.gen_index(instances),
            },
            1 => ChipMutation::RedundantShifter {
                unit: rng.gen_index(instances),
            },
            2 => ChipMutation::CrossDriver {
                unit: rng.gen_index(instances),
            },
            3 => ChipMutation::BridgeRails { a: 0, b: 1 },
            _ => ChipMutation::OrphanIsland,
        }
    };
    for trial in 0..10 {
        let spec = ChipSpec {
            instances: 8 + rng.gen_index(16),
            islands: 2 + rng.gen_index(3),
            seed: rng.next_u64(),
        };
        let mutations: Vec<ChipMutation> = (0..rng.gen_index(4))
            .map(|_| menu(&mut rng, spec.instances))
            .collect();
        let design = generate_chip_mutated(&spec, &mutations);
        let hier = run_check_design(&design, &CheckOptions::default());
        let _ = hier.render_text();
        let _ = hier.render_json();

        // Rewire a handful of random terminals to random nodes and
        // check the flat path still degrades to findings, not panics.
        let mut flat = design.flatten();
        let nodes = flat.node_count();
        let elements = flat.elements_mut().len();
        for _ in 0..8 {
            let pick = NodeId::from_index(rng.gen_index(nodes));
            let e = &mut flat.elements_mut()[rng.gen_index(elements)];
            match e {
                Element::Resistor { a, .. } | Element::Capacitor { a, .. } => *a = pick,
                Element::VoltageSource { neg, .. } | Element::CurrentSource { neg, .. } => {
                    *neg = pick;
                }
                Element::Mosfet { gate, .. } => *gate = pick,
            }
        }
        let report = run_check(&flat, &CheckOptions::default());
        let _ = report.render_text();
        let _ = report.render_json();
        assert!(report.diagnostics.len() < 10_000, "trial {trial} exploded");
    }
}
