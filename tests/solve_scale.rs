//! Golden suite for the chip-scale structured sparse solver.
//!
//! PR-10 adds two solver structures above the natural-order sparse
//! path: minimum-degree fill-reducing ordering (`Ordered`) and the
//! island-partitioned Schur solver (`Islands`). This file pins them:
//!
//! * **property sweep** — over seeded random hub-and-chain patterns,
//!   the ordered factorization represents the same operator (solving
//!   against unit vectors reproduces the identity to 1e-10, i.e.
//!   P·A·Pᵀ = L·U reconstructs A) and never fills in more than the
//!   natural order;
//! * **worker-count determinism** — the island solve of a generated
//!   100-instance floorplan is bit-identical at 1, 2 and 8 workers,
//!   and matches the flat natural-order solve to 1e-9;
//! * **degenerate tearing** — a floorplan whose units are all shorted
//!   together degrades to a single island and still solves (no error);
//! * **ordering-off identity** — `SolverStructure::Natural` is the
//!   default and takes literally the pre-PR-10 code path, asserted by
//!   a bitwise comparison against explicitly-defaulted options.

use sstvs::engine::{island_report, run_transient, solve_dc, SimOptions, SolverStructure};
use sstvs::netlist::chipgen::{generate_chip, short_units, unknowns_of, ChipSpec};
use sstvs::netlist::Circuit;
use sstvs::num::rng::{Rng, Xoshiro256pp};
use sstvs::num::{invert_permutation, DenseMatrix, SparseLu, TripletMatrix};

/// Options tightened so two differently-ordered Newton trajectories
/// land within 1e-9 V of each other, with the sparse path forced on.
fn tight(structure: SolverStructure, jobs: Option<usize>) -> SimOptions {
    SimOptions {
        structure,
        solver_jobs: jobs,
        sparse_threshold: 0,
        reltol: 1e-6,
        vabstol: 1e-9,
        iabstol: 1e-14,
        ..SimOptions::default()
    }
}

/// A seeded hub-and-chain pattern: dense diagonal, one hub row/column
/// coupling every unknown, a wrap-around chain, and random symmetric
/// extras. Natural elimination hits the hub first and fills the whole
/// matrix; minimum degree defers it to the end and stays sparse —
/// exactly the fill asymmetry the ordering exists to remove.
fn random_hub_stamps(n: usize, seed: u64) -> Vec<(usize, usize, f64)> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut stamps = Vec::new();
    for i in 0..n {
        // Strong diagonal keeps every pivot healthy under the
        // diagonal-preference rule, so natural and ordered paths pivot
        // identically (no fallback noise in the fill comparison).
        stamps.push((i, i, 8.0 + rng.gen_range(0.0, 4.0)));
    }
    for i in 1..n {
        let v = rng.gen_range(-1.0, 1.0);
        stamps.push((0, i, v));
        stamps.push((i, 0, v));
        let w = rng.gen_range(-1.0, 1.0);
        let j = (i % (n - 1)) + 1;
        stamps.push((i, j, w));
        stamps.push((j, i, w));
    }
    for _ in 0..n {
        let i = rng.gen_index(n - 1) + 1;
        let j = rng.gen_index(n - 1) + 1;
        let v = rng.gen_range(-0.5, 0.5);
        stamps.push((i, j, v));
        stamps.push((j, i, v));
    }
    stamps
}

#[test]
fn ordered_factorization_reconstructs_and_reduces_fill_over_a_seed_sweep() {
    let n = 30;
    for seed in 0..8u64 {
        let stamps = random_hub_stamps(n, seed);
        let mut t = TripletMatrix::new(n);
        for &(r, c, v) in &stamps {
            t.add(r, c, v);
        }
        let natural = t.to_csc();
        let nat_lu = SparseLu::factorize(&natural).expect("natural factorization");

        // The compiled ordered pattern starts zero-valued; replay the
        // stamp sequence through its scatter map, as the kernel does.
        let (mut ordered, map, perm) = t.compile_ordered();
        for (k, &(_, _, v)) in stamps.iter().enumerate() {
            ordered.values_mut()[map[k]] += v;
        }
        let ord_lu = SparseLu::factorize(&ordered).expect("ordered factorization");
        let new_of = invert_permutation(&perm);

        // Fill: minimum degree must never lose to natural order on a
        // hub pattern (it wins by a wide margin; ≤ is the contract).
        assert!(
            ord_lu.factor_nnz() <= nat_lu.factor_nnz(),
            "seed {seed}: ordering increased fill ({} > {})",
            ord_lu.factor_nnz(),
            nat_lu.factor_nnz()
        );

        // Reconstruction: solving P·A·Pᵀ·(P·x) = P·e_j for every unit
        // vector and mapping back through the permutation must invert
        // the dense operator — L·U represents exactly A.
        let dense: DenseMatrix = natural.to_dense();
        let reference = dense.factorize().expect("dense factorization");
        let mut pb = vec![0.0; n];
        let mut px = vec![0.0; n];
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            for (old, &bv) in e.iter().enumerate() {
                pb[new_of[old]] = bv;
            }
            ord_lu.solve_into(&pb, &mut px).expect("ordered solve");
            let x: Vec<f64> = (0..n).map(|old| px[new_of[old]]).collect();
            // x must reproduce the dense solution…
            let xd = reference.solve(&e);
            for (i, (a, b)) in x.iter().zip(&xd).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-10,
                    "seed {seed}, rhs {j}: x[{i}] ordered {a} vs dense {b}"
                );
            }
            // …and A·x must reproduce the unit vector.
            let ax = dense.mul_vec(&x).expect("dimensions match");
            for (i, v) in ax.iter().enumerate() {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (v - want).abs() <= 1e-10,
                    "seed {seed}: (A·x)[{i}] = {v}, want {want}"
                );
            }
        }
    }
}

/// The 100-instance floorplan of the issue: flattened, it is well past
/// the dense threshold and tears into many per-unit islands.
fn chip_100() -> Circuit {
    generate_chip(&ChipSpec {
        instances: 100,
        islands: 3,
        seed: 0x5510_c0de,
    })
    .flatten()
}

#[test]
fn island_solve_is_bit_identical_across_worker_counts() {
    let flat = chip_100();
    let report = island_report(&flat, &tight(SolverStructure::Islands, None));
    assert_eq!(report.unknowns, unknowns_of(&flat));
    assert!(
        report.islands > 10,
        "expected one island per signal unit, got {}",
        report.islands
    );
    assert!(report.boundary > 0, "no boundary block torn");

    let baseline = solve_dc(&flat, &tight(SolverStructure::Islands, Some(1)))
        .expect("island solve at 1 worker")
        .unknowns()
        .to_vec();
    for jobs in [2usize, 8] {
        let sol = solve_dc(&flat, &tight(SolverStructure::Islands, Some(jobs)))
            .expect("island solve")
            .unknowns()
            .to_vec();
        for (i, (a, b)) in baseline.iter().zip(&sol).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "unknown {i} differs between 1 and {jobs} workers: {a} vs {b}"
            );
        }
    }
}

#[test]
fn structured_solves_match_the_flat_natural_solve() {
    let flat = chip_100();
    let natural = solve_dc(&flat, &tight(SolverStructure::Natural, None))
        .expect("natural solve")
        .unknowns()
        .to_vec();
    for structure in [SolverStructure::Ordered, SolverStructure::Islands] {
        let sol = solve_dc(&flat, &tight(structure, Some(2)))
            .expect("structured solve")
            .unknowns()
            .to_vec();
        let worst = natural
            .iter()
            .zip(&sol)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            worst <= 1e-9,
            "{structure:?} strayed {worst:.3e} from the flat natural solve"
        );
    }
}

#[test]
fn rail_shorted_floorplan_degrades_to_one_island_and_still_solves() {
    let spec = ChipSpec {
        instances: 20,
        islands: 3,
        seed: 0x5510_c0de,
    };
    let mut flat = generate_chip(&spec).flatten();
    let torn = island_report(&flat, &tight(SolverStructure::Islands, None));
    assert!(torn.islands > 1, "clean chip should tear into many islands");

    // Weld every unit's signal path to its neighbour's: one connected
    // interior remains. The partition must degrade, not error.
    short_units(&mut flat, spec.instances, 10.0);
    let welded = island_report(&flat, &tight(SolverStructure::Islands, None));
    assert_eq!(
        welded.islands, 1,
        "shorted floorplan should collapse to a single island"
    );

    let natural = solve_dc(&flat, &tight(SolverStructure::Natural, None))
        .expect("natural solve of shorted chip")
        .unknowns()
        .to_vec();
    let island = solve_dc(&flat, &tight(SolverStructure::Islands, Some(4)))
        .expect("island solve of shorted chip must degrade, not error")
        .unknowns()
        .to_vec();
    let worst = natural
        .iter()
        .zip(&island)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(worst <= 1e-9, "degraded solve strayed {worst:.3e}");
}

#[test]
fn island_transient_is_worker_count_deterministic() {
    // A smaller floorplan keeps the transient cheap; the property is
    // worker-count independence through the full adaptive stepper.
    let flat = generate_chip(&ChipSpec {
        instances: 8,
        islands: 3,
        seed: 0x5510_c0de,
    })
    .flatten();
    let probe = flat.find_node("u0_y").expect("unit sink net");
    let serial = run_transient(&flat, 1e-9, &tight(SolverStructure::Islands, Some(1)))
        .expect("transient at 1 worker");
    let fanned = run_transient(&flat, 1e-9, &tight(SolverStructure::Islands, Some(4)))
        .expect("transient at 4 workers");
    assert_eq!(serial.len(), fanned.len(), "step sequences differ");
    for (k, (a, b)) in serial
        .node_series(probe)
        .iter()
        .zip(&fanned.node_series(probe))
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "transient sample {k} differs across worker counts"
        );
    }
}

#[test]
fn natural_default_is_the_ordering_off_path_bit_for_bit() {
    // The acceptance gate for "ordering off is bit-identical to PR-9":
    // `Natural` is the default and compiles the identical pattern the
    // pre-structuring kernel compiled, so defaulted options and an
    // explicit `Natural` request must agree bitwise.
    assert_eq!(SimOptions::default().structure, SolverStructure::Natural);

    let flat = generate_chip(&ChipSpec {
        instances: 12,
        islands: 3,
        seed: 0x5510_c0de,
    })
    .flatten();
    let defaulted = SimOptions {
        sparse_threshold: 0,
        ..SimOptions::default()
    };
    let explicit = SimOptions {
        structure: SolverStructure::Natural,
        ..defaulted.clone()
    };
    let a = solve_dc(&flat, &defaulted).expect("default solve");
    let b = solve_dc(&flat, &explicit).expect("explicit natural solve");
    for (i, (x, y)) in a.unknowns().iter().zip(b.unknowns()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "unknown {i} differs: {x} vs {y}");
    }
}
