//! The artifact contract: canonical byte-identical round-trips, stale
//! detection via the content hash, and worker-count-independent fills
//! (the same determinism contract as `runner_determinism.rs`).

use sstvs::cells::{ShifterKind, Sstvs, SstvsSizes};
use sstvs::charlib::{BuildStatus, CharLib, CharLibError, GridSpec};
use sstvs::flows::CharacterizeOptions;
use sstvs::runner::RunnerOptions;

/// Worker counts that must produce identical tables.
const JOB_COUNTS: [usize; 3] = [1, 2, 8];

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "vls_charlib_test_{name}_{}.json",
        std::process::id()
    ))
}

fn build_smoke(runner: &RunnerOptions) -> CharLib {
    CharLib::build(
        &ShifterKind::sstvs(),
        &CharacterizeOptions::default(),
        GridSpec::smoke(),
        runner,
    )
}

#[test]
fn save_load_save_is_byte_identical() {
    let path = tmp("roundtrip");
    let lib = build_smoke(&RunnerOptions::default());
    lib.save(&path).expect("save");
    let first = std::fs::read_to_string(&path).expect("read back");

    let loaded = CharLib::load(
        &path,
        &ShifterKind::sstvs(),
        &CharacterizeOptions::default(),
    )
    .expect("load");
    assert_eq!(loaded.content_hash(), lib.content_hash());
    assert_eq!(loaded.grid(), lib.grid());
    for flat in 0..lib.grid().n_points() {
        assert_eq!(
            loaded.point_metrics(flat),
            lib.point_metrics(flat),
            "point {flat} changed across the round trip"
        );
    }

    loaded.save(&path).expect("save again");
    let second = std::fs::read_to_string(&path).expect("read back");
    assert_eq!(first, second, "save -> load -> save must be byte-identical");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn mutated_content_hash_forces_rebuild() {
    let path = tmp("stale");
    let kind = ShifterKind::sstvs();
    let base = CharacterizeOptions::default();
    let lib = build_smoke(&RunnerOptions::default());
    lib.save(&path).expect("save");

    // Corrupt the stored hash: the loader must refuse, never serve.
    let text = std::fs::read_to_string(&path).expect("read");
    let tag = format!("{:#018x}", lib.content_hash());
    assert!(text.contains(&tag), "artifact carries its hash");
    let mutated = text.replace(&tag, "0xdeadbeefdeadbeef");
    std::fs::write(&path, &mutated).expect("write mutation");

    let err = CharLib::load(&path, &kind, &base).unwrap_err();
    assert!(
        matches!(err, CharLibError::Stale { found, .. } if found == 0xdead_beef_dead_beef),
        "expected a stale report, got {err}"
    );

    // load_or_build detects the mismatch and rebuilds over it.
    let (rebuilt, status) = CharLib::load_or_build(
        &path,
        &kind,
        &base,
        GridSpec::smoke(),
        &RunnerOptions::default(),
    )
    .expect("rebuild");
    assert!(
        matches!(&status, BuildStatus::Rebuilt(why) if why.contains("stale")),
        "expected a rebuild, got {status:?}"
    );
    assert_eq!(rebuilt.content_hash(), lib.content_hash());

    // A different device sizing also refuses the artifact — the hash
    // covers the cell's parameters, not just its name.
    let mut sizes = SstvsSizes::paper();
    sizes.w_m1 *= 2.0;
    let resized = ShifterKind::Sstvs(Sstvs::with_sizes(sizes));
    let err = CharLib::load(&path, &resized, &base).unwrap_err();
    assert!(matches!(err, CharLibError::Stale { .. }), "{err}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn missing_artifact_builds_and_then_loads() {
    let path = tmp("fresh");
    let _ = std::fs::remove_file(&path);
    let kind = ShifterKind::sstvs();
    let base = CharacterizeOptions::default();
    let runner = RunnerOptions::default();

    let (built, status) =
        CharLib::load_or_build(&path, &kind, &base, GridSpec::smoke(), &runner).expect("build");
    assert_eq!(status, BuildStatus::BuiltMissing);

    let (loaded, status) =
        CharLib::load_or_build(&path, &kind, &base, GridSpec::smoke(), &runner).expect("load");
    assert_eq!(status, BuildStatus::Loaded, "second call must not rebuild");
    assert_eq!(loaded.to_json(), built.to_json());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn table_fill_is_bit_identical_for_any_worker_count() {
    let baseline = build_smoke(&RunnerOptions::with_jobs(JOB_COUNTS[0])).to_json();
    for jobs in &JOB_COUNTS[1..] {
        let json = build_smoke(&RunnerOptions::with_jobs(*jobs)).to_json();
        assert_eq!(
            baseline, json,
            "table fill differs at {jobs} workers — determinism contract broken"
        );
    }
}
