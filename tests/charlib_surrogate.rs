//! The surrogate accuracy and fallback contract: on held-out midpoints
//! of a dense grid the interpolated answer is within 1% of the exact
//! transient, and queries outside the trust region demonstrably fall
//! back to exact simulation with the miss recorded.

use sstvs::cells::ShifterKind;
use sstvs::charlib::{CharLib, EvalSource, FallbackReason, GridSpec, QueryPoint};
use sstvs::flows::CharacterizeOptions;
use sstvs::runner::RunnerOptions;

/// A dense (0.05 V pitch) patch of the functional region. Small enough
/// to fill in test time, fine enough for multilinear interpolation to
/// be well under the 1% contract.
fn dense_grid() -> GridSpec {
    GridSpec::new(
        vec![50e-12],
        vec![1e-15],
        vec![1.1, 1.15, 1.2],
        vec![1.15, 1.2, 1.25],
        vec![27.0],
        0.0,
    )
    .expect("dense grid is statically valid")
}

fn dense_lib() -> CharLib {
    CharLib::build(
        &ShifterKind::sstvs(),
        &CharacterizeOptions::default(),
        dense_grid(),
        &RunnerOptions::default(),
    )
}

fn at(vddi: f64, vddo: f64) -> QueryPoint {
    QueryPoint {
        slew: 50e-12,
        load: 1e-15,
        vddi,
        vddo,
        temp: 27.0,
    }
}

#[test]
fn held_out_midpoints_within_one_percent() {
    let lib = dense_lib();
    // Cell-center midpoints: coordinates the table has never seen.
    for &(vddi, vddo) in &[
        (1.125, 1.175),
        (1.175, 1.225),
        (1.125, 1.225),
        (1.175, 1.175),
    ] {
        let q = at(vddi, vddo);
        let s = lib.eval_table(&q).expect("midpoint inside the table");
        let e = lib.eval_exact(&q).expect("exact protocol runs");
        assert!(e.functional, "midpoint ({vddi}, {vddo}) must translate");
        for (surrogate, exact, what) in [
            (s.delay_rise, e.delay_rise, "delay_rise"),
            (s.delay_fall, e.delay_fall, "delay_fall"),
            (s.power_rise, e.power_rise, "power_rise"),
            (s.power_fall, e.power_fall, "power_fall"),
        ] {
            let rel = (surrogate - exact).abs() / exact.abs();
            assert!(
                rel < 0.01,
                "({vddi}, {vddo}).{what}: surrogate error {:.3}% breaks the 1% contract",
                rel * 100.0
            );
        }
    }
}

#[test]
fn on_grid_queries_are_exact_table_hits() {
    let lib = dense_lib();
    let q = at(1.15, 1.2);
    let flat = lib.grid().flat_index([0, 0, 1, 1, 0]);
    let stored = lib.point_metrics(flat);
    let ev = lib.eval(&q).expect("grid-node query");
    assert_eq!(ev.source, EvalSource::Table);
    assert_eq!(
        ev.metrics.delay_rise, stored.delay_rise,
        "bit-exact at nodes"
    );
    assert_eq!(lib.hit_count(), 1);
    assert_eq!(lib.miss_count(), 0);
}

#[test]
fn out_of_trust_region_falls_back_and_counts_the_miss() {
    let lib = dense_lib();
    assert_eq!(lib.miss_count(), 0);

    // VDDI below the hull: the vddi axis rejects it.
    let q = at(1.0, 1.2);
    let ev = lib.eval(&q).expect("exact fallback runs");
    assert_eq!(
        ev.source,
        EvalSource::Exact(FallbackReason::OutOfTrustRegion("vddi"))
    );
    assert!(ev.metrics.functional);
    assert_eq!(lib.miss_count(), 1);
    assert_eq!(lib.hit_count(), 0);

    // The same point answered exactly must agree with the fallback —
    // both run the identical protocol.
    let e = lib.eval_exact(&q).expect("exact protocol runs");
    assert_eq!(ev.metrics, e);

    // A singleton-axis violation (temperature) also falls back.
    let hot = QueryPoint {
        temp: 90.0,
        ..at(1.15, 1.2)
    };
    let ev = lib.eval(&hot).expect("exact fallback runs");
    assert_eq!(
        ev.source,
        EvalSource::Exact(FallbackReason::OutOfTrustRegion("temp"))
    );
    assert_eq!(lib.miss_count(), 2);

    // eval_table never serves those queries.
    assert!(lib.eval_table(&q).is_none());
    assert!(lib.eval_table(&hot).is_none());

    // Inside the region the table serves without touching the miss
    // counter.
    let ok = lib.eval(&at(1.15, 1.2)).expect("table hit");
    assert_eq!(ok.source, EvalSource::Table);
    assert_eq!(lib.miss_count(), 2);
    assert_eq!(lib.hit_count(), 1);
}
