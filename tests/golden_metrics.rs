//! Golden-value regression tests: the headline numbers recorded in
//! EXPERIMENTS.md, asserted with generous bands. If a model or engine
//! change silently shifts the reproduction, this file is what fails.

use sstvs::cells::{ShifterKind, VoltagePair};
use sstvs::device::{MosGeometry, MosModel, SourceWaveform};
use sstvs::engine::{dc_sweep_with_stats, solve_dc, SimOptions};
use sstvs::flows::{characterize, CharacterizeOptions};
use sstvs::netlist::{Circuit, Element};

fn within(value: f64, golden: f64, rel: f64) -> bool {
    (value - golden).abs() <= rel * golden.abs()
}

#[test]
fn table1_golden_values() {
    // EXPERIMENTS.md, Table 1 (ours): SS-TVS at 0.8 → 1.2 V.
    let m = characterize(
        &ShifterKind::sstvs(),
        VoltagePair::low_to_high(),
        &CharacterizeOptions::default(),
    )
    .unwrap();
    assert!(
        within(m.delay_rise.as_picos(), 183.3, 0.25),
        "delay rise {}",
        m.delay_rise
    );
    assert!(
        within(m.delay_fall.as_picos(), 123.4, 0.25),
        "delay fall {}",
        m.delay_fall
    );
    assert!(
        within(m.leakage_high.as_nanos(), 1.01, 0.5),
        "leak high {}",
        m.leakage_high
    );
    assert!(
        within(m.leakage_low.as_nanos(), 2.67, 0.5),
        "leak low {}",
        m.leakage_low
    );
    assert!(
        within(m.power_rise.as_micros(), 5.31, 0.35),
        "power rise {}",
        m.power_rise
    );
}

#[test]
fn table2_golden_values() {
    // EXPERIMENTS.md, Table 2 (ours): SS-TVS at 1.2 → 0.8 V.
    let m = characterize(
        &ShifterKind::sstvs(),
        VoltagePair::high_to_low(),
        &CharacterizeOptions::default(),
    )
    .unwrap();
    assert!(
        within(m.delay_rise.as_picos(), 115.2, 0.25),
        "delay rise {}",
        m.delay_rise
    );
    assert!(
        within(m.delay_fall.as_picos(), 28.4, 0.25),
        "delay fall {}",
        m.delay_fall
    );
    assert!(
        within(m.leakage_high.as_nanos(), 0.38, 0.6),
        "leak high {}",
        m.leakage_high
    );
    assert!(
        within(m.leakage_low.as_nanos(), 0.96, 0.6),
        "leak low {}",
        m.leakage_low
    );
}

#[test]
fn combined_vs_golden_leakage_band() {
    // The baseline's leakage class is part of the reproduction story:
    // hundreds of nanoamps at the low-to-high corner (paper: 157/71 nA;
    // ours: 315/266 nA).
    let m = characterize(
        &ShifterKind::combined(),
        VoltagePair::low_to_high(),
        &CharacterizeOptions::default(),
    )
    .unwrap();
    assert!(
        m.leakage_high.as_nanos() > 100.0 && m.leakage_high.as_nanos() < 1000.0,
        "combined leak high {}",
        m.leakage_high
    );
    assert!(
        m.leakage_low.as_nanos() > 80.0 && m.leakage_low.as_nanos() < 900.0,
        "combined leak low {}",
        m.leakage_low
    );
}

#[test]
fn warm_start_sweep_matches_cold_start_within_newton_tolerance() {
    // The warm-chained VTC sweep must land on the same operating
    // points as cold-starting every point from scratch: warm starting
    // is an accelerator, never a different answer.
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let inp = c.node("in");
    let out = c.node("out");
    c.add_vsource("vdd", vdd, Circuit::GROUND, SourceWaveform::Dc(1.2));
    c.add_vsource("vin", inp, Circuit::GROUND, SourceWaveform::Dc(0.0));
    c.add_mosfet(
        "mp",
        out,
        inp,
        vdd,
        vdd,
        MosModel::ptm90_pmos(),
        MosGeometry::from_microns(0.4, 0.1),
    );
    c.add_mosfet(
        "mn",
        out,
        inp,
        Circuit::GROUND,
        Circuit::GROUND,
        MosModel::ptm90_nmos(),
        MosGeometry::from_microns(0.2, 0.1),
    );
    let options = SimOptions::default();
    let (points, stats) = dc_sweep_with_stats(&c, "vin", 0.0, 1.2, 0.05, &options).unwrap();
    assert!(stats.warm_points > 0, "chain never warm-started: {stats:?}");

    for p in &points {
        // Cold baseline: a fresh operating point at the same bias.
        let mut cold = c.clone();
        for e in cold.elements_mut() {
            if let Element::VoltageSource { name, wave, .. } = e {
                if name == "vin" {
                    *wave = SourceWaveform::Dc(p.value);
                }
            }
        }
        let cold_sol = solve_dc(&cold, &options).unwrap();
        let dv = (p.solution.voltage(out) - cold_sol.voltage(out)).abs();
        assert!(
            dv <= 1e-6,
            "warm/cold divergence {dv:.3e} V at vin = {}",
            p.value
        );
    }
}

#[test]
fn area_golden_value() {
    let entries = sstvs::flows::experiments::area::area_report();
    let sstvs_area = entries
        .iter()
        .find(|e| e.label == "SS-TVS")
        .unwrap()
        .area_um2;
    // Paper: 4.47 µm²; estimator calibrated to 4.81 µm².
    assert!(within(sstvs_area, 4.81, 0.15), "area {sstvs_area}");
}
