//! Tier-1 regression gates for the `vls-opt` sizing optimizer.
//!
//! Three contracts, each cheap enough for every CI run:
//!
//! 1. **Pinned convergence** — on a smooth 2-knob toy bowl the search
//!    lands on the analytic optimum to 1e-9, every run, forever.
//! 2. **Worker-count invariance** — the full outcome (trajectory,
//!    accounting, verification) is identical at 1, 2 and 8 workers.
//! 3. **Surrogate lie** — a corrupted surrogate table lures the search
//!    to a fake optimum; exact re-verification must refuse it, leaving
//!    the run with no accepted best.

use sstvs::charlib::TableMetrics;
use sstvs::opt::{
    optimize, FnSource, Knob, Objective, OptimizerConfig, ParamSpace, SizingSurrogate,
    SurrogateConfig, Verdict,
};
use sstvs::runner::RunnerOptions;

/// The toy ground truth: a quadratic delay bowl with its minimum at
/// (0.7, 1.3), everywhere functional, constant power/leakage.
fn bowl_metrics(x: &[f64]) -> TableMetrics {
    let v = 1e-10 * (1.0 + (x[0] - 0.7).powi(2) + (x[1] - 1.3).powi(2));
    TableMetrics {
        delay_rise: v,
        delay_fall: v,
        power_rise: 1e-6,
        power_fall: 1e-6,
        leakage_high: 1e-9,
        leakage_low: 1e-9,
        functional: true,
    }
}

fn bowl() -> FnSource<impl Fn(&[f64]) -> Result<TableMetrics, String> + Sync> {
    FnSource::new(|x: &[f64]| Ok(bowl_metrics(x)))
}

fn space() -> ParamSpace {
    ParamSpace::new(vec![
        Knob::new("a", 0.0, 2.0, 0.01),
        Knob::new("b", 0.0, 2.0, 0.01),
    ])
    .unwrap()
}

fn objective() -> Objective {
    Objective::DelayAtLeakageCap { cap_amps: 1e-6 }
}

#[test]
fn converges_to_the_pinned_optimum() {
    let config = OptimizerConfig {
        budget: 300,
        restarts: 2,
        runner: RunnerOptions::serial(),
        ..OptimizerConfig::default()
    };
    let out = optimize(&space(), &objective(), &bowl(), None, &config).unwrap();
    let best = out.best_restart().expect("an accepted optimum");
    assert_eq!(best.verification.verdict, Verdict::Accepted);
    // The optimum is on the lattice: the pin is exact to rounding.
    assert!(
        (best.best[0] - 0.7).abs() < 1e-9,
        "a = {} drifted off the pinned optimum",
        best.best[0]
    );
    assert!(
        (best.best[1] - 1.3).abs() < 1e-9,
        "b = {} drifted off the pinned optimum",
        best.best[1]
    );
    // Exact-path search: verification re-runs the same source, so the
    // gap is identically zero.
    assert_eq!(best.verification.gap, Some(0.0));
    assert!(out.evaluations <= 300);
}

#[test]
fn outcome_is_bit_identical_at_any_worker_count() {
    let space = space();
    let src = bowl();
    let sur_config = SurrogateConfig {
        samples_per_knob: 5,
        trust_margin: 0.1,
    };
    let mut outcomes = Vec::new();
    for jobs in [1usize, 2, 8] {
        let runner = RunnerOptions::with_jobs(jobs);
        let surrogate = SizingSurrogate::build(&space, &sur_config, &src, &runner).unwrap();
        let config = OptimizerConfig {
            budget: 200,
            restarts: 2,
            runner,
            ..OptimizerConfig::default()
        };
        let out = optimize(&space, &objective(), &src, Some(&surrogate), &config).unwrap();
        outcomes.push((jobs, out));
    }
    let (_, baseline) = &outcomes[0];
    assert!(!baseline.trajectory.is_empty());
    for (jobs, out) in &outcomes[1..] {
        // Full structural equality: every trajectory step, cost,
        // accounting counter and verdict — not just the best point.
        assert_eq!(baseline, out, "outcome differs at {jobs} workers");
        // And the rendered artifact is byte-identical too.
        assert_eq!(
            baseline.to_json(),
            out.to_json(),
            "artifact differs at {jobs} workers"
        );
    }
}

#[test]
fn surrogate_lie_is_refused_by_exact_verification() {
    let space = space();
    let src = bowl();
    // 5 samples/knob puts grid samples at 0, 0.5, 1.0, 1.5, 2.0.
    let mut surrogate = SizingSurrogate::build(
        &space,
        &SurrogateConfig {
            samples_per_knob: 5,
            trust_margin: 0.1,
        },
        &src,
        &RunnerOptions::serial(),
    )
    .unwrap();
    // Plant the lie: the sample at (0.5, 1.5) claims a delay three
    // orders of magnitude better than anything real.
    let flat = surrogate.table().grid().flat_index(&[1, 3]);
    let mut lie = bowl_metrics(&[0.5, 1.5]);
    lie.delay_rise = 1e-13;
    lie.delay_fall = 1e-13;
    surrogate.table_mut().set_point(flat, lie);

    // One midpoint start with a generous budget: the search walks
    // straight into the planted minimum...
    let config = OptimizerConfig {
        budget: 300,
        restarts: 0,
        runner: RunnerOptions::serial(),
        ..OptimizerConfig::default()
    };
    let out = optimize(&space, &objective(), &src, Some(&surrogate), &config).unwrap();
    let restart = &out.restarts[0];
    assert_eq!(
        restart.best,
        vec![0.5, 1.5],
        "the search was supposed to fall for the planted lie"
    );
    // ...and exact verification refuses it: the exact cost at the lie
    // point is ~1.08e-10, nowhere near the claimed 1e-13.
    assert_eq!(restart.verification.verdict, Verdict::Refused);
    assert!(restart.verification.gap.unwrap() > 0.9);
    assert_eq!(out.best, None, "a refused optimum must never be the best");

    // Control: the same run on an honest surrogate accepts.
    let honest = SizingSurrogate::build(
        &space,
        &SurrogateConfig {
            samples_per_knob: 9,
            trust_margin: 0.1,
        },
        &src,
        &RunnerOptions::serial(),
    )
    .unwrap();
    let config = OptimizerConfig {
        gap_tolerance: 0.05,
        ..config
    };
    let out = optimize(&space, &objective(), &src, Some(&honest), &config).unwrap();
    assert!(out.best_restart().is_some(), "honest surrogate must pass");
}
