//! Fault-injection soak suite: the resilience contract, end to end.
//!
//! A 256-trial ensemble runs with a deterministic fault plan armed —
//! forced Newton non-convergence on a seed-selected subset of trials,
//! pivot-health degradation, LTE-rejection storms and bypass-cache
//! poisoning sprinkled across the rest. The contract under test:
//!
//! * the ensemble **completes** — injected failures surface as typed,
//!   machine-readable taxonomy entries in a partial report, never as
//!   aborts or panics;
//! * every failure carries its replay seed, and replaying that seed
//!   reproduces the identical failure;
//! * the retry ladder ([`SimOptions::escalated`]) recovers every
//!   injected failure, because a retry is a clean re-run;
//! * the solver's work counters stay self-consistent on perturbed
//!   trajectories, and outcomes are bit-identical at any worker count.

use sstvs::cells::primitives::Inverter;
use sstvs::cells::{Harness, ShifterKind, VoltagePair};
use sstvs::engine::{
    run_transient, solve_dc, EngineError, FaultPlan, KernelMode, SimOptions, SolverStructure,
};
use sstvs::netlist::chipgen::{generate_chip, ChipSpec};
use sstvs::netlist::Circuit;
use sstvs::num::rng::Xoshiro256pp;
use sstvs::num::SolverStats;
use sstvs::runner::{
    derive_seed, run_ensemble, run_ensemble_resilient, run_indexed, OpCache, OpKey, RetryPolicy,
    RunnerOptions,
};
use sstvs::variation::{sample_perturbation, VariationSpec};

const TRIALS: usize = 256;
const MASTER_SEED: u64 = 0xFA_017;
const TSTOP: f64 = 1e-9;

/// The soak plan: trials whose seed lands on `seed % 5 == 3` get all
/// four homotopy stages sabotaged (guaranteed non-convergence); other
/// predicates sprinkle recoverable single-shot faults — a pivot-health
/// latch, an LTE rejection and a poisoned bypass cache.
const SOAK_PLAN: &str = "newton@warm:every=5:offset=3,newton@plain:every=5:offset=3,\
                         newton@gmin:every=5:offset=3,newton@source:every=5:offset=3,\
                         pivot:every=7:offset=2,lte:every=3:offset=1,bypass:every=11:offset=4";

/// Seeds the plan dooms to non-convergence.
fn doomed(seed: u64) -> bool {
    seed % 5 == 3
}

/// A small nonlinear victim: the minimum inverter in a down-conversion
/// harness — two MOSFETs, a load cap and the standard pulse stimulus.
fn victim() -> Harness {
    let domains = VoltagePair::high_to_low();
    let (wave, _, _, _) = Harness::standard_stimulus(domains);
    Harness::build(
        &ShifterKind::Inverter(Inverter::minimum()),
        domains,
        wave,
        1e-15,
    )
}

/// Base options for faulted runs: symbolic kernel on the sparse path
/// (so the pivot hook is live) with bypassing on (so the poison hook
/// is live), plan armed per trial seed.
fn faulted_sim(plan: &FaultPlan, seed: u64) -> SimOptions {
    SimOptions {
        kernel: KernelMode::Symbolic,
        sparse_threshold: 0,
        bypass_vtol: 1e-6,
        fault: plan.arm(seed),
        ..SimOptions::default()
    }
}

/// One soak trial at one escalation rung: a short transient (initial
/// DC plus stepping) returning its solver counters.
fn soak_trial(
    circuit: &Circuit,
    plan: &FaultPlan,
    seed: u64,
    rung: usize,
) -> Result<SolverStats, EngineError> {
    let sim = faulted_sim(plan, seed).escalated(rung);
    run_transient(circuit, TSTOP, &sim).map(|res| res.solver_stats())
}

fn classify(e: &EngineError) -> (String, u64) {
    let spent = match e {
        EngineError::BudgetExhausted { spent, .. } => *spent,
        _ => 0,
    };
    (e.failure_class().to_string(), spent)
}

#[test]
fn soak_completes_with_a_full_failure_taxonomy() {
    let h = victim();
    let plan = FaultPlan::parse(SOAK_PLAN).unwrap();
    let e = run_ensemble_resilient(
        TRIALS,
        MASTER_SEED,
        &RunnerOptions::default(),
        RetryPolicy::none(),
        |job, rung| soak_trial(&h.circuit, &plan, job.seed, rung),
        classify,
    );

    // The ensemble completed: every trial has an outcome.
    assert_eq!(e.outcomes.len(), TRIALS);

    // Exactly the doomed seeds failed, and each failure is a typed
    // no-convergence — never a panic, never an abort.
    let expected: Vec<usize> = (0..TRIALS)
        .filter(|&i| doomed(derive_seed(MASTER_SEED, i as u64)))
        .collect();
    assert!(expected.len() > 20, "plan dooms a healthy fraction");
    let failed: Vec<usize> = e.failures().iter().map(|f| f.job.index).collect();
    assert_eq!(failed, expected, "failure set is exactly the doomed set");

    // The partial report lists every failed trial: index order, stable
    // class token, correct replay seed.
    assert_eq!(e.report.failures.len(), expected.len());
    for t in &e.report.failures {
        assert!(doomed(t.seed));
        assert_eq!(t.seed, derive_seed(MASTER_SEED, t.index as u64));
        assert_eq!(t.class, "no_convergence");
        assert_eq!(t.stage_reached, 0);
    }
    let rendered = e.report.render();
    assert!(rendered.contains("FAILED trial"), "{rendered}");

    // Survivors' counters mark perturbed trajectories: any trial the
    // plan touched reports injected faults, untouched trials report
    // none and fired no pivot fallback beyond organic ones.
    let mut touched = 0;
    for s in e.outcomes.iter().filter_map(|o| o.as_ref().ok()) {
        let armed = !plan.arm(s.job.seed).is_empty();
        if armed {
            touched += 1;
            assert!(
                s.value.injected_faults > 0,
                "armed trial {} shows no injected faults",
                s.job.index
            );
        } else {
            assert_eq!(s.value.injected_faults, 0);
        }
    }
    assert!(touched > 50, "plan touches a healthy survivor fraction");
}

#[test]
fn replaying_a_failed_seed_reproduces_the_identical_failure() {
    let h = victim();
    let plan = FaultPlan::parse(SOAK_PLAN).unwrap();
    // Find the first few doomed trials without running the ensemble.
    let doomed_seeds: Vec<u64> = (0..TRIALS as u64)
        .map(|i| derive_seed(MASTER_SEED, i))
        .filter(|&s| doomed(s))
        .take(3)
        .collect();
    assert_eq!(doomed_seeds.len(), 3);
    for seed in doomed_seeds {
        let a = soak_trial(&h.circuit, &plan, seed, 0).unwrap_err();
        let b = soak_trial(&h.circuit, &plan, seed, 0).unwrap_err();
        assert_eq!(a.failure_class(), "no_convergence");
        assert_eq!(a.failure_class(), b.failure_class());
        assert_eq!(a.to_string(), b.to_string(), "replay diverged");
    }
}

#[test]
fn retry_ladder_recovers_every_injected_failure() {
    let h = victim();
    let plan = FaultPlan::parse(SOAK_PLAN).unwrap();
    // A smaller ensemble keeps the double-attempt cost down; the
    // doomed predicate still selects a nontrivial subset.
    let trials = 64;
    let e = run_ensemble_resilient(
        trials,
        MASTER_SEED,
        &RunnerOptions::default(),
        RetryPolicy::default(),
        |job, rung| soak_trial(&h.circuit, &plan, job.seed, rung),
        classify,
    );
    assert!(e.failures().is_empty(), "escalation disarms every fault");
    assert_eq!(e.successes().len(), trials);
    // Every doomed trial recovered at rung 1 (first clean re-run).
    let expected: Vec<usize> = (0..trials)
        .filter(|&i| doomed(derive_seed(MASTER_SEED, i as u64)))
        .collect();
    let recovered: Vec<usize> = e.recovered().iter().map(|(j, _)| j.index).collect();
    assert_eq!(recovered, expected);
    for (_, rung) in e.recovered() {
        assert_eq!(rung, 1, "one clean retry suffices");
    }
}

#[test]
fn soak_outcomes_are_schedule_independent() {
    let h = victim();
    let plan = FaultPlan::parse(SOAK_PLAN).unwrap();
    let trials = 48;
    let run = |jobs: usize| {
        run_ensemble_resilient(
            trials,
            MASTER_SEED,
            &RunnerOptions::with_jobs(jobs),
            RetryPolicy::none(),
            |job, rung| soak_trial(&h.circuit, &plan, job.seed, rung),
            classify,
        )
    };
    let serial = run(1);
    for jobs in [2, 8] {
        let par = run(jobs);
        assert_eq!(par.report.failures, serial.report.failures);
        for (a, b) in par.outcomes.iter().zip(&serial.outcomes) {
            match (a, b) {
                // SolverStats is Eq: counter-for-counter identical.
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.job, y.job);
                    assert_eq!(x.rung, y.rung);
                    assert_eq!(x.value, y.value);
                }
                (Err(x), Err(y)) => {
                    assert_eq!(x.job, y.job);
                    assert_eq!(x.stage_reached, y.stage_reached);
                }
                _ => panic!("outcome kind differs across schedules"),
            }
        }
    }
}

/// Satellite 1 — the work counters stay self-consistent on every path:
/// clean, pivot-degraded, stage-sabotaged, LTE-stormed and poisoned.
/// Invariants: every linear solve was backed by exactly one
/// factorization (full or numeric-only), Newton accounting dominates
/// linear solves (failed billed attempts only inflate it), and pivot
/// fallbacks never exceed the full factorizations they triggered.
#[test]
fn solver_stats_counters_stay_consistent_under_injection() {
    let h = victim();
    let plans = [
        "",
        "pivot:count=3",
        "newton@plain",
        "newton@warm,newton@plain",
        "lte:count=2,bypass",
        SOAK_PLAN,
    ];
    for text in plans {
        let plan = FaultPlan::parse(text).unwrap();
        for seed in [0, 2, 3, 16, 23] {
            let sim = faulted_sim(&plan, seed);
            // DC ladder alone, then the full transient.
            let mut all = Vec::new();
            if let Ok(sol) = solve_dc(&h.circuit, &sim) {
                all.push(("dc", sol.solver_stats()));
            }
            if let Ok(res) = run_transient(&h.circuit, TSTOP, &sim) {
                all.push(("tran", res.solver_stats()));
            }
            if all.is_empty() {
                // Only the full soak plan's doomed seeds may kill both
                // analyses — and they do so with typed errors.
                assert!(
                    text == SOAK_PLAN && doomed(seed),
                    "plan '{text}' seed {seed}"
                );
                continue;
            }
            for (phase, s) in all {
                assert_eq!(
                    s.linear_solves,
                    s.full_factorizations + s.refactorizations,
                    "{phase} plan='{text}' seed={seed}: {}",
                    s.render()
                );
                assert!(
                    s.newton_iters >= s.linear_solves,
                    "{phase} plan='{text}' seed={seed}: {}",
                    s.render()
                );
                assert!(
                    s.refactor_fallbacks <= s.full_factorizations,
                    "{phase} plan='{text}' seed={seed}: {}",
                    s.render()
                );
                let armed = !plan.arm(seed).is_empty();
                if !armed {
                    assert_eq!(s.injected_faults, 0, "{phase} clean run marked faulty");
                }
            }
        }
    }
}

/// Satellite 1 (escalation leg) — the invariants hold on every rung of
/// the retry ladder, including the legacy-kernel rungs.
#[test]
fn solver_stats_counters_stay_consistent_across_escalation() {
    let h = victim();
    let plan = FaultPlan::parse("pivot,lte").unwrap();
    let base = faulted_sim(&plan, 0);
    for rung in 0..4 {
        let sim = base.escalated(rung);
        let s = run_transient(&h.circuit, TSTOP, &sim)
            .expect("escalated runs converge")
            .solver_stats();
        assert_eq!(
            s.linear_solves,
            s.full_factorizations + s.refactorizations,
            "rung {rung}: {}",
            s.render()
        );
        assert!(s.newton_iters >= s.linear_solves, "rung {rung}");
        assert!(s.refactor_fallbacks <= s.full_factorizations, "rung {rung}");
        if rung > 0 {
            assert_eq!(s.injected_faults, 0, "escalation must disarm the plan");
        }
    }
}

/// Budgets surface as typed exhaustion, not hangs: a sabotaged ladder
/// burns through a small Newton budget, and a tiny step budget stops a
/// healthy transient — both with the stable `budget_exhausted` class.
#[test]
fn budgets_exhaust_with_typed_taxonomy_errors() {
    let h = victim();
    // The billed cost of one injected plain-stage failure (120 iters)
    // exceeds the budget.
    let plan = FaultPlan::parse("newton@plain").unwrap();
    let sim = SimOptions {
        newton_budget: Some(50),
        ..faulted_sim(&plan, 0)
    };
    let err = solve_dc(&h.circuit, &sim).unwrap_err();
    assert_eq!(err.failure_class(), "budget_exhausted");
    assert!(err.to_string().contains("dc ladder"), "{err}");

    let sim = SimOptions {
        step_budget: Some(3),
        ..SimOptions::default()
    };
    let err = run_transient(&h.circuit, TSTOP, &sim).unwrap_err();
    assert_eq!(err.failure_class(), "budget_exhausted");
    assert!(err.to_string().contains("transient stepping"), "{err}");
}

/// Satellite 2 — fuzz: randomized process perturbations of an
/// ERC-clean cell (the paper's Monte Carlo protocol, sigma scaled up
/// to 3x) never panic the solver. Every trial either converges or
/// returns a typed failure carrying its replay seed.
#[test]
fn fuzzed_perturbations_never_panic_and_fail_typed() {
    let h = victim();
    let spec = VariationSpec::paper().scaled(3.0);
    let e = run_ensemble(
        96,
        0xF022,
        &RunnerOptions::default(),
        |job| -> Result<f64, String> {
            let mut rng = Xoshiro256pp::seed_from_u64(job.seed);
            let map = sample_perturbation(&h.circuit, &spec, &mut rng, |_| true);
            let mut circuit = h.circuit.clone();
            map.apply(&mut circuit);
            // Exercise both analysis kinds under the symbolic kernel.
            let sim = SimOptions {
                kernel: KernelMode::Symbolic,
                sparse_threshold: 0,
                bypass_vtol: 1e-6,
                ..SimOptions::default()
            };
            let sol = solve_dc(&circuit, &sim)
                .map_err(|err| format!("seed {:#x}: {}", job.seed, err.failure_class()))?;
            run_transient(&circuit, TSTOP / 2.0, &sim)
                .map_err(|err| format!("seed {:#x}: {}", job.seed, err.failure_class()))?;
            Ok(sol.voltage(h.output))
        },
    );
    assert_eq!(e.outcomes.len(), 96);
    // Failures (if the 3-sigma tail produces any) must be typed with a
    // replayable seed baked into the message.
    for (job, msg) in e.failures() {
        assert!(
            msg.contains(&format!("{:#x}", job.seed)),
            "failure lost its replay seed: {msg}"
        );
    }
    // The overwhelming majority of 3x-sigma samples still converge.
    assert!(e.successes().len() >= 90, "{} failed", e.failures().len());
}

/// Satellite 3 — the warm-start cache under quantization collisions
/// and injected eviction pressure: counters stay exact, and a cache-
/// driven computation is byte-identical at 1, 2 and 8 workers.
#[test]
fn op_cache_is_exact_under_collisions_and_pressure_at_any_worker_count() {
    // Quantization collisions: float-noise keys collide (hit), real
    // grid neighbours do not (miss) — counted exactly.
    let mut c = OpCache::new(4);
    let base = OpKey::quantize(0.8, 1.2, 300.0);
    c.insert(base, vec![1.0]);
    for k in 0..8 {
        let noisy = OpKey::quantize(0.8 + 1e-13 * k as f64, 1.2, 300.0);
        assert!(c.get(&noisy).is_some(), "noise key {k} missed");
    }
    assert_eq!((c.hits(), c.misses()), (8, 0));
    assert!(c.get(&OpKey::quantize(0.805, 1.2, 300.0)).is_none());
    assert_eq!((c.hits(), c.misses()), (8, 1));

    // A deterministic per-index workload that routes through a private
    // cache, with eviction pressure injected on seed-selected indices.
    // The produced trace is a pure function of the index.
    let trace = |index: usize| -> Vec<u64> {
        let seed = derive_seed(0xCAC4E, index as u64);
        let mut cache = OpCache::new(3);
        cache.set_eviction_pressure(seed % 4 == 1);
        let mut out = Vec::new();
        for step in 0..12u64 {
            let v = 0.7 + 0.005 * ((seed.wrapping_add(step) % 7) as f64);
            let key = OpKey::quantize(v, 1.2, 300.0);
            let value = match cache.get(&key) {
                Some(x) => x[0],
                None => {
                    let fresh = v * (step + 1) as f64;
                    cache.insert(key, vec![fresh]);
                    fresh
                }
            };
            out.push(value.to_bits());
        }
        out.push(cache.hits());
        out.push(cache.misses());
        out
    };
    let serial = run_indexed(40, &RunnerOptions::serial(), trace);
    for jobs in [2, 8] {
        let par = run_indexed(40, &RunnerOptions::with_jobs(jobs), trace);
        assert_eq!(par, serial, "cache trace differs at {jobs} workers");
    }
    // Pressure actually bites: pressured indices miss more.
    let pressured = (0..40).find(|&i| derive_seed(0xCAC4E, i as u64) % 4 == 1);
    let free = (0..40).find(|&i| derive_seed(0xCAC4E, i as u64) % 4 != 1);
    let (p, f) = (pressured.unwrap(), free.unwrap());
    let misses = |t: &[u64]| t[t.len() - 1];
    assert!(
        misses(&serial[p]) >= misses(&serial[f]),
        "pressure did not increase miss traffic"
    );
}

/// PR-10 leg — the pivot-health degrade hook (PR-5) stays live on the
/// structured solver paths. A `pivot` charge against an `Ordered` or
/// `Islands` solve must fire (injected fault counted, a re-pivoting
/// fallback factorization billed) and must recover: the faulted
/// trajectory lands within Newton's own tolerance of the clean one.
#[test]
fn pivot_fault_fires_the_degrade_hook_on_structured_paths() {
    let flat = generate_chip(&ChipSpec {
        instances: 12,
        islands: 3,
        seed: 0x5510_c0de,
    })
    .flatten();
    let probe = flat.find_node("u0_y").expect("unit sink net");
    let plan = FaultPlan::parse("pivot").unwrap();
    for structure in [SolverStructure::Ordered, SolverStructure::Islands] {
        let clean_sim = SimOptions {
            kernel: KernelMode::Symbolic,
            sparse_threshold: 0,
            structure,
            ..SimOptions::default()
        };
        let faulted_sim = SimOptions {
            fault: plan.arm(0),
            ..clean_sim.clone()
        };
        let clean = run_transient(&flat, TSTOP, &clean_sim).expect("clean structured run");
        let faulted = run_transient(&flat, TSTOP, &faulted_sim).expect("faulted structured run");

        let s = faulted.solver_stats();
        assert!(
            s.injected_faults > 0,
            "{structure:?}: pivot charge never fired: {}",
            s.render()
        );
        assert!(
            s.refactor_fallbacks > 0,
            "{structure:?}: degrade hook fired no fallback: {}",
            s.render()
        );
        assert_eq!(
            clean.solver_stats().injected_faults,
            0,
            "{structure:?}: clean run marked faulty"
        );

        // Recovery: the fallback is a clean full factorization of the
        // same matrix, so the trajectory stays inside Newton's band.
        assert_eq!(
            clean.len(),
            faulted.len(),
            "{structure:?}: step sequences diverged"
        );
        let worst = clean
            .node_series(probe)
            .iter()
            .zip(&faulted.node_series(probe))
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(
            worst <= 1e-6,
            "{structure:?}: faulted run strayed {worst:.3e} V"
        );
    }
}

/// With no plan armed, the fault layer is invisible: options compare
/// equal to the defaults and a faulted-options run is bit-identical to
/// a plain run (the golden suites pin the absolute values; this pins
/// the "default-off" property directly).
#[test]
fn inert_plan_leaves_the_simulation_bit_identical() {
    let h = victim();
    let plain = SimOptions::default();
    let with_inert = SimOptions {
        fault: FaultPlan::parse("").unwrap(),
        ..SimOptions::default()
    };
    assert_eq!(plain, with_inert);
    let a = run_transient(&h.circuit, TSTOP, &plain).unwrap();
    let b = run_transient(&h.circuit, TSTOP, &with_inert).unwrap();
    assert_eq!(a.len(), b.len());
    let (xa, xb) = (a.node_series(h.output), b.node_series(h.output));
    for (x, y) in xa.iter().zip(&xb) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert_eq!(a.solver_stats().injected_faults, 0);
}
