//! Tier-1 ERC negative suite: deliberately broken netlists, each of
//! which must be caught by `vls-check` with the expected code *before*
//! any matrix is assembled. Every scenario here is a real failure mode
//! the engine used to discover only as a singular MNA system (or as a
//! silently wrong operating point).

use sstvs::cells::primitives::Inverter;
use sstvs::cells::{Harness, ShifterKind, VoltagePair};
use sstvs::check::{run_check, CheckOptions, ErcCode, Report, Severity};
use sstvs::device::{MosGeometry, MosModel, SourceWaveform};
use sstvs::netlist::Circuit;

fn check(c: &Circuit) -> Report {
    run_check(c, &CheckOptions::default())
}

fn geometry() -> MosGeometry {
    MosGeometry::from_microns(0.4, 0.1)
}

/// A resistor pair forming an island with no connection to ground:
/// ERC001 (floating nodes), error severity.
#[test]
fn floating_island_is_erc001() {
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let out = c.node("out");
    c.add_vsource("v1", vdd, Circuit::GROUND, SourceWaveform::Dc(1.2));
    c.add_resistor("rl", vdd, out, 1e3);
    c.add_resistor("rg", out, Circuit::GROUND, 1e3);
    // The island: a, b touch only each other.
    let a = c.node("a");
    let b = c.node("b");
    c.add_resistor("ri1", a, b, 1e3);
    c.add_resistor("ri2", b, a, 2e3);
    let report = check(&c);
    let hits = report.with_code(ErcCode::Erc001FloatingNode);
    for island_node in ["a", "b"] {
        assert!(
            hits.iter().any(
                |d| d.severity == Severity::Error && d.nodes.contains(&island_node.to_string())
            ),
            "{}",
            report.render_text()
        );
    }
    assert!(report.has_errors());
}

/// A resistor with both terminals on the same node does nothing and
/// usually marks a netlist typo: ERC002 warning.
#[test]
fn shorted_element_is_erc002() {
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    c.add_vsource("v1", vdd, Circuit::GROUND, SourceWaveform::Dc(1.2));
    c.add_resistor("rload", vdd, Circuit::GROUND, 1e3);
    c.add_resistor("roops", vdd, vdd, 1e3);
    let report = check(&c);
    let hits = report.with_code(ErcCode::Erc002ShortedElement);
    assert_eq!(hits.len(), 1, "{}", report.render_text());
    assert_eq!(hits[0].severity, Severity::Warning);
    assert!(hits[0].elements.contains(&"roops".to_string()));
}

/// Two DC sources in parallel between the same nodes over-constrain
/// the node voltage — the MNA matrix is structurally singular:
/// ERC003, error severity.
#[test]
fn parallel_voltage_sources_are_erc003() {
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    c.add_vsource("v1", vdd, Circuit::GROUND, SourceWaveform::Dc(1.2));
    c.add_vsource("v2", vdd, Circuit::GROUND, SourceWaveform::Dc(1.0));
    c.add_resistor("rl", vdd, Circuit::GROUND, 1e3);
    let report = check(&c);
    let hits = report.with_code(ErcCode::Erc003VsourceLoop);
    assert!(
        hits.iter()
            .any(|d| d.severity == Severity::Error && d.elements.contains(&"v2".to_string())),
        "{}",
        report.render_text()
    );
}

/// A current source pushing into a node nothing else touches: the
/// current has no return path and the KCL row is unsatisfiable —
/// ERC004, error severity (plus ERC005 on the stranded node).
#[test]
fn current_source_with_no_return_path_is_erc004() {
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let n = c.node("n");
    c.add_vsource("v1", vdd, Circuit::GROUND, SourceWaveform::Dc(1.2));
    c.add_resistor("rl", vdd, Circuit::GROUND, 1e3);
    c.add_isource("ib", vdd, n, SourceWaveform::Dc(1e-6));
    let report = check(&c);
    let hits = report.with_code(ErcCode::Erc004IsourceCutset);
    assert!(
        hits.iter()
            .any(|d| d.severity == Severity::Error && d.elements.contains(&"ib".to_string())),
        "{}",
        report.render_text()
    );
    // The capacitor-only node also has no DC path to ground.
    assert!(
        !report.with_code(ErcCode::Erc005NoDcPath).is_empty(),
        "{}",
        report.render_text()
    );
}

/// A node reached only through capacitors has no DC path to ground —
/// its DC voltage is arbitrary: ERC005 warning.
#[test]
fn capacitor_only_node_is_erc005() {
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let mid = c.node("mid");
    c.add_vsource("v1", vdd, Circuit::GROUND, SourceWaveform::Dc(1.2));
    c.add_resistor("rl", vdd, Circuit::GROUND, 1e3);
    c.add_capacitor("c1", vdd, mid, 1e-15);
    c.add_capacitor("c2", mid, Circuit::GROUND, 1e-15);
    let report = check(&c);
    let hits = report.with_code(ErcCode::Erc005NoDcPath);
    assert_eq!(hits.len(), 1, "{}", report.render_text());
    assert_eq!(hits[0].severity, Severity::Warning);
    assert!(hits[0].nodes.contains(&"mid".to_string()));
}

/// A MOSFET gate tied to a node that touches nothing but gates: at DC
/// the node is undriven and the device state is indeterminate —
/// ERC006, error severity.
#[test]
fn undriven_gate_is_erc006() {
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let vin = c.node("in"); // never connected to a driver
    let out = c.node("out");
    c.add_vsource("v1", vdd, Circuit::GROUND, SourceWaveform::Dc(1.2));
    c.add_mosfet("mp", out, vin, vdd, vdd, MosModel::ptm90_pmos(), geometry());
    c.add_mosfet(
        "mn",
        out,
        vin,
        Circuit::GROUND,
        Circuit::GROUND,
        MosModel::ptm90_nmos(),
        geometry(),
    );
    c.add_resistor("rl", out, Circuit::GROUND, 1e6);
    let report = check(&c);
    let hits = report.with_code(ErcCode::Erc006UndrivenGate);
    assert!(
        hits.iter().any(|d| d.severity == Severity::Error
            && d.nodes.contains(&"in".to_string())
            && d.elements.contains(&"mp".to_string())
            && d.elements.contains(&"mn".to_string())),
        "{}",
        report.render_text()
    );
}

/// The paper's core misuse case: a bare inverter asked to up-shift
/// 0.7 V logic onto a 1.3 V rail. No mitigation structure exists, so
/// the PMOS can never turn off — ERC007, error severity.
#[test]
fn unmediated_up_shift_is_erc007() {
    let domains = VoltagePair::new(0.7, 1.3);
    let (stim, ..) = Harness::standard_stimulus(domains);
    let h = Harness::build(
        &ShifterKind::Inverter(Inverter::minimum()),
        domains,
        stim,
        1e-15,
    );
    let report = check(&h.circuit);
    let hits = report.with_code(ErcCode::Erc007DomainCrossing);
    assert!(
        hits.iter().any(|d| d.severity == Severity::Error),
        "{}",
        report.render_text()
    );
    assert!(report.has_errors());
}

/// A 3.3 V I/O swing driven straight onto thin-oxide 1.2 V devices:
/// the oxide-stress ceiling is blown on both transistors — ERC008,
/// error severity.
#[test]
fn io_swing_on_thin_oxide_gate_is_erc008() {
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let vin = c.node("in");
    let out = c.node("out");
    c.add_vsource("v1", vdd, Circuit::GROUND, SourceWaveform::Dc(1.2));
    c.add_vsource(
        "vin",
        vin,
        Circuit::GROUND,
        SourceWaveform::Pulse {
            v1: 0.0,
            v2: 3.3,
            delay: 0.0,
            rise: 50e-12,
            fall: 50e-12,
            width: 1e-9,
            period: 2e-9,
        },
    );
    c.add_mosfet("mp", out, vin, vdd, vdd, MosModel::ptm90_pmos(), geometry());
    c.add_mosfet(
        "mn",
        out,
        vin,
        Circuit::GROUND,
        Circuit::GROUND,
        MosModel::ptm90_nmos(),
        geometry(),
    );
    let report = check(&c);
    let hits = report.with_code(ErcCode::Erc008GateOverdrive);
    assert_eq!(hits.len(), 2, "{}", report.render_text());
    assert!(hits.iter().all(|d| d.severity == Severity::Error));
}

/// Findings come back sorted most-severe-first so callers can show
/// (or gate on) the head of the list.
#[test]
fn report_orders_errors_before_warnings() {
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    c.add_vsource("v1", vdd, Circuit::GROUND, SourceWaveform::Dc(1.2));
    c.add_vsource("v2", vdd, Circuit::GROUND, SourceWaveform::Dc(1.0));
    c.add_resistor("rl", vdd, Circuit::GROUND, 1e3);
    c.add_resistor("roops", vdd, vdd, 1e3);
    let report = check(&c);
    assert!(report.count(Severity::Error) >= 1);
    assert!(report.count(Severity::Warning) >= 1);
    let ranks: Vec<_> = report
        .diagnostics
        .iter()
        .map(|d| d.severity.rank())
        .collect();
    let mut sorted = ranks.clone();
    sorted.sort_unstable();
    assert_eq!(ranks, sorted, "{}", report.render_text());
}
