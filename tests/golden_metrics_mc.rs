//! Golden Monte Carlo statistics: the 64-run SS-TVS ensemble at the
//! paper's headline corner, pinned to the exact values the seeded
//! runner produces. The ensemble is deterministic for every worker
//! count, so these hold at a 1e-9 relative tolerance — any drift means
//! the sampling stream, the seed derivation, or the simulator changed.

// Golden values are pinned verbatim from a `{:.17e}` dump of the
// ensemble, one digit past f64's shortest round-trip form.
#![allow(clippy::excessive_precision)]

use sstvs::cells::{ShifterKind, VoltagePair};
use sstvs::flows::experiments::tables::{monte_carlo_stats, DEFAULT_MC_SEED};
use sstvs::flows::CharacterizeOptions;
use sstvs::runner::RunnerOptions;

const TRIALS: usize = 64;
const REL_TOL: f64 = 1e-9;

fn assert_pinned(name: &str, value: f64, golden: f64) {
    assert!(
        (value - golden).abs() <= REL_TOL * golden.abs(),
        "{name}: {value:e} drifted from golden {golden:e}"
    );
}

#[test]
fn golden_64_run_mc_at_27c() {
    // Pinned from the seeded ensemble (identical in dev and release
    // profiles and at every --jobs value).
    let s = monte_carlo_stats(
        &ShifterKind::sstvs(),
        VoltagePair::low_to_high(),
        &CharacterizeOptions::default(),
        TRIALS,
        DEFAULT_MC_SEED,
        &RunnerOptions::default(),
    )
    .expect("64-run MC converges");

    assert_eq!(s.trials, TRIALS);
    assert_eq!(s.passed, TRIALS, "every trial translates correctly");

    assert_pinned(
        "delay_rise.mean",
        s.delay_rise.mean,
        1.86332423704375234e-10,
    );
    assert_pinned("delay_rise.std", s.delay_rise.std, 1.26939286738307324e-11);
    assert_pinned(
        "delay_fall.mean",
        s.delay_fall.mean,
        1.24873391686914617e-10,
    );
    assert_pinned("delay_fall.std", s.delay_fall.std, 4.92004493025831134e-12);
    assert_pinned(
        "leakage_high.mean",
        s.leakage_high.mean,
        1.10494775640160525e-9,
    );
    assert_pinned(
        "leakage_high.std",
        s.leakage_high.std,
        2.51197229265138107e-10,
    );
    assert_pinned(
        "leakage_low.mean",
        s.leakage_low.mean,
        2.87245180993220008e-9,
    );
    assert_pinned(
        "leakage_low.std",
        s.leakage_low.std,
        9.72886870593516413e-10,
    );
}
