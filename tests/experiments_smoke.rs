//! Integration smoke tests over the experiment runners: every
//! table/figure flow executes end-to-end at reduced scale and its
//! output carries the paper's qualitative structure.

use sstvs::cells::{ShifterKind, VoltagePair};
use sstvs::flows::experiments::{area, figures, robustness, tables};
use sstvs::flows::{format_comparison_table, format_mc_table, CharacterizeOptions};
use sstvs::runner::RunnerOptions;

#[test]
fn table1_and_table2_flows_render() {
    let opts = CharacterizeOptions::default();
    let t1 = tables::table1(&opts).expect("table 1 runs");
    let t2 = tables::table2(&opts).expect("table 2 runs");
    let s1 = format_comparison_table("Table 1", &t1);
    let s2 = format_comparison_table("Table 2", &t2);
    for s in [&s1, &s2] {
        assert!(s.contains("Delay Rise"));
        assert!(s.contains("Leakage Current Low"));
    }
    // Leakage advantage is the paper's central claim in both tables.
    assert!(t1.advantage().2 > 1.0 && t1.advantage().3 > 1.0);
    assert!(t2.advantage().2 > 1.0 && t2.advantage().3 > 1.0);
}

#[test]
fn mc_table_flow_renders_and_reports_yield() {
    let opts = CharacterizeOptions::default();
    let t = tables::monte_carlo_table(
        VoltagePair::low_to_high(),
        &opts,
        4,
        11,
        &RunnerOptions::default(),
    )
    .expect("small MC runs");
    assert_eq!(t.sstvs.trials, 4);
    assert!(t.sstvs.passed > 0 && t.combined.passed > 0);
    let s = format_mc_table("Table 3 (reduced)", &t);
    assert!(s.contains("SSTVS mu"));
    assert!(s.contains("functional:"));
}

#[test]
fn figure5_runs_in_both_scenarios() {
    let opts = CharacterizeOptions::default();
    for domains in [VoltagePair::low_to_high(), VoltagePair::high_to_low()] {
        let d = figures::figure5(domains, &opts).expect("figure 5 runs");
        // The ctrl trace must show the charge/discharge cycle the
        // paper's Figure 5 depicts: high while the input is high,
        // partially retained afterwards.
        let ctrl = &d
            .series
            .iter()
            .find(|(n, _)| n == "ctrl")
            .expect("ctrl traced")
            .1;
        let max = ctrl.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(max > 0.5, "ctrl never charged: max {max}");
    }
}

#[test]
fn delay_surface_covers_the_grid_with_structure() {
    let opts = CharacterizeOptions::default();
    let s = figures::delay_surface(
        &ShifterKind::sstvs(),
        0.8,
        1.4,
        0.3,
        &opts,
        &RunnerOptions::default(),
    );
    assert_eq!(s.vddi.len(), 3);
    assert_eq!(s.vddo.len(), 3);
    assert!(s.yield_fraction() >= 1.0, "yield {}", s.yield_fraction());
    // Smoothness claim at coarse scale: neighbouring points within 2x.
    assert!(
        s.max_relative_step(true) < 0.75,
        "rise surface jumpy: {}",
        s.max_relative_step(true)
    );
    assert!(
        s.max_relative_step(false) < 0.75,
        "fall surface jumpy: {}",
        s.max_relative_step(false)
    );
    let csv = s.to_csv();
    assert_eq!(csv.lines().count(), 10);
}

#[test]
fn robustness_flow_aggregates() {
    let r =
        robustness::robustness_report(0.3, 2, 3, &[27.0], &RunnerOptions::default()).expect("runs");
    assert_eq!(r.grid_yield.len(), 1);
    assert!(r.all_pass(), "{r:?}");
}

#[test]
fn area_flow_matches_paper_class() {
    let entries = area::area_report();
    let sstvs = entries
        .iter()
        .find(|e| e.label == "SS-TVS")
        .expect("SS-TVS entry");
    assert!(
        (sstvs.area_um2 - 4.47).abs() < 1.5,
        "area {} µm²",
        sstvs.area_um2
    );
    assert_eq!(sstvs.devices, 13);
}
