//! Protocol pin for the `vls-serve` query daemon: every test boots a
//! real daemon on an ephemeral loopback port and holds the wire
//! contract fixed — response schemas byte-for-byte, typed error
//! bodies with the right status codes, oversized-body rejection, and
//! the `--check-config` exit-code contract of the CLI front end.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use sstvs::cells::ShifterKind;
use sstvs::charlib::{CharLib, GridSpec, QueryPoint};
use sstvs::cli::{run_serve_check, CliError, ServeArgs};
use sstvs::flows::CharacterizeOptions;
use sstvs::runner::RunnerOptions;
use sstvs::serve::{one_shot, protocol, HttpClient, ServeConfig, ServedCell, Server};

/// The smoke-grid library every daemon in this file serves, built
/// once. Tests here never assert on the *library's* counters (they
/// are shared); server-side metrics are per-daemon.
fn smoke_lib() -> Arc<CharLib> {
    static LIB: OnceLock<Arc<CharLib>> = OnceLock::new();
    Arc::clone(LIB.get_or_init(|| {
        Arc::new(CharLib::build(
            &ShifterKind::sstvs(),
            &CharacterizeOptions::default(),
            GridSpec::smoke(),
            &RunnerOptions::default(),
        ))
    }))
}

fn start_daemon(cfg: ServeConfig) -> Server {
    let cells = vec![ServedCell::new("sstvs", smoke_lib())];
    Server::start(cells, cfg).expect("daemon starts on an ephemeral port")
}

/// An in-trust-region query body and its operating point.
const IN_TRUST: &str = r#"{"cell": "sstvs", "vddi": 0.9, "vddo": 1.1}"#;

fn in_trust_point() -> QueryPoint {
    QueryPoint {
        slew: protocol::DEFAULT_SLEW,
        load: protocol::DEFAULT_LOAD,
        vddi: 0.9,
        vddo: 1.1,
        temp: protocol::DEFAULT_TEMP,
    }
}

#[test]
fn healthz_and_query_bodies_are_pinned() {
    let server = start_daemon(ServeConfig::default());
    let addr = server.addr();

    // Readiness probe: exact body.
    let (status, body) = one_shot(addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(status, 200);
    assert_eq!(body, "{\"status\": \"ok\", \"cells\": [\"sstvs\"]}");

    // A surrogate hit must be byte-identical to the direct library
    // call rendered through the same protocol — the determinism
    // contract the soak suite scales up.
    let (status, body) = one_shot(addr, "POST", "/query", Some(IN_TRUST)).expect("query");
    assert_eq!(status, 200);
    let direct = smoke_lib()
        .probe_table(&in_trust_point())
        .expect("in-trust point hits the table");
    assert_eq!(body, protocol::render_success("sstvs", &direct, None));

    // The metrics document reflects exactly the traffic above.
    let (status, metrics) = one_shot(addr, "GET", "/metrics", None).expect("metrics");
    assert_eq!(status, 200);
    assert!(metrics.contains("\"queries\": 1"), "{metrics}");
    assert!(metrics.contains("\"hits\": 1"), "{metrics}");
    assert!(metrics.contains("\"sheds\": 0"), "{metrics}");

    server.shutdown();
    server.wait();
}

#[test]
fn errors_are_typed_with_the_right_status() {
    let server = start_daemon(ServeConfig::default());
    let addr = server.addr();

    // Malformed JSON: 400 with a typed body.
    let (status, body) = one_shot(addr, "POST", "/query", Some("{")).expect("bad json");
    assert_eq!(status, 400);
    assert!(body.contains("\"kind\": \"bad_request\""), "{body}");

    // A missing required field names the field.
    let (status, body) = one_shot(
        addr,
        "POST",
        "/query",
        Some(r#"{"cell": "sstvs", "vddo": 1.1}"#),
    )
    .expect("missing vddi");
    assert_eq!(status, 400);
    assert!(body.contains("vddi"), "{body}");

    // Unknown cell: 404.
    let (status, body) = one_shot(
        addr,
        "POST",
        "/query",
        Some(r#"{"cell": "ghost", "vddi": 0.9, "vddo": 1.1}"#),
    )
    .expect("unknown cell");
    assert_eq!(status, 404);
    assert!(body.contains("\"kind\": \"not_found\""), "{body}");

    // Wrong method on a known path: 405. Unknown path: 404.
    let (status, body) = one_shot(addr, "GET", "/query", None).expect("GET query");
    assert_eq!(status, 405);
    assert!(body.contains("\"kind\": \"method_not_allowed\""), "{body}");
    let (status, _) = one_shot(addr, "GET", "/nope", None).expect("unknown path");
    assert_eq!(status, 404);

    // All of it lands in bad_requests, none of it in the query
    // counters.
    let metrics = server.metrics_json();
    assert!(metrics.contains("\"bad_requests\": 5"), "{metrics}");
    assert!(metrics.contains("\"queries\": 0"), "{metrics}");

    server.shutdown();
    server.wait();
}

#[test]
fn oversized_bodies_are_rejected_and_close_the_connection() {
    let server = start_daemon(ServeConfig {
        max_body: 128,
        ..ServeConfig::default()
    });
    let addr = server.addr();

    let huge = format!(
        r#"{{"cell": "sstvs", "vddi": 0.9, "vddo": 1.1, "pad": "{}"}}"#,
        "x".repeat(512)
    );
    let mut client = HttpClient::connect(addr, Duration::from_secs(60)).expect("connect");
    let (status, body) = client
        .request("POST", "/query", Some(&huge))
        .expect("oversized request still gets a response");
    assert_eq!(status, 413);
    assert!(body.contains("\"kind\": \"too_large\""), "{body}");
    assert!(body.contains("128-byte limit"), "{body}");

    // The unread body destroyed the framing: the daemon must have
    // closed the connection rather than misparse what follows.
    assert!(
        client.request("GET", "/healthz", None).is_err(),
        "connection should be closed after a 413"
    );

    // A fresh connection with a small body still works.
    let (status, _) = one_shot(addr, "POST", "/query", Some(IN_TRUST)).expect("fresh query");
    assert_eq!(status, 200);

    server.shutdown();
    server.wait();
}

#[test]
fn shutdown_endpoint_stops_the_daemon() {
    let server = start_daemon(ServeConfig::default());
    let addr = server.addr();

    let (status, body) = one_shot(addr, "POST", "/shutdown", None).expect("shutdown");
    assert_eq!(status, 200);
    assert_eq!(body, "{\"status\": \"shutting_down\"}");

    // The accept loop exits; `wait` returns instead of hanging.
    server.wait();
    assert!(
        one_shot(addr, "GET", "/healthz", None).is_err(),
        "daemon must stop accepting after /shutdown"
    );
}

#[test]
fn check_config_exit_code_contract() {
    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("vls_serve_api_{name}_{}.json", std::process::id()))
    }

    // No --lib at all: usage error (exit 2 at the binary).
    assert!(matches!(
        run_serve_check(&ServeArgs::default()),
        Err(CliError::Usage(_))
    ));

    // Missing artifact: runtime failure (exit 1 at the binary).
    let missing = ServeArgs {
        libs: vec![tmp("missing").to_string_lossy().into_owned()],
        ..ServeArgs::default()
    };
    assert!(matches!(
        run_serve_check(&missing),
        Err(CliError::CharLib(_))
    ));

    // Unusable flags stay usage errors even with a valid artifact.
    let path = tmp("ok");
    smoke_lib().save(&path).expect("save artifact");
    let spec = path.to_string_lossy().into_owned();
    let zero_queue = ServeArgs {
        libs: vec![spec.clone()],
        queue: 0,
        ..ServeArgs::default()
    };
    assert!(matches!(
        run_serve_check(&zero_queue),
        Err(CliError::Usage(_))
    ));

    // A valid deployment reports what it would serve without binding.
    let ok = ServeArgs {
        libs: vec![spec],
        ..ServeArgs::default()
    };
    let report = run_serve_check(&ok).expect("valid config");
    assert!(report.starts_with("serve config: OK"), "{report}");
    assert!(
        report.contains(&format!("{:#018x}", smoke_lib().content_hash())),
        "{report}"
    );
    let _ = std::fs::remove_file(&path);
}
