//! Tier-1 ERC regression: every cell in the library, built inside the
//! paper's measurement harness, must come out of `vls-check` with zero
//! error-severity findings in the direction(s) it is documented for —
//! and the checker must still *see* the deliberate leakage trade-offs
//! (the combined VS's parked input, Khan's high-VT keeper) as
//! non-error findings rather than silence.

use sstvs::cells::primitives::Inverter;
use sstvs::cells::{
    CombinedVs, ConventionalVs, Harness, KhanSsvs, PuriSsvs, ShifterKind, VoltagePair,
};
use sstvs::check::{run_check, CheckOptions, ErcCode, Report, Severity};

fn check(kind: &ShifterKind, domains: VoltagePair) -> Report {
    let (stim, ..) = Harness::standard_stimulus(domains);
    let h = Harness::build(kind, domains, stim, 1e-15);
    run_check(&h.circuit, &CheckOptions::default())
}

/// Every cell, in every direction it is documented to support, is
/// ERC-clean (no error-severity findings).
#[test]
fn all_cells_are_erc_clean_in_their_supported_directions() {
    let up = VoltagePair::low_to_high();
    let down = VoltagePair::high_to_low();
    let cases: Vec<(ShifterKind, Vec<VoltagePair>)> = vec![
        (ShifterKind::sstvs(), vec![up, down]),
        (ShifterKind::combined(), vec![up, down]),
        (
            ShifterKind::Conventional(ConventionalVs::new()),
            vec![up, down],
        ),
        (ShifterKind::Khan(KhanSsvs::new()), vec![up]),
        (ShifterKind::Puri(PuriSsvs::new()), vec![up]),
        (ShifterKind::Inverter(Inverter::minimum()), vec![down]),
    ];
    for (kind, directions) in cases {
        for domains in directions {
            let report = check(&kind, domains);
            assert!(
                !report.has_errors(),
                "{} at {:.1} -> {:.1} V:\n{}",
                kind.label(),
                domains.vddi,
                domains.vddo,
                report.render_text()
            );
        }
    }
}

/// The paper's own SS-TVS is fully clean up-shifting: no findings at
/// any severity, because every domain crossing is mediated by the
/// cell's structures.
#[test]
fn sstvs_up_shift_has_no_findings_at_all() {
    let report = check(&ShifterKind::sstvs(), VoltagePair::low_to_high());
    assert_eq!(report.diagnostics.len(), 0, "{}", report.render_text());
}

/// The combined VS parks its deselected input one V_T below the rail
/// (the 157 nA hold-state leakage of Table 1) — the checker must
/// report that as an ERC007 warning, not silence and not an error.
#[test]
fn combined_vs_up_shift_reports_the_parked_path_as_a_warning() {
    let report = check(&ShifterKind::combined(), VoltagePair::low_to_high());
    let hits = report.with_code(ErcCode::Erc007DomainCrossing);
    assert!(
        hits.iter().any(|d| d.severity == Severity::Warning),
        "{}",
        report.render_text()
    );
    assert!(!report.has_errors(), "{}", report.render_text());
}

/// Khan's P4 bypass device deliberately runs subthreshold (high-VT,
/// gated from the low domain): an ERC007 info, not an error.
#[test]
fn khan_up_shift_reports_the_subthreshold_keeper_as_info() {
    let report = check(
        &ShifterKind::Khan(KhanSsvs::new()),
        VoltagePair::low_to_high(),
    );
    let hits = report.with_code(ErcCode::Erc007DomainCrossing);
    assert!(
        hits.iter().any(|d| d.severity == Severity::Info),
        "{}",
        report.render_text()
    );
    assert!(!report.has_errors(), "{}", report.render_text());
}

/// The domain inference sees the harness topology: the cell input
/// lives in the VDDI domain, the output reaches VDDO.
#[test]
fn harness_hulls_recover_the_domain_voltages() {
    let domains = VoltagePair::low_to_high();
    let report = check(&ShifterKind::sstvs(), domains);
    let d = report.domains.expect("full check ran");
    let hull = |name: &str| {
        d.hulls
            .iter()
            .find(|(n, _, _)| n == name)
            .unwrap_or_else(|| panic!("no hull for {name}"))
            .clone()
    };
    let cell_in = hull("cell_in");
    assert!((cell_in.2 - domains.vddi).abs() < 1e-9, "{cell_in:?}");
    let cell_out = hull("cell_out");
    assert!((cell_out.2 - domains.vddo).abs() < 1e-9, "{cell_out:?}");
}

/// A deliberately mis-used cell: the bare-inverter "shifter" driven
/// up into a much higher domain is exactly the unmediated crossing
/// ERC007 exists for.
#[test]
fn inverter_wide_up_shift_is_rejected() {
    let report = check(
        &ShifterKind::Inverter(Inverter::minimum()),
        VoltagePair::new(0.7, 1.3),
    );
    assert!(report.has_errors(), "{}", report.render_text());
    let hits = report.with_code(ErcCode::Erc007DomainCrossing);
    assert!(hits.iter().any(|d| d.severity == Severity::Error));
}

/// `CombinedVs` must also check clean with the paper's default
/// constructors when driven the other way (sel/selb swap roles).
#[test]
fn combined_vs_down_shift_is_clean() {
    let report = check(
        &ShifterKind::Combined(CombinedVs::new()),
        VoltagePair::high_to_low(),
    );
    assert!(!report.has_errors(), "{}", report.render_text());
}
