//! Golden characterization table: the 3×3 (VDDI, VDDO) SS-TVS grid at
//! the nominal slew/load/temperature, pinned to the exact values the
//! measurement protocol produces. The fill is deterministic for every
//! worker count and identical in dev and release profiles, so these
//! hold at a 1e-9 relative tolerance — any drift means the protocol,
//! the stimulus, or the simulator changed.

// Golden values are pinned verbatim from a `{:.17e}` dump of the
// filled table, one digit past f64's shortest round-trip form.
#![allow(clippy::excessive_precision)]

use sstvs::cells::ShifterKind;
use sstvs::charlib::{CharLib, GridSpec};
use sstvs::flows::CharacterizeOptions;
use sstvs::runner::RunnerOptions;

const REL_TOL: f64 = 1e-9;

fn assert_pinned(name: &str, value: f64, golden: f64) {
    assert!(
        (value - golden).abs() <= REL_TOL * golden.abs(),
        "{name}: {value:e} drifted from golden {golden:e}"
    );
}

/// One golden grid point: (vddi, vddo, the six metrics).
const GOLDEN: [(f64, f64, [f64; 6]); 9] = [
    (
        0.8,
        0.8,
        [
            2.02424751651869420e-10,
            7.58300861756552630e-11,
            2.40133862598721608e-6,
            1.94487805674943847e-6,
            3.79595010673423416e-10,
            3.24618847631073537e-10,
        ],
    ),
    (
        0.8,
        1.0,
        [
            1.65311464971121401e-10,
            9.04004588215228122e-11,
            3.47114316873514963e-6,
            2.46922718193898878e-6,
            6.19105900331948491e-10,
            1.61280307031554074e-9,
        ],
    ),
    (
        0.8,
        1.2,
        [
            1.83311986441324490e-10,
            1.23415405702381885e-10,
            5.31282738944792830e-6,
            4.25593057944058954e-6,
            1.01175149940121720e-9,
            2.66647613271491266e-9,
        ],
    ),
    (
        1.0,
        0.8,
        [
            1.51939067280376958e-10,
            4.28984320373898575e-11,
            2.79862564564709288e-6,
            2.68118655891262591e-6,
            3.79597421225985165e-10,
            4.32240393540054808e-10,
        ],
    ),
    (
        1.0,
        1.0,
        [
            1.12185058569536424e-10,
            4.94678160596416520e-11,
            3.79402103411814275e-6,
            3.13555194287412704e-6,
            6.19109145636944955e-10,
            4.29398362239802978e-10,
        ],
    ),
    (
        1.0,
        1.2,
        [
            9.55268589487428306e-11,
            5.86040074124947341e-11,
            5.11739806232711341e-6,
            3.92068011438648596e-6,
            1.01175609217227801e-9,
            2.48124117086677656e-9,
        ],
    ),
    (
        1.2,
        0.8,
        [
            1.15193657420135402e-10,
            2.83618499832866747e-11,
            3.30709102689775107e-6,
            3.61195181692623986e-6,
            3.79605233568436633e-10,
            9.64365983285873582e-10,
        ],
    ),
    (
        1.2,
        1.0,
        [
            9.44466877371623993e-11,
            3.27736734160364096e-11,
            4.30962074382203591e-6,
            4.08234076557666790e-6,
            6.19116909674559349e-10,
            4.68115501908154346e-10,
        ],
    ),
    (
        1.2,
        1.2,
        [
            7.79419945007945738e-11,
            3.71129766262798973e-11,
            5.58377732566888712e-6,
            4.70006309636186356e-6,
            1.01176787957365579e-9,
            5.07379476284961490e-10,
        ],
    ),
];

fn golden_grid() -> GridSpec {
    GridSpec::new(
        vec![50e-12],
        vec![1e-15],
        vec![0.8, 1.0, 1.2],
        vec![0.8, 1.0, 1.2],
        vec![27.0],
        0.0,
    )
    .expect("golden grid is statically valid")
}

#[test]
fn golden_3x3_sstvs_table() {
    let lib = CharLib::build(
        &ShifterKind::sstvs(),
        &CharacterizeOptions::default(),
        golden_grid(),
        &RunnerOptions::default(),
    );
    assert_eq!(lib.grid().n_points(), 9);
    for (flat, (vddi, vddo, metrics)) in GOLDEN.iter().enumerate() {
        let q = lib.grid().point(flat);
        assert_eq!((q.vddi, q.vddo), (*vddi, *vddo), "grid order changed");
        let m = lib.point_metrics(flat);
        assert!(m.functional, "({vddi}, {vddo}) must translate");
        let tag = |what: &str| format!("({vddi}, {vddo}).{what}");
        assert_pinned(&tag("delay_rise"), m.delay_rise, metrics[0]);
        assert_pinned(&tag("delay_fall"), m.delay_fall, metrics[1]);
        assert_pinned(&tag("power_rise"), m.power_rise, metrics[2]);
        assert_pinned(&tag("power_fall"), m.power_fall, metrics[3]);
        assert_pinned(&tag("leakage_high"), m.leakage_high, metrics[4]);
        assert_pinned(&tag("leakage_low"), m.leakage_low, metrics[5]);
    }
}
