//! Concurrency soak for the `vls-serve` daemon: 8 client threads ×
//! 64 queries of mixed in/out-of-trust-region traffic against real
//! loopback sockets, at worker counts 1, 2 and 8.
//!
//! The contract under load:
//!
//! * every response body is **bit-identical** to the direct library
//!   call rendered through the same protocol — and therefore
//!   identical at any `--jobs`;
//! * the counters balance: `hits + misses + sheds == queries`, the
//!   daemon's hit count equals the library's, and the library's miss
//!   count equals daemon misses + sheds;
//! * a full queue sheds typed 429s instead of queueing unboundedly;
//! * an armed fault plan degrades to typed 500s (class
//!   `no_convergence`) with zero hangs, and one retry rung recovers.
//!
//! Every test runs under a watchdog that aborts the process if it
//! wedges — a hang is a contract violation, not a slow test.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Barrier, OnceLock};
use std::time::Duration;

use sstvs::cells::ShifterKind;
use sstvs::charlib::{CharLib, GridSpec, QueryPoint};
use sstvs::fault::FaultPlan;
use sstvs::flows::CharacterizeOptions;
use sstvs::runner::RunnerOptions;
use sstvs::serve::{protocol, HttpClient, ServeConfig, ServedCell, Server};

const THREADS: usize = 8;
const PER_THREAD: usize = 64;
/// Which query index per thread leaves the trust region.
const EXACT_INDEX: usize = 32;
/// Hang backstop: no test here may take anywhere near this long.
const WATCHDOG_SECS: u64 = 300;

/// Aborts the whole process if the owning test has not finished
/// within [`WATCHDOG_SECS`] — the zero-hangs guarantee, enforced.
struct Watchdog {
    cancel: mpsc::Sender<()>,
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        let _ = self.cancel.send(());
    }
}

fn watchdog(what: &'static str) -> Watchdog {
    let (cancel, armed) = mpsc::channel();
    std::thread::spawn(move || {
        if let Err(mpsc::RecvTimeoutError::Timeout) =
            armed.recv_timeout(Duration::from_secs(WATCHDOG_SECS))
        {
            eprintln!("watchdog: '{what}' still running after {WATCHDOG_SECS}s; aborting");
            std::process::abort();
        }
    });
    Watchdog { cancel }
}

fn build_lib() -> CharLib {
    CharLib::build(
        &ShifterKind::sstvs(),
        &CharacterizeOptions::default(),
        GridSpec::smoke(),
        &RunnerOptions::default(),
    )
}

/// The reference library answering direct calls. Builds are
/// deterministic (pinned by `charlib_artifact.rs`), so a separately
/// built served library holds identical tables.
fn reference_lib() -> &'static CharLib {
    static LIB: OnceLock<CharLib> = OnceLock::new();
    LIB.get_or_init(build_lib)
}

/// The operating point of soak query `q` on thread `t`. Index
/// [`EXACT_INDEX`] leaves the smoke grid's singleton slew axis
/// (electrically healthy — only the trust region rejects it); all
/// other indices roam the in-hull voltage plane.
fn point_for(t: usize, q: usize) -> QueryPoint {
    if q == EXACT_INDEX {
        QueryPoint {
            slew: if t.is_multiple_of(2) { 60e-12 } else { 75e-12 },
            load: 1e-15,
            vddi: 1.2,
            vddo: 1.2,
            temp: 27.0,
        }
    } else {
        QueryPoint {
            slew: 50e-12,
            load: 1e-15,
            vddi: [0.8, 0.9, 1.0, 1.1, 1.2][(t + q) % 5],
            vddo: [0.8, 1.0, 1.2][(t + 2 * q) % 3],
            temp: 27.0,
        }
    }
}

fn body_for(t: usize, q: usize) -> String {
    let p = point_for(t, q);
    format!(
        r#"{{"cell": "sstvs", "vddi": {}, "vddo": {}, "slew": {:e}}}"#,
        p.vddi, p.vddo, p.slew
    )
}

/// Request body → the byte-exact response the daemon must produce,
/// precomputed once from direct reference-library calls.
fn expected_bodies() -> &'static HashMap<String, String> {
    static MAP: OnceLock<HashMap<String, String>> = OnceLock::new();
    MAP.get_or_init(|| {
        let lib = reference_lib();
        let mut map = HashMap::new();
        for t in 0..THREADS {
            for q in 0..PER_THREAD {
                let body = body_for(t, q);
                if map.contains_key(&body) {
                    continue;
                }
                let p = point_for(t, q);
                let resp = match lib.probe_table(&p) {
                    Ok(m) => protocol::render_success("sstvs", &m, None),
                    Err(reason) => {
                        let m = lib.eval_exact(&p).expect("reference exact eval");
                        protocol::render_success("sstvs", &m, Some(reason))
                    }
                };
                map.insert(body, resp);
            }
        }
        map
    })
}

/// The full soak at one worker count: mixed traffic from 8 threads,
/// byte-exact bodies, balanced counters.
fn soak_at(jobs: usize) {
    let _guard = watchdog("soak_at");
    let lib = Arc::new(build_lib());
    let server = Server::start(
        vec![ServedCell::new("sstvs", Arc::clone(&lib))],
        ServeConfig {
            jobs: Some(jobs),
            ..ServeConfig::default()
        },
    )
    .expect("daemon starts");
    let addr = server.addr();
    let expected = expected_bodies();

    let mut handles = Vec::new();
    for t in 0..THREADS {
        handles.push(std::thread::spawn(move || {
            let mut client =
                HttpClient::connect(addr, Duration::from_secs(120)).expect("connect soak client");
            for q in 0..PER_THREAD {
                let body = body_for(t, q);
                let (status, resp) = client
                    .request("POST", "/query", Some(&body))
                    .expect("soak query");
                assert_eq!(status, 200, "jobs={jobs} t={t} q={q}: {resp}");
                let want = expected.get(&body).expect("expected body precomputed");
                assert_eq!(&resp, want, "jobs={jobs} t={t} q={q}: body diverged");
            }
        }));
    }
    for h in handles {
        h.join().expect("soak thread panicked");
    }

    // The balance equations. The deep default queue admits all eight
    // concurrent exact fallbacks, so nothing sheds at any job count.
    let m = server.metrics();
    let (hits, misses, sheds) = (
        m.hits.load(Ordering::Relaxed),
        m.misses.load(Ordering::Relaxed),
        m.sheds.load(Ordering::Relaxed),
    );
    let total = (THREADS * PER_THREAD) as u64;
    assert_eq!(hits + misses + sheds, total, "jobs={jobs}");
    assert_eq!(hits, total - THREADS as u64, "jobs={jobs}");
    assert_eq!(misses, THREADS as u64, "jobs={jobs}");
    assert_eq!(sheds, 0, "jobs={jobs}");
    assert_eq!(m.exact_ok.load(Ordering::Relaxed), THREADS as u64);
    assert_eq!(m.exact_errors.load(Ordering::Relaxed), 0);
    assert_eq!(m.deadline_expired.load(Ordering::Relaxed), 0);

    // Daemon counters agree with the library's own packed counters.
    let snap = lib.counter_snapshot();
    assert_eq!(snap.hits, hits, "jobs={jobs}: lib/daemon hit split");
    assert_eq!(
        snap.misses,
        misses + sheds,
        "jobs={jobs}: lib/daemon miss split"
    );

    let wire = server.metrics_json();
    assert!(wire.contains(&format!("\"queries\": {total}")), "{wire}");

    server.shutdown();
    server.wait();
}

#[test]
fn soak_with_one_worker() {
    soak_at(1);
}

#[test]
fn soak_with_two_workers() {
    soak_at(2);
}

#[test]
fn soak_with_eight_workers() {
    soak_at(8);
}

#[test]
fn full_queue_sheds_typed_429s_and_still_balances() {
    let _guard = watchdog("full_queue_sheds");
    let lib = Arc::new(build_lib());
    let server = Server::start(
        vec![ServedCell::new("sstvs", Arc::clone(&lib))],
        ServeConfig {
            jobs: Some(1),
            queue_depth: 1,
            ..ServeConfig::default()
        },
    )
    .expect("daemon starts");
    let addr = server.addr();

    // Flood: eight threads release together, each sending two
    // out-of-trust queries at a one-worker, one-slot daemon.
    let barrier = Arc::new(Barrier::new(THREADS));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut client =
                HttpClient::connect(addr, Duration::from_secs(120)).expect("connect flood client");
            barrier.wait();
            let mut out = Vec::new();
            for q in 0..2 {
                let body = format!(
                    r#"{{"cell": "sstvs", "vddi": 1.2, "vddo": 1.2, "slew": {}e-12}}"#,
                    55 + t * 2 + q
                );
                out.push(
                    client
                        .request("POST", "/query", Some(&body))
                        .expect("flood query"),
                );
            }
            out
        }));
    }
    let (mut answered, mut shed) = (0u64, 0u64);
    for h in handles {
        for (status, body) in h.join().expect("flood thread panicked") {
            match status {
                200 => {
                    assert!(body.contains("\"source\": \"exact\""), "{body}");
                    answered += 1;
                }
                429 => {
                    assert!(body.contains("\"kind\": \"shed\""), "{body}");
                    assert!(body.contains("\"queue_depth\": 1"), "{body}");
                    shed += 1;
                }
                other => panic!("flood answered {other}: {body}"),
            }
        }
    }

    let total = (THREADS * 2) as u64;
    assert_eq!(answered + shed, total, "every query got a typed answer");
    assert!(
        shed >= 1,
        "a one-slot queue under an 8-thread flood must shed"
    );
    let m = server.metrics();
    assert_eq!(m.hits.load(Ordering::Relaxed), 0);
    assert_eq!(m.misses.load(Ordering::Relaxed), answered);
    assert_eq!(m.sheds.load(Ordering::Relaxed), shed);
    assert_eq!(m.exact_ok.load(Ordering::Relaxed), answered);
    // The library records the probe miss whether or not admission
    // succeeded — daemon misses + sheds covers them all.
    let snap = lib.counter_snapshot();
    assert_eq!(snap.hits, 0);
    assert_eq!(snap.misses, answered + shed);
    let wire = server.metrics_json();
    assert!(wire.contains(&format!("\"queries\": {total}")), "{wire}");

    server.shutdown();
    server.wait();
}

#[test]
fn armed_faults_degrade_typed_and_one_retry_rung_recovers() {
    let _guard = watchdog("armed_faults");
    // Sabotage every stage of the DC recovery ladder, every seed: any
    // exact fallback is doomed at rung 0.
    let plan = FaultPlan::parse("newton@warm,newton@plain,newton@gmin,newton@source")
        .expect("soak plan parses");
    let probes: Vec<String> = (0..4)
        .map(|k| {
            format!(
                r#"{{"cell": "sstvs", "vddi": 1.2, "vddo": 1.2, "slew": {}e-12}}"#,
                80 + k
            )
        })
        .collect();

    // retry 0: the failure surfaces as a typed 500, never a hang.
    let server = Server::start(
        vec![ServedCell::new("sstvs", Arc::new(build_lib()))],
        ServeConfig {
            jobs: Some(2),
            retry: 0,
            fault_plan: Some(plan.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("daemon starts");
    let mut client = HttpClient::connect(server.addr(), Duration::from_secs(120)).expect("connect");

    // The surrogate path never touches the solver: still healthy.
    let (status, resp) = client
        .request(
            "POST",
            "/query",
            Some(r#"{"cell": "sstvs", "vddi": 0.9, "vddo": 1.1}"#),
        )
        .expect("surrogate query");
    assert_eq!(status, 200, "{resp}");
    assert!(resp.contains("\"source\": \"table\""), "{resp}");

    for body in &probes {
        let (status, resp) = client
            .request("POST", "/query", Some(body))
            .expect("doomed query still answers");
        assert_eq!(status, 500, "{resp}");
        assert!(resp.contains("\"kind\": \"sim_failure\""), "{resp}");
        assert!(resp.contains("\"class\": \"no_convergence\""), "{resp}");
        assert!(resp.contains("\"stage_reached\""), "{resp}");
    }
    let m = server.metrics();
    assert_eq!(m.exact_errors.load(Ordering::Relaxed), 4);
    assert_eq!(m.exact_ok.load(Ordering::Relaxed), 0);
    assert_eq!(m.failure_class_count("no_convergence"), 4);
    let wire = server.metrics_json();
    assert!(wire.contains("\"no_convergence\": 4"), "{wire}");
    server.shutdown();
    server.wait();

    // retry 1: rung 1 of the ladder disarms the fault plan; the same
    // queries recover to healthy exact answers.
    let server = Server::start(
        vec![ServedCell::new("sstvs", Arc::new(build_lib()))],
        ServeConfig {
            jobs: Some(2),
            retry: 1,
            fault_plan: Some(plan),
            ..ServeConfig::default()
        },
    )
    .expect("daemon starts");
    let mut client = HttpClient::connect(server.addr(), Duration::from_secs(120)).expect("connect");
    for body in &probes {
        let (status, resp) = client
            .request("POST", "/query", Some(body))
            .expect("retried query");
        assert_eq!(status, 200, "{resp}");
        assert!(resp.contains("\"source\": \"exact\""), "{resp}");
        assert!(resp.contains("\"functional\": true"), "{resp}");
    }
    let m = server.metrics();
    assert_eq!(m.exact_ok.load(Ordering::Relaxed), 4);
    assert_eq!(m.exact_errors.load(Ordering::Relaxed), 0);
    server.shutdown();
    server.wait();
}
