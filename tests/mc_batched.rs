//! Tier-1 suite for the lane-batched Monte Carlo path.
//!
//! The batched path runs K perturbed trials of one circuit in
//! lockstep: one compiled sparsity pattern and scatter map, SoA device
//! evaluation with analytic derivatives, a multi-lane LU sharing
//! healthy pivots, and one adaptive time grid per group (stepped by
//! the max-LTE lane). This file pins the contracts that make it safe
//! to turn on:
//!
//! * `batch_lanes = 1` routes through the *unchanged* scalar path, so
//!   kernel-mode `Batched` at K=1 is bitwise the symbolic kernel and
//!   the K=1 ensemble statistics equal the scalar baseline exactly;
//! * lane width only changes how trials pack into groups. Packing
//!   perturbs the per-group shared time grid (the max-LTE lane
//!   differs), so cross-K statistics agree within the solver's own
//!   tolerance band — pinned at 1e-3 relative against the observed
//!   ~1e-4 — while the pass verdicts must be *identical*;
//! * a pivot-health fault degrades one lane onto the per-lane LU
//!   fallback: the counters must book the exact injected charge and
//!   the fallback, and the answers must stay inside Newton's band;
//! * group composition depends only on `(trials, K)`, so the grid of
//!   {1, 2, 8} workers × lane widths is bit-for-bit deterministic;
//! * the pooled `SolverStats` count lane-evals: with bypass off,
//!   `device_evals == mosfet_count × newton_iters` exactly, and the
//!   per-lane results carry empty stats (no double counting).

use sstvs::cells::{Harness, ShifterKind, VoltagePair};
use sstvs::engine::{run_transient, run_transient_batched, FaultPlan, KernelMode, SimOptions};
use sstvs::flows::experiments::tables::{monte_carlo_stats_reported, DEFAULT_MC_SEED};
use sstvs::flows::CharacterizeOptions;
use sstvs::netlist::{Circuit, Element};
use sstvs::num::rng::Xoshiro256pp;
use sstvs::runner::RunnerOptions;
use sstvs::variation::{sample_perturbation, VariationSpec};

/// First stimulus cycle: rise and fall edges, without the full
/// two-cycle runtime.
const TSTOP: f64 = 4e-9;

fn harness() -> Harness {
    let domains = VoltagePair::low_to_high();
    let (wave, _, _, _) = Harness::standard_stimulus(domains);
    Harness::build(&ShifterKind::sstvs(), domains, wave, 1e-15)
}

/// K perturbed copies of the harness circuit, one process point per
/// lane (lane 0 keeps the nominal devices).
fn perturbed_lanes(h: &Harness, k: usize) -> Vec<Circuit> {
    let spec = VariationSpec::paper();
    (0..k)
        .map(|lane| {
            let mut c = h.circuit.clone();
            if lane > 0 {
                let mut rng = Xoshiro256pp::seed_from_u64(lane as u64);
                sample_perturbation(&h.circuit, &spec, &mut rng, |name| name.starts_with("dut"))
                    .apply(&mut c);
            }
            c
        })
        .collect()
}

fn mc_options(lanes: usize) -> CharacterizeOptions {
    let mut o = CharacterizeOptions::default();
    o.sim.batch_lanes = lanes;
    o
}

#[test]
fn batched_kernel_mode_at_k1_is_bitwise_the_symbolic_kernel() {
    // `KernelMode::Batched` with `batch_lanes = 1` must be the scalar
    // symbolic kernel, arithmetic operation for arithmetic operation.
    let h = harness();
    let symbolic = SimOptions {
        kernel: KernelMode::Symbolic,
        ..SimOptions::default()
    };
    let batched = SimOptions {
        kernel: KernelMode::Batched,
        batch_lanes: 1,
        ..SimOptions::default()
    };
    let a = run_transient(&h.circuit, TSTOP, &symbolic).expect("symbolic transient failed");
    let b = run_transient(&h.circuit, TSTOP, &batched).expect("batched-mode transient failed");
    assert_eq!(
        a.len(),
        b.len(),
        "kernels accepted different step sequences"
    );
    for probe in [h.input, h.output] {
        for (k, (x, y)) in a
            .node_series(probe)
            .iter()
            .zip(&b.node_series(probe))
            .enumerate()
        {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "K=1 batched mode diverged from symbolic at sample {k}: {x} vs {y}"
            );
        }
    }
}

#[test]
fn k1_ensemble_statistics_equal_the_scalar_baseline_exactly() {
    let domains = VoltagePair::low_to_high();
    let kind = ShifterKind::sstvs();
    let runner = RunnerOptions::serial();
    let (scalar, _) =
        monte_carlo_stats_reported(&kind, domains, &mc_options(1), 4, DEFAULT_MC_SEED, &runner)
            .expect("scalar MC failed");
    let (baseline, _) = monte_carlo_stats_reported(
        &kind,
        domains,
        &CharacterizeOptions::default(),
        4,
        DEFAULT_MC_SEED,
        &runner,
    )
    .expect("baseline MC failed");
    assert_eq!(
        scalar, baseline,
        "batch_lanes = 1 did not route to the scalar ensemble"
    );
}

#[test]
fn lane_widths_preserve_verdicts_and_ensemble_statistics() {
    // Different K repacks trials into different lockstep groups; each
    // group steps on the grid of its own max-LTE lane, so per-trial
    // metrics move within the LTE tolerance across K — the 1e-9 a
    // fixed grid would give is *not* achievable by design. Verdicts
    // (and the trial count the statistics average over) must not move.
    let domains = VoltagePair::low_to_high();
    let kind = ShifterKind::sstvs();
    let runner = RunnerOptions::serial();
    const TRIALS: usize = 8;
    let (reference, _) = monte_carlo_stats_reported(
        &kind,
        domains,
        &mc_options(2),
        TRIALS,
        DEFAULT_MC_SEED,
        &runner,
    )
    .expect("K=2 MC failed");
    assert_eq!(reference.trials, TRIALS);
    for k in [4usize, 8] {
        let (stats, _) = monte_carlo_stats_reported(
            &kind,
            domains,
            &mc_options(k),
            TRIALS,
            DEFAULT_MC_SEED,
            &runner,
        )
        .unwrap_or_else(|e| panic!("K={k} MC failed: {e}"));
        assert_eq!(
            stats.passed, reference.passed,
            "lane width {k} changed the pass verdicts"
        );
        for (name, got, want) in [
            (
                "delay_rise.mean",
                stats.delay_rise.mean,
                reference.delay_rise.mean,
            ),
            (
                "delay_fall.mean",
                stats.delay_fall.mean,
                reference.delay_fall.mean,
            ),
            (
                "leakage_high.mean",
                stats.leakage_high.mean,
                reference.leakage_high.mean,
            ),
        ] {
            let rel = (got - want).abs() / want.abs();
            assert!(
                rel <= 1e-3,
                "lane width {k} moved {name} by {rel:.2e} relative (observed band ~1e-4)"
            );
        }
    }
}

#[test]
fn pivot_fault_degrades_a_lane_onto_the_fallback_with_exact_counters() {
    let h = harness();
    let circuits = perturbed_lanes(&h, 4);
    let inert = SimOptions {
        kernel: KernelMode::Batched,
        batch_lanes: 4,
        ..SimOptions::default()
    };
    let mut armed = inert.clone();
    armed.fault = FaultPlan::parse("pivot:count=2").expect("plan parses");

    let clean = run_transient_batched(&circuits, TSTOP, &inert).expect("inert batch failed");
    let faulted = run_transient_batched(&circuits, TSTOP, &armed).expect("armed batch failed");

    // Exact charge accounting: each fired charge degrades one lane.
    assert_eq!(clean.stats.injected_faults, 0);
    assert_eq!(
        faulted.stats.injected_faults, 2,
        "pivot charges lost or double-booked"
    );
    assert!(
        faulted.stats.refactor_fallbacks > clean.stats.refactor_fallbacks,
        "degraded lane never took the per-lane LU fallback: {} vs {}",
        faulted.stats.refactor_fallbacks,
        clean.stats.refactor_fallbacks
    );

    // The fallback re-pivots one lane's LU — same linear systems,
    // different round-off — so answers agree within Newton's band,
    // never bitwise-wrong-by-a-lot.
    for (lane, (a, b)) in clean.lanes.iter().zip(&faulted.lanes).enumerate() {
        let va = a.final_voltage(h.output);
        let vb = b.final_voltage(h.output);
        assert!(
            (va - vb).abs() <= 1e-6,
            "lane {lane}: pivot fault moved the final output {va} -> {vb}"
        );
    }
}

#[test]
fn worker_count_and_lane_width_grid_is_deterministic() {
    // Group composition depends only on (trials, K), never on the
    // worker count, so every cell of the grid must reproduce the
    // single-worker statistics bit for bit.
    let domains = VoltagePair::low_to_high();
    let kind = ShifterKind::sstvs();
    const TRIALS: usize = 6;
    for k in [1usize, 4] {
        let opts = mc_options(k);
        let (reference, _) = monte_carlo_stats_reported(
            &kind,
            domains,
            &opts,
            TRIALS,
            DEFAULT_MC_SEED,
            &RunnerOptions::serial(),
        )
        .expect("serial MC failed");
        for jobs in [2usize, 8] {
            let (stats, _) = monte_carlo_stats_reported(
                &kind,
                domains,
                &opts,
                TRIALS,
                DEFAULT_MC_SEED,
                &RunnerOptions::with_jobs(jobs),
            )
            .unwrap_or_else(|e| panic!("{jobs}-worker MC at K={k} failed: {e}"));
            assert_eq!(
                stats, reference,
                "K={k} ensemble is not deterministic at {jobs} workers"
            );
        }
    }
}

#[test]
fn batched_counters_balance_and_lanes_carry_no_private_stats() {
    let h = harness();
    let circuits = perturbed_lanes(&h, 4);
    let mosfets = h
        .circuit
        .elements()
        .iter()
        .filter(|e| matches!(e, Element::Mosfet { .. }))
        .count() as u64;
    assert!(mosfets > 0);
    let options = SimOptions {
        kernel: KernelMode::Batched,
        batch_lanes: 4,
        bypass_vtol: 0.0,
        ..SimOptions::default()
    };
    let batch = run_transient_batched(&circuits, TSTOP, &options).expect("batch failed");
    let stats = &batch.stats;

    // Lane-eval accounting: every Newton iteration of every lane
    // evaluates every MOSFET exactly once (bypass is off, and the
    // batched inner loop never bypasses regardless).
    assert_eq!(stats.device_bypasses, 0);
    assert_eq!(
        stats.device_evals,
        mosfets * stats.newton_iters,
        "device_evals broke the lane-eval counter balance: {}",
        stats.render()
    );
    assert!(stats.linear_solves > 0 && stats.full_factorizations > 0);
    assert!(
        stats.refactorizations > 0,
        "multi-lane LU never refactorized: {}",
        stats.render()
    );

    // All solver work is pooled in `batch.stats`; the per-lane
    // results must not double-count any of it.
    assert_eq!(batch.lanes.len(), 4);
    for lane in &batch.lanes {
        assert_eq!(
            lane.solver_stats(),
            sstvs::engine::SolverStats::default(),
            "per-lane results must carry no private solver stats"
        );
    }
}
