//! Randomized round-trip testing of the netlist text layer: randomly
//! generated circuits must survive write → parse → write with
//! identical topology and values. (Seeded loops over the vendored
//! generator — the workspace builds without registry access, so no
//! external property-testing framework.)

use sstvs::device::{MosGeometry, MosModel, SourceWaveform};
use sstvs::netlist::chipgen::{generate_chip, ChipSpec};
use sstvs::netlist::{parse_deck, write_deck, Circuit, Element};
use sstvs::num::rng::{Rng, Xoshiro256pp};

/// A recipe for one random element.
#[derive(Debug, Clone)]
enum ElemSpec {
    Resistor {
        a: u8,
        b: u8,
        ohms: f64,
    },
    Capacitor {
        a: u8,
        b: u8,
        farads: f64,
    },
    Vsource {
        pos: u8,
        neg: u8,
        volts: f64,
    },
    Mosfet {
        d: u8,
        g: u8,
        s: u8,
        nmos: bool,
        w_um: f64,
        l_um: f64,
    },
}

fn random_elem(rng: &mut impl Rng) -> ElemSpec {
    let node = |rng: &mut dyn Rng| rng.gen_index(6) as u8;
    match rng.gen_index(4) {
        0 => ElemSpec::Resistor {
            a: node(rng),
            b: node(rng),
            ohms: rng.gen_range(1.0, 1e6),
        },
        1 => ElemSpec::Capacitor {
            a: node(rng),
            b: node(rng),
            farads: rng.gen_range(1e-16, 1e-11),
        },
        2 => ElemSpec::Vsource {
            pos: node(rng),
            neg: node(rng),
            volts: rng.gen_range(-2.0, 2.0),
        },
        _ => ElemSpec::Mosfet {
            d: node(rng),
            g: node(rng),
            s: node(rng),
            nmos: rng.gen_bool(),
            w_um: rng.gen_range(0.12, 4.0),
            l_um: rng.gen_range(0.08, 1.0),
        },
    }
}

fn build(specs: &[ElemSpec]) -> Circuit {
    let mut c = Circuit::new();
    // Node 0 is ground; 1..6 are named nodes.
    let node = |c: &mut Circuit, k: u8| {
        if k == 0 {
            Circuit::GROUND
        } else {
            c.node(&format!("n{k}"))
        }
    };
    for (i, spec) in specs.iter().enumerate() {
        match spec {
            ElemSpec::Resistor { a, b, ohms } => {
                let (na, nb) = (node(&mut c, *a), node(&mut c, *b));
                c.add_resistor(&format!("r{i}"), na, nb, *ohms);
            }
            ElemSpec::Capacitor { a, b, farads } => {
                let (na, nb) = (node(&mut c, *a), node(&mut c, *b));
                c.add_capacitor(&format!("c{i}"), na, nb, *farads);
            }
            ElemSpec::Vsource { pos, neg, volts } => {
                let (np, nn) = (node(&mut c, *pos), node(&mut c, *neg));
                c.add_vsource(&format!("v{i}"), np, nn, SourceWaveform::Dc(*volts));
            }
            ElemSpec::Mosfet {
                d,
                g,
                s,
                nmos,
                w_um,
                l_um,
            } => {
                let (nd, ng, ns) = (node(&mut c, *d), node(&mut c, *g), node(&mut c, *s));
                let model = if *nmos {
                    MosModel::ptm90_nmos()
                } else {
                    MosModel::ptm90_pmos()
                };
                c.add_mosfet(
                    &format!("m{i}"),
                    nd,
                    ng,
                    ns,
                    Circuit::GROUND,
                    model,
                    MosGeometry::from_microns(*w_um, *l_um),
                );
            }
        }
    }
    c
}

/// Element-by-element value equality between two circuits whose
/// elements line up in the same order.
fn assert_elements_match(original: &Circuit, round_tripped: &Circuit) {
    assert_eq!(round_tripped.elements().len(), original.elements().len());
    assert_eq!(round_tripped.node_count(), original.node_count());
    for (a, b) in original.elements().iter().zip(round_tripped.elements()) {
        match (a, b) {
            (Element::Resistor { resistor: ra, .. }, Element::Resistor { resistor: rb, .. }) => {
                assert!((ra.resistance() - rb.resistance()).abs() <= 1e-12 * ra.resistance());
            }
            (
                Element::Capacitor { capacitor: ca, .. },
                Element::Capacitor { capacitor: cb, .. },
            ) => {
                assert!((ca.capacitance() - cb.capacitance()).abs() <= 1e-12 * ca.capacitance());
            }
            (Element::VoltageSource { wave: wa, .. }, Element::VoltageSource { wave: wb, .. }) => {
                assert_eq!(wa, wb);
            }
            (
                Element::Mosfet {
                    geom: ga,
                    model: ma,
                    ..
                },
                Element::Mosfet {
                    geom: gb,
                    model: mb,
                    ..
                },
            ) => {
                assert!((ga.width() - gb.width()).abs() <= 1e-12 * ga.width());
                assert!((ga.length() - gb.length()).abs() <= 1e-12 * ga.length());
                assert_eq!(ma.polarity, mb.polarity);
            }
            _ => panic!("element kind changed in round trip"),
        }
    }
}

/// Render → parse → render must reach a fixed point after the first
/// trip (names may gain a type prefix on trip one, but never again),
/// preserving every element value along the way.
fn assert_render_round_trip_is_stable(circuit: &Circuit) {
    let text1 = write_deck("roundtrip", circuit);
    let deck1 = parse_deck(&text1).expect("writer output parses");
    assert_elements_match(circuit, &deck1.circuit);
    let text2 = write_deck("roundtrip", &deck1.circuit);
    let deck2 = parse_deck(&text2).expect("second trip parses");
    let text3 = write_deck("roundtrip", &deck2.circuit);
    assert_eq!(text2, text3);
}

/// Topology and values survive one full round trip; the text form is a
/// fixed point after the first trip.
#[test]
fn deck_round_trip_is_stable() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5EED_0001);
    for _case in 0..64 {
        let count = 1 + rng.gen_index(11);
        let specs: Vec<ElemSpec> = (0..count).map(|_| random_elem(&mut rng)).collect();
        let original = build(&specs);
        assert_render_round_trip_is_stable(&original);
    }
}

/// A hierarchical deck — `.subckt` bodies instantiating earlier
/// subcircuits via `X` lines, two levels deep — parses into the
/// expected flattened paths, and the flat form survives
/// parse → render → parse like any other circuit.
#[test]
fn hierarchical_subckt_deck_round_trips() {
    let deck_text = "\
hierarchical roundtrip
.subckt inv in out vdd
Mp out in vdd vdd ptm90_pmos W=0.4u L=0.1u
Mn out in 0 0 ptm90_nmos W=0.2u L=0.1u
.ends
.subckt buf in out vdd
Xi1 in mid vdd inv
Xi2 mid out vdd inv
.ends
Vdd vdd 0 1.2
Vin a 0 0.6
Xb1 a b vdd buf
Xb2 b c vdd buf
Rload c 0 10k
.end
";
    let deck = parse_deck(deck_text).expect("hierarchical deck parses");
    let flat = &deck.circuit;

    // Two-level flattening: `buf` flattened `inv` into its own body
    // when *it* was defined, and the top-level `X` lines prefixed the
    // result again.
    for name in [
        "xb1.xi1.mp",
        "xb1.xi1.mn",
        "xb1.xi2.mp",
        "xb1.xi2.mn",
        "xb2.xi1.mp",
        "xb2.xi2.mn",
    ] {
        assert!(flat.element(name).is_some(), "missing flattened {name}");
    }
    // Hierarchical node paths: `buf`'s internal `mid` net, per
    // instance, plus the shared top nets bound through the ports.
    assert!(flat.find_node("xb1.mid").is_some());
    assert!(flat.find_node("xb2.mid").is_some());
    assert!(flat.find_node("b").is_some());
    // 4 inverters + 2 sources + 1 resistor.
    assert_eq!(flat.elements().len(), 11);
    flat.validate().expect("flattened deck is a valid circuit");

    assert_render_round_trip_is_stable(flat);
}

/// The chip generator's output — the biggest hierarchical producer in
/// the workspace — flattens to a deck that round-trips to a fixed
/// point.
#[test]
fn chipgen_flattened_deck_round_trips() {
    let spec = ChipSpec {
        instances: 12,
        islands: 3,
        seed: 0x5EED_0002,
    };
    let design = generate_chip(&spec);
    assert!(
        !design.instances().is_empty() && !design.subckts().is_empty(),
        "chip generator produced an empty design"
    );
    let flat = design.flatten();
    flat.validate().expect("flattened chip is a valid circuit");

    // Instance internals land under dotted paths in the flat circuit.
    let inst = &design.instances()[0];
    let cell = design
        .subckt(&inst.subckt)
        .expect("instance references a registered cell");
    let inner = cell
        .template()
        .elements()
        .first()
        .expect("cells have elements");
    let path = format!("{}.{}", inst.name, inner.name());
    assert!(flat.element(&path).is_some(), "missing flattened {path}");

    assert_render_round_trip_is_stable(&flat);
}
