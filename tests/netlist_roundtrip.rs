//! Property-based round-trip testing of the netlist text layer:
//! randomly generated circuits must survive write → parse → write with
//! identical topology and values.

use proptest::prelude::*;
use sstvs::device::{MosGeometry, MosModel, SourceWaveform};
use sstvs::netlist::{parse_deck, write_deck, Circuit, Element};

/// A recipe for one random element.
#[derive(Debug, Clone)]
enum ElemSpec {
    Resistor {
        a: u8,
        b: u8,
        ohms: f64,
    },
    Capacitor {
        a: u8,
        b: u8,
        farads: f64,
    },
    Vsource {
        pos: u8,
        neg: u8,
        volts: f64,
    },
    Mosfet {
        d: u8,
        g: u8,
        s: u8,
        nmos: bool,
        w_um: f64,
        l_um: f64,
    },
}

fn elem_strategy() -> impl Strategy<Value = ElemSpec> {
    let node = 0u8..6;
    prop_oneof![
        (node.clone(), node.clone(), 1.0f64..1e6)
            .prop_map(|(a, b, ohms)| { ElemSpec::Resistor { a, b, ohms } }),
        (node.clone(), node.clone(), 1e-16f64..1e-11)
            .prop_map(|(a, b, farads)| { ElemSpec::Capacitor { a, b, farads } }),
        (node.clone(), node.clone(), -2.0f64..2.0)
            .prop_map(|(pos, neg, volts)| { ElemSpec::Vsource { pos, neg, volts } }),
        (
            node.clone(),
            node.clone(),
            node,
            any::<bool>(),
            0.12f64..4.0,
            0.08f64..1.0
        )
            .prop_map(|(d, g, s, nmos, w_um, l_um)| ElemSpec::Mosfet {
                d,
                g,
                s,
                nmos,
                w_um,
                l_um
            }),
    ]
}

fn build(specs: &[ElemSpec]) -> Circuit {
    let mut c = Circuit::new();
    // Node 0 is ground; 1..6 are named nodes.
    let node = |c: &mut Circuit, k: u8| {
        if k == 0 {
            Circuit::GROUND
        } else {
            c.node(&format!("n{k}"))
        }
    };
    for (i, spec) in specs.iter().enumerate() {
        match spec {
            ElemSpec::Resistor { a, b, ohms } => {
                let (na, nb) = (node(&mut c, *a), node(&mut c, *b));
                c.add_resistor(&format!("r{i}"), na, nb, *ohms);
            }
            ElemSpec::Capacitor { a, b, farads } => {
                let (na, nb) = (node(&mut c, *a), node(&mut c, *b));
                c.add_capacitor(&format!("c{i}"), na, nb, *farads);
            }
            ElemSpec::Vsource { pos, neg, volts } => {
                let (np, nn) = (node(&mut c, *pos), node(&mut c, *neg));
                c.add_vsource(&format!("v{i}"), np, nn, SourceWaveform::Dc(*volts));
            }
            ElemSpec::Mosfet {
                d,
                g,
                s,
                nmos,
                w_um,
                l_um,
            } => {
                let (nd, ng, ns) = (node(&mut c, *d), node(&mut c, *g), node(&mut c, *s));
                let model = if *nmos {
                    MosModel::ptm90_nmos()
                } else {
                    MosModel::ptm90_pmos()
                };
                c.add_mosfet(
                    &format!("m{i}"),
                    nd,
                    ng,
                    ns,
                    Circuit::GROUND,
                    model,
                    MosGeometry::from_microns(*w_um, *l_um),
                );
            }
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Topology and values survive one full round trip; the text form
    /// is a fixed point after the first trip (names may gain a type
    /// prefix on trip one, but never again).
    #[test]
    fn deck_round_trip_is_stable(specs in proptest::collection::vec(elem_strategy(), 1..12)) {
        let original = build(&specs);
        let text1 = write_deck("roundtrip", &original);
        let deck1 = parse_deck(&text1).expect("writer output parses");
        prop_assert_eq!(deck1.circuit.elements().len(), original.elements().len());
        prop_assert_eq!(deck1.circuit.node_count(), original.node_count());

        // Element-by-element value equality (same order).
        for (a, b) in original.elements().iter().zip(deck1.circuit.elements()) {
            match (a, b) {
                (Element::Resistor { resistor: ra, .. }, Element::Resistor { resistor: rb, .. }) => {
                    prop_assert!((ra.resistance() - rb.resistance()).abs()
                        <= 1e-12 * ra.resistance());
                }
                (Element::Capacitor { capacitor: ca, .. }, Element::Capacitor { capacitor: cb, .. }) => {
                    prop_assert!((ca.capacitance() - cb.capacitance()).abs()
                        <= 1e-12 * ca.capacitance());
                }
                (Element::VoltageSource { wave: wa, .. }, Element::VoltageSource { wave: wb, .. }) => {
                    prop_assert_eq!(wa, wb);
                }
                (Element::Mosfet { geom: ga, model: ma, .. }, Element::Mosfet { geom: gb, model: mb, .. }) => {
                    prop_assert!((ga.width() - gb.width()).abs() <= 1e-12 * ga.width());
                    prop_assert!((ga.length() - gb.length()).abs() <= 1e-12 * ga.length());
                    prop_assert_eq!(ma.polarity, mb.polarity);
                }
                _ => prop_assert!(false, "element kind changed in round trip"),
            }
        }

        // Second trip is a fixed point.
        let text2 = write_deck("roundtrip", &deck1.circuit);
        let deck2 = parse_deck(&text2).expect("second trip parses");
        let text3 = write_deck("roundtrip", &deck2.circuit);
        prop_assert_eq!(text2, text3);
    }
}
