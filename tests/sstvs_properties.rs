//! Property-based testing of the paper's central claim: the SS-TVS
//! translates correctly for *any* pair of domain voltages in the
//! operating range — not just the grid points the figures sample.

use proptest::prelude::*;
use sstvs::cells::{ShifterKind, VoltagePair};
use sstvs::flows::{characterize, CharacterizeOptions};

proptest! {
    // Each case is a full characterization (~0.5 s), so keep the count
    // modest; the deterministic grid sweeps cover density, this covers
    // arbitrariness.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random (VDDI, VDDO) pairs in the paper's range: the cell must be
    /// functional, with positive sub-nanosecond delays and sub-µA
    /// leakage.
    #[test]
    fn sstvs_translates_any_domain_pair(
        vddi in 0.8f64..1.4,
        vddo in 0.8f64..1.4,
    ) {
        let m = characterize(
            &ShifterKind::sstvs(),
            VoltagePair::new(vddi, vddo),
            &CharacterizeOptions::default(),
        )
        .map_err(|e| TestCaseError::fail(format!("{vddi:.3}/{vddo:.3}: {e}")))?;
        prop_assert!(m.functional, "not functional at {vddi:.3} -> {vddo:.3}");
        prop_assert!(m.delay_rise.value() > 0.0 && m.delay_rise.value() < 1e-9);
        prop_assert!(m.delay_fall.value() > 0.0 && m.delay_fall.value() < 1e-9);
        prop_assert!(m.leakage_high.value() > 0.0 && m.leakage_high.value() < 1e-6);
        prop_assert!(m.leakage_low.value() > 0.0 && m.leakage_low.value() < 1e-6);
    }
}
