//! Randomized testing of the paper's central claim: the SS-TVS
//! translates correctly for *any* pair of domain voltages in the
//! operating range — not just the grid points the figures sample.

use sstvs::cells::{ShifterKind, VoltagePair};
use sstvs::flows::{characterize, CharacterizeOptions};
use sstvs::num::rng::{Rng, Xoshiro256pp};

/// Random (VDDI, VDDO) pairs in the paper's range: the cell must be
/// functional, with positive sub-nanosecond delays and sub-µA leakage.
///
/// Each case is a full characterization (~0.5 s), so keep the count
/// modest; the deterministic grid sweeps cover density, this covers
/// arbitrariness.
#[test]
fn sstvs_translates_any_domain_pair() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5EED_0020);
    for _case in 0..8 {
        let vddi = rng.gen_range(0.8, 1.4);
        let vddo = rng.gen_range(0.8, 1.4);
        let m = characterize(
            &ShifterKind::sstvs(),
            VoltagePair::new(vddi, vddo),
            &CharacterizeOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{vddi:.3}/{vddo:.3}: {e}"));
        assert!(m.functional, "not functional at {vddi:.3} -> {vddo:.3}");
        assert!(m.delay_rise.value() > 0.0 && m.delay_rise.value() < 1e-9);
        assert!(m.delay_fall.value() > 0.0 && m.delay_fall.value() < 1e-9);
        assert!(m.leakage_high.value() > 0.0 && m.leakage_high.value() < 1e-6);
        assert!(m.leakage_low.value() > 0.0 && m.leakage_low.value() < 1e-6);
    }
}
