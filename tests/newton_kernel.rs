//! Golden equivalence suite for the symbolic-reuse Newton kernel.
//!
//! The symbolic kernel (pattern-scatter assembly, numeric-only
//! refactorization, reusable workspaces, device/cap bypass) is the
//! default hot path; this file pins it to the legacy
//! rebuild-everything path:
//!
//! * on the dense linear path both kernels perform identical
//!   arithmetic, so all six cells must match **bit for bit** (far
//!   inside the 1e-12 budget);
//! * on the sparse path the kernel reuses the pivot order of its
//!   first factorization instead of re-pivoting every iteration, so
//!   the trajectories are equivalent within Newton's own tolerances
//!   rather than bitwise — pinned here to 1e-8 V;
//! * bypass is an approximation bounded by `bypass_vtol`; a property
//!   test checks bypass-on vs bypass-off transients stay within the
//!   solver's `reltol`/`lte_tol` band across randomized Monte Carlo
//!   process perturbations;
//! * the `SolverStats` counters must be nonzero and plumbed all the
//!   way into the runner's `RunReport`.

use sstvs::cells::primitives::Inverter;
use sstvs::cells::{Harness, KhanSsvs, PuriSsvs, ShifterKind, VoltagePair};
use sstvs::engine::{run_transient, KernelMode, SimOptions, TransientResult};
use sstvs::flows::experiments::tables::{monte_carlo_stats_reported, DEFAULT_MC_SEED};
use sstvs::flows::CharacterizeOptions;
use sstvs::netlist::Circuit;
use sstvs::num::rng::Xoshiro256pp;
use sstvs::runner::RunnerOptions;
use sstvs::variation::{sample_perturbation, VariationSpec};

/// A short window covering the first stimulus cycle's rise and fall —
/// plenty of Newton work without the full two-cycle runtime.
const TSTOP: f64 = 4e-9;

fn sim(kernel: KernelMode, bypass_vtol: f64, sparse_threshold: usize) -> SimOptions {
    SimOptions {
        kernel,
        bypass_vtol,
        sparse_threshold,
        ..SimOptions::default()
    }
}

/// All six cells with a domain pair each can legally shift.
fn six_cells() -> Vec<(ShifterKind, VoltagePair)> {
    vec![
        (ShifterKind::sstvs(), VoltagePair::low_to_high()),
        (ShifterKind::combined(), VoltagePair::low_to_high()),
        (
            ShifterKind::Conventional(Default::default()),
            VoltagePair::low_to_high(),
        ),
        (
            ShifterKind::Khan(KhanSsvs::new()),
            VoltagePair::low_to_high(),
        ),
        (
            ShifterKind::Puri(PuriSsvs::new()),
            VoltagePair::low_to_high(),
        ),
        (
            ShifterKind::Inverter(Inverter::minimum()),
            VoltagePair::high_to_low(),
        ),
    ]
}

fn build(kind: &ShifterKind, domains: VoltagePair) -> Harness {
    let (wave, _, _, _) = Harness::standard_stimulus(domains);
    Harness::build(kind, domains, wave, 1e-15)
}

fn run(circuit: &Circuit, options: &SimOptions) -> TransientResult {
    run_transient(circuit, TSTOP, options).expect("transient failed")
}

/// Worst absolute deviation between two same-length transients on a
/// probe node; panics if the accepted-step sequences differ.
fn worst_deviation(a: &TransientResult, b: &TransientResult, probe: sstvs::netlist::NodeId) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "kernels accepted different step sequences"
    );
    a.node_series(probe)
        .iter()
        .zip(&b.node_series(probe))
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[test]
fn symbolic_kernel_is_bit_identical_to_legacy_on_all_six_cells() {
    for (kind, domains) in six_cells() {
        let h = build(&kind, domains);
        let legacy = run(&h.circuit, &sim(KernelMode::Legacy, 0.0, 64));
        let symbolic = run(&h.circuit, &sim(KernelMode::Symbolic, 0.0, 64));
        assert_eq!(
            legacy.len(),
            symbolic.len(),
            "{}: kernels accepted different step sequences",
            kind.label()
        );
        for probe in [h.input, h.output] {
            let a = legacy.node_series(probe);
            let b = symbolic.node_series(probe);
            for (k, (x, y)) in a.iter().zip(&b).enumerate() {
                // Bitwise equality implies the 1e-12 budget with room
                // to spare.
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{}: kernels diverged at sample {k}: {x} vs {y}",
                    kind.label()
                );
            }
        }
    }
}

#[test]
fn sparse_kernel_agrees_with_legacy_and_dense_paths() {
    // Extends `sparse_and_dense_paths_agree` (engine unit suite) to
    // the kernel matrix: force the sparse solver on the SS-TVS cell
    // and pin all four (kernel × linear path) combinations together.
    let h = build(&ShifterKind::sstvs(), VoltagePair::low_to_high());
    let legacy_dense = run(&h.circuit, &sim(KernelMode::Legacy, 0.0, 64));
    let legacy_sparse = run(&h.circuit, &sim(KernelMode::Legacy, 0.0, 0));
    let symbolic_sparse = run(&h.circuit, &sim(KernelMode::Symbolic, 0.0, 0));

    // Frozen-pivot refactorization vs per-iteration re-pivoting: the
    // trajectories agree far inside Newton's vabstol (1e-6 V) but not
    // bitwise; 1e-8 V pins the observed ~2.6e-9 V with margin.
    let d = worst_deviation(&legacy_sparse, &symbolic_sparse, h.output);
    assert!(d <= 1e-8, "sparse kernels strayed {d:.3e} V apart");
    // Sparse vs dense linear algebra under the symbolic kernel.
    let d = worst_deviation(&legacy_dense, &symbolic_sparse, h.output);
    assert!(d <= 1e-8, "sparse vs dense strayed {d:.3e} V apart");

    let stats = symbolic_sparse.solver_stats();
    assert!(
        stats.refactorizations > 0,
        "sparse kernel never refactorized: {}",
        stats.render()
    );
    assert!(
        stats.full_factorizations > 0,
        "sparse kernel never fully factorized: {}",
        stats.render()
    );
}

/// Linear interpolation of a transient at time `t`.
fn sample_at(times: &[f64], series: &[f64], t: f64) -> f64 {
    match times.iter().position(|&tk| tk >= t) {
        None => *series.last().unwrap(),
        Some(0) => series[0],
        Some(k) => {
            let (t0, t1) = (times[k - 1], times[k]);
            let w = if t1 > t0 { (t - t0) / (t1 - t0) } else { 0.0 };
            series[k - 1] + w * (series[k] - series[k - 1])
        }
    }
}

#[test]
fn bypass_stays_within_solver_tolerances_across_mc_perturbations() {
    // Property test: for randomized process perturbations of the cell
    // devices, the bypassed transient must track the exact one within
    // the band the solver itself guarantees (reltol of the swing plus
    // the LTE budget) at every common time point, with identical final
    // logic levels.
    let domains = VoltagePair::low_to_high();
    let reference = build(&ShifterKind::sstvs(), domains);
    let spec = VariationSpec::paper();
    let exact_sim = sim(KernelMode::Symbolic, 0.0, 64);
    let bypass_sim = sim(KernelMode::Symbolic, 1e-4, 64);
    // Bypass perturbs the Newton trajectory, which shifts edge timing
    // within reltol; on a 50 ps edge that timing shift converts to a
    // few millivolts of pointwise deviation.
    let tol = 10.0 * (exact_sim.reltol * domains.vddo + exact_sim.lte_tol);

    for seed in 1..=4u64 {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let map = sample_perturbation(&reference.circuit, &spec, &mut rng, |name| {
            name.starts_with("dut")
        });
        let mut circuit = reference.circuit.clone();
        map.apply(&mut circuit);

        let exact = run(&circuit, &exact_sim);
        let bypassed = run(&circuit, &bypass_sim);
        let (t_ex, v_ex) = (exact.times(), exact.node_series(reference.output));
        let (t_by, v_by) = (bypassed.times(), bypassed.node_series(reference.output));

        let mut worst = 0.0f64;
        for k in 0..=200 {
            let t = TSTOP * k as f64 / 200.0;
            let d = (sample_at(t_ex, &v_ex, t) - sample_at(t_by, &v_by, t)).abs();
            worst = worst.max(d);
        }
        assert!(
            worst <= tol,
            "seed {seed}: bypass strayed {worst:.3e} V from exact (tol {tol:.3e})"
        );

        let stats = bypassed.solver_stats();
        assert!(
            stats.device_bypasses > 0,
            "seed {seed}: bypass never engaged: {}",
            stats.render()
        );
    }
}

#[test]
fn solver_stats_are_nonzero_and_reach_the_run_report() {
    let h = build(&ShifterKind::sstvs(), VoltagePair::low_to_high());

    // Exact symbolic run: every hot-path counter but the bypass ones.
    let stats = run(&h.circuit, &sim(KernelMode::Symbolic, 0.0, 64)).solver_stats();
    assert!(stats.newton_iters > 0 && stats.linear_solves > 0);
    assert!(stats.full_factorizations > 0);
    assert!(stats.device_evals > 0 && stats.cap_evals > 0);
    assert_eq!(stats.device_bypasses, 0, "bypass engaged while disabled");
    assert_eq!(stats.cap_bypasses, 0, "cap bypass engaged while disabled");

    // The legacy path counts its Newton work too.
    let legacy = run(&h.circuit, &sim(KernelMode::Legacy, 0.0, 64)).solver_stats();
    assert!(legacy.newton_iters > 0 && legacy.full_factorizations > 0);

    // End-to-end plumbing: characterization trials fold their counters
    // through `characterize_with_stats` into the runner's RunReport.
    let (mc, report) = monte_carlo_stats_reported(
        &ShifterKind::sstvs(),
        VoltagePair::low_to_high(),
        &CharacterizeOptions::default(),
        3,
        DEFAULT_MC_SEED,
        &RunnerOptions::serial(),
    )
    .expect("MC failed");
    assert!(mc.passed > 0);
    assert!(
        !report.solver.is_empty(),
        "SolverStats did not reach RunReport"
    );
    assert!(report.solver.newton_iters > 0 && report.solver.linear_solves > 0);
    assert!(report.render().contains("solver:"));
}
